"""Scenarios: adversarial workloads as data.

The subsystem has four parts:

* :mod:`repro.scenarios.schedule` — the ``Phase``/``Schedule`` DSL for
  piecewise time-varying adversary behaviour (driven through the engines
  by the adapters in :mod:`repro.adversary.scheduled`);
* :mod:`repro.scenarios.spec` — the :class:`Scenario` object plus the
  TOML/JSON loader and validator: a scenario file fully specifies the
  protocol set, the adversary schedule, the scale, and the replication
  count, round-trips through ``scenario_to_dict``/``scenario_from_dict``,
  and derives a stable ``content_hash`` identity;
* :mod:`repro.scenarios.catalog` — the curated built-in catalog of named
  stress scenarios, registered alongside the paper experiments;
* :mod:`repro.scenarios.runner` — compiles a scenario into a
  :class:`~repro.experiments.plan.SweepPlan` and runs it on any execution
  backend, returning a standard experiment report.

This ``__init__`` imports lazily (PEP 562): :mod:`repro.adversary.scheduled`
imports the schedule DSL from here, while the loader imports the adversary
package — eager imports in both directions would cycle.
"""

from repro.scenarios.schedule import Phase, Schedule

_SPEC_EXPORTS = {
    "Scenario",
    "ScenarioError",
    "load_scenario_file",
    "resolve_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
}
_CATALOG_EXPORTS = {"builtin_scenarios", "get_scenario", "scenario_ids"}
_RUNNER_EXPORTS = {"build_plan", "run_scenario", "scenario_seeds", "scenario_max_slots"}

__all__ = [
    "Phase",
    "Schedule",
    *sorted(_SPEC_EXPORTS),
    *sorted(_CATALOG_EXPORTS),
    *sorted(_RUNNER_EXPORTS),
]


def __getattr__(name: str):
    if name in _SPEC_EXPORTS:
        from repro.scenarios import spec

        return getattr(spec, name)
    if name in _CATALOG_EXPORTS:
        from repro.scenarios import catalog

        return getattr(catalog, name)
    if name in _RUNNER_EXPORTS:
        from repro.scenarios import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
