"""The curated catalog of built-in scenarios.

Each entry is a paper-motivated stress case expressed in the same
declarative form a scenario file uses, and goes through the same
validation path (:func:`repro.scenarios.spec.scenario_from_dict`), so the
catalog doubles as a living exemplar of the format.  The cases cover the
adversary axes the paper's guarantees quantify over: time-varying jamming
duty cycles, ramping and heavy-tailed arrival patterns, budget-limited
jammers, adversarial-queuing windows, and the reactive/adaptive attacks of
Sections 1.1–1.3.
"""

from __future__ import annotations

import functools

from repro.scenarios.spec import Scenario, scenario_from_dict

_DEFINITIONS: tuple[dict, ...] = (
    {
        "id": "ramp-arrivals",
        "title": "Ramping Poisson arrival rate",
        "description": (
            "Arrival intensity climbs through four piecewise-constant Poisson "
            "phases (0.02 -> 0.05 -> 0.1 -> 0.2 packets/slot), probing whether "
            "backoff keeps up as load approaches the contention knee."
        ),
        "protocols": ["low-sensing", "binary-exponential", "fixed-probability"],
        "max_slots": 6000,
        "replications": 3,
        "base_seed": 201,
        "tags": ["arrivals", "schedule", "ramp"],
        "arrivals": {
            "phases": [
                {"kind": "poisson", "rate": 0.02, "duration": 800},
                {"kind": "poisson", "rate": 0.05, "duration": 800},
                {"kind": "poisson", "rate": 0.1, "duration": 800},
                {"kind": "poisson", "rate": 0.2, "duration": 800},
            ]
        },
    },
    {
        "id": "onoff-jamming",
        "title": "On/off Bernoulli jamming duty cycle",
        "description": (
            "Steady Poisson traffic under alternating 400-slot phases of heavy "
            "Bernoulli jamming (p=0.9) and silence - the canonical time-varying "
            "attack the stationary sweeps cannot express."
        ),
        "protocols": ["low-sensing", "binary-exponential"],
        "max_slots": 5000,
        "replications": 3,
        "base_seed": 211,
        "tags": ["jamming", "schedule", "duty-cycle"],
        "arrivals": {"kind": "poisson", "rate": 0.05, "horizon": 2400},
        "jamming": {
            "phases": [
                {"kind": "bernoulli", "probability": 0.9, "duration": 400},
                {"kind": "none", "duration": 400},
                {"kind": "bernoulli", "probability": 0.9, "duration": 400},
                {"kind": "none", "duration": 400},
                {"kind": "bernoulli", "probability": 0.9, "duration": 400},
                {"kind": "none"},
            ]
        },
    },
    {
        "id": "burst-then-starve",
        "title": "Burst traffic followed by starvation",
        "description": (
            "Eight periodic bursts of 40 packets, then the source goes silent: "
            "recovery from a loaded channel with no fresh arrivals to re-probe it."
        ),
        "protocols": ["low-sensing", "polynomial"],
        "max_slots": 4000,
        "replications": 3,
        "base_seed": 221,
        "tags": ["arrivals", "schedule", "burst"],
        "arrivals": {
            "phases": [
                {
                    "kind": "periodic-burst",
                    "burst_size": 40,
                    "period": 100,
                    "num_bursts": 8,
                    "duration": 800,
                },
                {"kind": "none"},
            ]
        },
    },
    {
        "id": "jam-then-flood",
        "title": "Denial window followed by a packet flood",
        "description": (
            "The jammer saturates the first 600 slots, then a batch of 150 "
            "packets floods an already-noisy history - backoff state built "
            "during the denial window must not poison the recovery."
        ),
        "protocols": ["low-sensing", "binary-exponential"],
        "max_slots": 6000,
        "replications": 3,
        "base_seed": 231,
        "tags": ["jamming", "schedule", "recovery"],
        "arrivals": {
            "phases": [
                {"kind": "none", "duration": 600},
                {"kind": "batch", "n": 150},
            ]
        },
        "jamming": {
            "phases": [
                {
                    "kind": "bernoulli",
                    "probability": 1.0,
                    "only_active": False,
                    "duration": 600,
                },
                {"kind": "none"},
            ]
        },
    },
    {
        "id": "budget-starved-jammer",
        "title": "Bernoulli jammer exhausting a small budget",
        "description": (
            "Heavy Bernoulli jamming (p=0.5) against a 120-packet batch, but "
            "with only 60 jams in the budget: the attack dies mid-execution and "
            "the (N+J)/S accounting must reflect the realised jams, not the rate."
        ),
        "protocols": ["low-sensing", "binary-exponential"],
        "max_slots": 6000,
        "replications": 3,
        "base_seed": 241,
        "tags": ["jamming", "budget"],
        "arrivals": {"kind": "batch", "n": 120},
        "jamming": {"kind": "bernoulli", "probability": 0.5, "budget": 60},
    },
    {
        "id": "ramp-down-jamming",
        "title": "Jamming pressure ramping down in phases",
        "description": (
            "A 100-packet batch under Bernoulli jamming that decays through "
            "piecewise-constant phases (p=0.8 -> 0.4 -> 0.1 -> 0): measures how "
            "quickly throughput recovers as the attack fades."
        ),
        "protocols": ["low-sensing", "binary-exponential", "polynomial"],
        "max_slots": 6000,
        "replications": 3,
        "base_seed": 251,
        "tags": ["jamming", "schedule", "ramp"],
        "arrivals": {"kind": "batch", "n": 100},
        "jamming": {
            "phases": [
                {"kind": "bernoulli", "probability": 0.8, "duration": 300},
                {"kind": "bernoulli", "probability": 0.4, "duration": 300},
                {"kind": "bernoulli", "probability": 0.1, "duration": 300},
                {"kind": "none"},
            ]
        },
    },
    {
        "id": "duty-cycle-jamming",
        "title": "50% duty-cycle periodic burst jamming",
        "description": (
            "Poisson traffic against a jammer that blankets 50 of every 100 "
            "slots: half the channel is structurally gone, and throughput "
            "should degrade by a constant factor, not collapse."
        ),
        "protocols": ["low-sensing", "binary-exponential"],
        "max_slots": 5000,
        "replications": 3,
        "base_seed": 261,
        "tags": ["jamming", "duty-cycle"],
        "arrivals": {"kind": "poisson", "rate": 0.08, "horizon": 2000},
        "jamming": {"kind": "burst", "start": 0, "length": 50, "period": 100},
    },
    {
        "id": "heavy-tail-batches",
        "title": "Heavy-tailed batch sizes in escalating phases",
        "description": (
            "Successive batches of 20, 60 and 180 packets (a geometric tail): "
            "each phase starts from the window state the previous batch left "
            "behind, the regime the paper's monitoring analysis targets."
        ),
        "protocols": ["low-sensing", "binary-exponential", "polynomial"],
        "max_slots": 6000,
        "replications": 3,
        "base_seed": 271,
        "tags": ["arrivals", "schedule", "heavy-tail"],
        "arrivals": {
            "phases": [
                {"kind": "batch", "n": 20, "duration": 500},
                {"kind": "batch", "n": 60, "duration": 500},
                {"kind": "batch", "n": 180, "duration": 800},
                {"kind": "none"},
            ]
        },
    },
    {
        "id": "queueing-with-periodic-jam",
        "title": "Adversarial-queuing arrivals plus periodic jamming",
        "description": (
            "(lambda, S)-bounded front-loaded arrivals sharing the window "
            "budget with a periodic jammer - the combined adversary of "
            "Theorem 1.3's implicit-throughput guarantee."
        ),
        "protocols": ["low-sensing"],
        "max_slots": 8000,
        "replications": 3,
        "base_seed": 281,
        "tags": ["queueing", "jamming"],
        "arrivals": {
            "kind": "queueing",
            "rate": 0.2,
            "granularity": 100,
            "placement": "front",
            "horizon": 2000,
            "jam_budget_fraction": 0.25,
        },
        "jamming": {"kind": "periodic", "period": 4, "budget": 500},
    },
    {
        "id": "reactive-starvation",
        "title": "Reactive success-jamming until the budget dies",
        "description": (
            "A reactive jammer converts every would-be success into noise "
            "while its 40-jam budget lasts (Section 1.3): drain time stretches "
            "by ~J slots but the average energy must stay polylogarithmic."
        ),
        "protocols": ["low-sensing", "full-sensing-mw"],
        "max_slots": 8000,
        "replications": 3,
        "base_seed": 291,
        "tags": ["jamming", "reactive", "budget"],
        "arrivals": {"kind": "batch", "n": 80},
        "jamming": {"kind": "reactive-success", "budget": 40},
    },
    {
        "id": "adaptive-contention-attack",
        "title": "Adaptive jamming of good-contention slots",
        "description": (
            "An adaptive jammer that reads every window and spends its budget "
            "exactly on slots whose contention sits in the good regime - the "
            "strongest non-reactive attack on throughput (Section 1.1)."
        ),
        "protocols": ["low-sensing", "sawtooth"],
        "max_slots": 8000,
        "replications": 3,
        "base_seed": 301,
        "tags": ["jamming", "adaptive", "budget"],
        "arrivals": {"kind": "batch", "n": 100},
        "jamming": {"kind": "adaptive-contention", "budget": 100, "target_regime": "good"},
    },
    {
        "id": "alternating-burst-cadence",
        "title": "Alternating burst cadences under a mid-run jam window",
        "description": (
            "Arrival bursts switch cadence mid-run (10 packets every 40 slots, "
            "then 30 every 120) while a periodic jammer owns the middle third "
            "of the execution - schedules on both adversary axes at once."
        ),
        "protocols": ["low-sensing", "binary-exponential"],
        "max_slots": 5000,
        "replications": 3,
        "base_seed": 311,
        "tags": ["arrivals", "jamming", "schedule"],
        "arrivals": {
            "phases": [
                {"kind": "periodic-burst", "burst_size": 10, "period": 40, "duration": 800},
                {"kind": "periodic-burst", "burst_size": 30, "period": 120, "duration": 800},
                {"kind": "none"},
            ]
        },
        "jamming": {
            "phases": [
                {"kind": "none", "duration": 400},
                {"kind": "periodic", "period": 10, "duration": 800},
                {"kind": "none"},
            ]
        },
    },
)


@functools.cache
def builtin_scenarios() -> dict[str, Scenario]:
    """The catalog as ``{scenario_id: Scenario}``, validated on first use."""
    catalog: dict[str, Scenario] = {}
    for definition in _DEFINITIONS:
        scenario = scenario_from_dict(definition, source=f"catalog:{definition['id']}")
        if scenario.scenario_id in catalog:
            raise ValueError(f"duplicate catalog scenario id {scenario.scenario_id!r}")
        catalog[scenario.scenario_id] = scenario
    return catalog


def scenario_ids() -> list[str]:
    """Sorted ids of all catalog scenarios."""
    return sorted(builtin_scenarios())


def get_scenario(scenario_id: str) -> Scenario:
    """One catalog scenario by id (raises ``KeyError`` with the known ids)."""
    catalog = builtin_scenarios()
    try:
        return catalog[scenario_id]
    except KeyError:
        raise KeyError(
            f"unknown scenario {scenario_id!r}; known: {', '.join(sorted(catalog))}"
        ) from None
