"""Compiling scenarios into sweep plans and running them.

A scenario compiles to one :class:`~repro.experiments.plan.SweepPlan`
group per protocol (the same configuration replicated over seeds), which
makes every execution backend — serial, process pool, result cache,
vector — available to scenario sweeps for free.  :func:`run_scenario`
wraps the plan's aggregated rows in a standard
:class:`~repro.experiments.spec.ExperimentReport`, so the CLI and the
archival JSON format are shared with the paper experiments.

Scale semantics: a scenario *declares* its scale (``max_slots``,
``replications``); ``smoke`` caps both so every scenario can run in
seconds inside tests and CI, ``default`` runs it as declared, and
``full`` doubles the replication count for tighter aggregates.
"""

from __future__ import annotations

from typing import Sequence

from repro.exec.backends import ExecutionBackend
from repro.experiments.plan import SweepPlan
from repro.experiments.spec import ExperimentReport, ExperimentSpec, check_scale
from repro.protocols.registry import get_protocol
from repro.scenarios.spec import Scenario

#: Smoke-scale caps: enough slots to cross several schedule phases, small
#: enough that the whole catalog runs in seconds on both engines.
SMOKE_MAX_SLOTS = 2000
SMOKE_REPLICATIONS = 2


def scenario_seeds(
    scenario: Scenario, scale: str = "default", seeds: Sequence[int] | None = None
) -> tuple[int, ...]:
    """The replicate seed list for ``scenario`` at ``scale``.

    Explicit ``seeds`` win; otherwise seeds are derived densely from
    ``base_seed`` so a scenario's replication set is a function of its
    definition alone.
    """
    check_scale(scale)
    if seeds is not None:
        if not seeds:
            raise ValueError("at least one seed is required")
        return tuple(seeds)
    replications = scenario.replications
    if scale == "smoke":
        replications = min(replications, SMOKE_REPLICATIONS)
    elif scale == "full":
        replications *= 2
    return tuple(scenario.base_seed + index for index in range(replications))


def scenario_max_slots(scenario: Scenario, scale: str = "default") -> int:
    """The slot horizon for ``scenario`` at ``scale`` (smoke caps it)."""
    check_scale(scale)
    if scale == "smoke":
        return min(scenario.max_slots, SMOKE_MAX_SLOTS)
    return scenario.max_slots


def build_plan(
    scenario: Scenario,
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    *,
    dynamics_window: int = 0,
) -> SweepPlan:
    """One sweep group per protocol, all sharing the scenario's adversary."""
    scale = check_scale(scale)
    seed_list = scenario_seeds(scenario, scale, seeds)
    max_slots = scenario_max_slots(scenario, scale)
    adversary = scenario.adversary_factory()
    plan = SweepPlan(default_max_slots=max_slots)
    for protocol_name in scenario.protocols:
        plan.add_group(
            get_protocol(protocol_name),
            adversary,
            seed_list,
            columns={"scenario": scenario.scenario_id},
            max_slots=max_slots,
            dynamics_window=dynamics_window,
        )
    return plan


def run_scenario(
    scenario: Scenario,
    *,
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    backend: ExecutionBackend | None = None,
    dynamics_window: int = 0,
) -> ExperimentReport:
    """Run ``scenario`` on ``backend`` and aggregate one row per protocol."""
    scale = check_scale(scale)
    plan = build_plan(scenario, scale, seeds, dynamics_window=dynamics_window)
    spec = ExperimentSpec(
        exp_id=scenario.scenario_id,
        title=scenario.title,
        claim=scenario.description or "(no description)",
        bench_target=f"python -m repro scenario run {scenario.scenario_id}",
    )
    report = ExperimentReport(spec=spec)
    results = plan.run(backend)
    for row in results.group_rows():
        report.add_row(row)
    for row in report.rows:
        report.verdicts[f"{row['protocol']}_throughput"] = f"{row['throughput']:.3f}"
    summary = plan.vector_summary()
    report.notes.append(f"scenario content hash: {scenario.content_hash()[:12]}")
    report.notes.append(
        f"scale={scale}: {len(plan)} runs, max_slots={scenario_max_slots(scenario, scale)}, "
        f"seeds={list(scenario_seeds(scenario, scale, seeds))}"
    )
    report.notes.append(
        f"vectorizable: {summary['vectorizable_specs']}/{summary['total_specs']} specs"
    )
    for group_id, reason in sorted(summary["fallback_groups"].items()):
        protocol = plan.groups[group_id].protocol_name
        report.notes.append(f"scalar fallback [{protocol}]: {reason}")
    return report
