"""Scenario definitions: files that fully specify an adversarial workload.

A *scenario* names a protocol set, an adversary (arrival process and
jammer, either stationary or a piecewise :class:`~repro.scenarios.schedule`),
a scale (``max_slots``), and a replication count — everything needed to run
it on any execution backend without writing Python.  Scenarios load from
TOML or JSON files (or plain dicts), validate eagerly, round-trip through
:func:`scenario_to_dict`/:func:`scenario_from_dict`, and derive a stable
:meth:`Scenario.content_hash` so archived reports and caches can name the
exact workload they came from.

The component vocabulary maps short ``kind`` strings to the adversary
classes (see ``ARRIVAL_KINDS``/``JAMMER_KINDS``); a component table with a
``phases`` array instead of a ``kind`` becomes a schedule.  Components are
compiled to :func:`~repro.experiments.plan.factory` trees, so every
replication builds a fresh adversary and the resulting
:class:`~repro.experiments.plan.RunSpec`s keep their content-hash cache
keys — scenario sweeps plug into
:class:`~repro.exec.cache.ResultCacheBackend` unchanged.

Example (TOML)::

    id = "onoff-jamming"
    title = "On/off Bernoulli jamming duty cycle"
    protocols = ["low-sensing", "binary-exponential"]
    max_slots = 5000
    replications = 3

    [arrivals]
    kind = "poisson"
    rate = 0.05
    horizon = 2400

    [[jamming.phases]]
    kind = "bernoulli"
    probability = 0.9
    duration = 400

    [[jamming.phases]]
    kind = "none"
    duration = 400
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.adversary.arrivals import (
    AdversarialQueueingArrivals,
    BatchArrivals,
    NoArrivals,
    PeriodicBurstArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import (
    AdaptiveContentionJammer,
    BernoulliJamming,
    BudgetedRandomJamming,
    BurstJamming,
    NoJamming,
    PeriodicJamming,
    ReactiveSuccessJammer,
    ReactiveTargetedJammer,
)
from repro.adversary.scheduled import ScheduledArrivals, ScheduledJamming
from repro.experiments.plan import Factory, factory
from repro.protocols.registry import available_protocols
from repro.scenarios.schedule import Phase


class ScenarioError(ValueError):
    """A scenario definition is malformed or references unknown pieces."""


#: ``kind`` → arrival-process class.
ARRIVAL_KINDS: dict[str, type] = {
    "none": NoArrivals,
    "batch": BatchArrivals,
    "poisson": PoissonArrivals,
    "periodic-burst": PeriodicBurstArrivals,
    "trace": TraceArrivals,
    "queueing": AdversarialQueueingArrivals,
}

#: ``kind`` → jammer class.
JAMMER_KINDS: dict[str, type] = {
    "none": NoJamming,
    "bernoulli": BernoulliJamming,
    "periodic": PeriodicJamming,
    "burst": BurstJamming,
    "budgeted-random": BudgetedRandomJamming,
    "adaptive-contention": AdaptiveContentionJammer,
    "reactive-targeted": ReactiveTargetedJammer,
    "reactive-success": ReactiveSuccessJammer,
}

_ID_PATTERN = re.compile(r"^[a-z0-9][a-z0-9-]*$")

_REQUIRED_KEYS = {"id", "title", "protocols", "arrivals"}
_ALLOWED_KEYS = _REQUIRED_KEYS | {
    "description",
    "jamming",
    "max_slots",
    "replications",
    "base_seed",
    "tags",
}

_DEFAULT_MAX_SLOTS = 20_000
_DEFAULT_REPLICATIONS = 3
_DEFAULT_BASE_SEED = 11


@dataclass(frozen=True)
class Scenario:
    """A validated scenario: pure declarative data plus derived factories.

    The component fields (``arrivals``/``jamming``) hold the normalised
    declarative dicts, which is what makes :meth:`to_dict` a faithful
    round-trip and :meth:`content_hash` a function of the definition
    alone.  The factory accessors compile them on demand.
    """

    scenario_id: str
    title: str
    description: str
    protocols: tuple[str, ...]
    arrivals: Mapping[str, Any]
    jamming: Mapping[str, Any]
    max_slots: int
    replications: int
    base_seed: int
    tags: tuple[str, ...]

    # -- Derived factories -------------------------------------------------

    def arrivals_factory(self) -> Factory:
        """Factory building a fresh arrival process per run."""
        return _component_factory(
            self.arrivals, ARRIVAL_KINDS, ScheduledArrivals, "arrivals"
        )

    def jamming_factory(self) -> Factory:
        """Factory building a fresh jammer per run."""
        return _component_factory(
            self.jamming, JAMMER_KINDS, ScheduledJamming, "jamming"
        )

    def adversary_factory(self) -> Factory:
        """Factory for the full :class:`CompositeAdversary` of the scenario."""
        return factory(
            CompositeAdversary, self.arrivals_factory(), self.jamming_factory()
        )

    # -- Identity ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The canonical JSON-friendly form (inverse of ``scenario_from_dict``)."""
        return {
            "id": self.scenario_id,
            "title": self.title,
            "description": self.description,
            "protocols": list(self.protocols),
            "arrivals": _thaw(self.arrivals),
            "jamming": _thaw(self.jamming),
            "max_slots": self.max_slots,
            "replications": self.replications,
            "base_seed": self.base_seed,
            "tags": list(self.tags),
        }

    def content_hash(self) -> str:
        """Stable SHA-256 of the canonical definition (hex digest)."""
        payload = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Component compilation
# ---------------------------------------------------------------------------


def _component_factory(
    spec: Mapping[str, Any],
    kinds: Mapping[str, type],
    schedule_cls: type,
    label: str,
) -> Factory:
    """Compile one component spec (stationary or schedule) to a factory."""
    if not isinstance(spec, Mapping):
        raise ScenarioError(f"{label}: expected a table, got {type(spec).__name__}")
    if "phases" in spec:
        unexpected = sorted(set(spec) - {"phases"})
        if unexpected:
            raise ScenarioError(
                f"{label}: a schedule takes only 'phases', got extra keys {unexpected}"
            )
        phases = spec["phases"]
        if not isinstance(phases, Sequence) or isinstance(phases, (str, bytes)):
            raise ScenarioError(f"{label}.phases: expected an array of phase tables")
        if not phases:
            raise ScenarioError(f"{label}.phases: a schedule needs at least one phase")
        phase_factories = []
        for index, phase_spec in enumerate(phases):
            if not isinstance(phase_spec, Mapping):
                raise ScenarioError(
                    f"{label}.phases[{index}]: expected a table, "
                    f"got {type(phase_spec).__name__}"
                )
            duration = phase_spec.get("duration")
            inner = {
                key: value for key, value in phase_spec.items() if key != "duration"
            }
            inner_factory = _component_factory(
                inner, kinds, schedule_cls, f"{label}.phases[{index}]"
            )
            phase_factories.append(factory(Phase, inner_factory, duration=duration))
        return factory(schedule_cls, *phase_factories)
    kind = spec.get("kind")
    if kind is None:
        raise ScenarioError(f"{label}: missing 'kind' (or a 'phases' array)")
    component_cls = kinds.get(kind)
    if component_cls is None:
        known = ", ".join(sorted(kinds))
        raise ScenarioError(f"{label}: unknown kind {kind!r}; known kinds: {known}")
    kwargs = {key: value for key, value in spec.items() if key != "kind"}
    return factory(component_cls, **kwargs)


def _thaw(value: Any) -> Any:
    """Deep-copy a spec tree into plain dicts/lists (JSON-shaped)."""
    if isinstance(value, Mapping):
        return {str(key): _thaw(item) for key, item in value.items()}
    if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        return [_thaw(item) for item in value]
    return value


# ---------------------------------------------------------------------------
# Parsing and validation
# ---------------------------------------------------------------------------


def scenario_from_dict(data: Mapping[str, Any], *, source: str = "<dict>") -> Scenario:
    """Parse and validate one scenario definition.

    Validation is eager and total: unknown keys are rejected, protocol
    names are checked against the registry, and the adversary factories
    are probe-built once so malformed component parameters fail here (with
    the file name in the message) instead of mid-sweep.
    """
    if not isinstance(data, Mapping):
        raise ScenarioError(f"{source}: scenario must be a table/object")
    unexpected = sorted(set(data) - _ALLOWED_KEYS)
    if unexpected:
        raise ScenarioError(f"{source}: unexpected keys {unexpected}")
    missing = sorted(_REQUIRED_KEYS - set(data))
    if missing:
        raise ScenarioError(f"{source}: missing required keys {missing}")

    scenario_id = data["id"]
    if not isinstance(scenario_id, str) or not _ID_PATTERN.match(scenario_id):
        raise ScenarioError(
            f"{source}: 'id' must be a lowercase [a-z0-9-] slug, got {scenario_id!r}"
        )
    title = data["title"]
    if not isinstance(title, str) or not title:
        raise ScenarioError(f"{source}: 'title' must be a non-empty string")
    description = data.get("description", "")
    if not isinstance(description, str):
        raise ScenarioError(f"{source}: 'description' must be a string")

    protocols = data["protocols"]
    if (
        not isinstance(protocols, Sequence)
        or isinstance(protocols, (str, bytes))
        or not protocols
    ):
        raise ScenarioError(f"{source}: 'protocols' must be a non-empty array")
    known_protocols = set(available_protocols())
    seen_protocols: set[str] = set()
    for name in protocols:
        if name not in known_protocols:
            raise ScenarioError(
                f"{source}: unknown protocol {name!r}; known protocols: "
                f"{', '.join(sorted(known_protocols))}"
            )
        if name in seen_protocols:
            # Per-protocol outputs (verdicts, vector-support maps) are keyed
            # by name, so a duplicate would silently shadow its twin.
            raise ScenarioError(f"{source}: duplicate protocol {name!r}")
        seen_protocols.add(name)

    max_slots = data.get("max_slots", _DEFAULT_MAX_SLOTS)
    replications = data.get("replications", _DEFAULT_REPLICATIONS)
    base_seed = data.get("base_seed", _DEFAULT_BASE_SEED)
    for field_name, value, minimum in (
        ("max_slots", max_slots, 1),
        ("replications", replications, 1),
        ("base_seed", base_seed, 0),
    ):
        if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
            raise ScenarioError(
                f"{source}: {field_name!r} must be an integer >= {minimum}"
            )

    tags = data.get("tags", [])
    if isinstance(tags, (str, bytes)) or not isinstance(tags, Sequence):
        raise ScenarioError(f"{source}: 'tags' must be an array of strings")
    if not all(isinstance(tag, str) for tag in tags):
        raise ScenarioError(f"{source}: 'tags' must be an array of strings")

    scenario = Scenario(
        scenario_id=scenario_id,
        title=title,
        description=description,
        protocols=tuple(protocols),
        arrivals=_thaw(data["arrivals"]),
        jamming=_thaw(data.get("jamming", {"kind": "none"})),
        max_slots=max_slots,
        replications=replications,
        base_seed=base_seed,
        tags=tuple(tags),
    )
    # Probe-build both components once: constructor range checks and
    # schedule shape rules (positive durations, open-ended only last)
    # surface now, attributed to the source.
    for build, label in (
        (scenario.arrivals_factory, "arrivals"),
        (scenario.jamming_factory, "jamming"),
    ):
        try:
            build().build()
        except ScenarioError as exc:
            # Component-spec errors name the component path but not the
            # file; prefix the source so multi-file runs stay attributable.
            raise ScenarioError(f"{source}: {exc}") from None
        except Exception as exc:
            raise ScenarioError(f"{source}: invalid {label}: {exc}") from exc
    return scenario


def scenario_to_dict(scenario: Scenario) -> dict[str, Any]:
    """Module-level alias of :meth:`Scenario.to_dict` (loader symmetry)."""
    return scenario.to_dict()


# ---------------------------------------------------------------------------
# File loading
# ---------------------------------------------------------------------------


def load_scenario_file(path: str | Path) -> Scenario:
    """Load one scenario from a ``.toml`` or ``.json`` file."""
    file_path = Path(path)
    try:
        text = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {file_path}: {exc}") from exc
    suffix = file_path.suffix.lower()
    if suffix == ".toml":
        import tomllib

        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"{file_path}: invalid TOML: {exc}") from exc
    elif suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{file_path}: invalid JSON: {exc}") from exc
    else:
        raise ScenarioError(
            f"{file_path}: unsupported scenario format {suffix!r} "
            "(expected .toml or .json)"
        )
    return scenario_from_dict(data, source=str(file_path))


def resolve_scenario(name_or_path: str | Path) -> Scenario:
    """A scenario by catalog name, or from a ``.toml``/``.json`` file.

    Only recognised suffixes are treated as files, so a stray local file
    that happens to share a catalog scenario's name never shadows it.
    """
    path = Path(name_or_path)
    if path.suffix.lower() in (".toml", ".json"):
        return load_scenario_file(path)
    from repro.scenarios.catalog import builtin_scenarios

    catalog = builtin_scenarios()
    scenario = catalog.get(str(name_or_path))
    if scenario is None:
        raise ScenarioError(
            f"unknown scenario {name_or_path!r}; catalog scenarios: "
            f"{', '.join(sorted(catalog))} (or pass a .toml/.json file path)"
        )
    return scenario
