"""The schedule DSL: piecewise time-varying adversary behaviour as data.

The paper's guarantees are adversarial — they hold against *time-varying*
arrival and jamming strategies, not just the stationary processes the
stock experiments sweep.  A :class:`Schedule` expresses such a strategy as
a sequence of :class:`Phase` objects, each pairing a component (an arrival
process or a jammer) with a duration in slots: "Bernoulli jamming at rate
0.9 for 500 slots, then silence for 500 slots, then a burst phase".

Inside its phase a component sees *phase-local* slot indices (slot 0 is
the first slot of the phase), so a phase's component is written exactly
like a standalone process — a ``BurstJamming(start=0, length=50)`` phase
jams the first 50 slots of *its phase*, wherever the phase lands in the
execution.  The adapters that drive a schedule through the engines live in
:mod:`repro.adversary.scheduled` (scalar) and
:mod:`repro.sim.vector.adversaries` (lockstep batches).

This module is a leaf: it knows nothing about engines, adversary base
classes, or numpy, so every layer can import it freely.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Any, Iterator, Sequence


@dataclass(frozen=True)
class Phase:
    """One piece of a piecewise schedule: a component active for a duration.

    ``duration`` is a positive number of slots, or ``None`` for an
    open-ended phase (allowed only in the last position of a schedule).
    The component is an arrival process or a jammer *instance*; schedules
    built for sweep plans wrap phases in
    :func:`~repro.experiments.plan.factory` calls instead, so each run
    gets fresh component state.
    """

    component: Any
    duration: int | None = None

    def __post_init__(self) -> None:
        if self.duration is not None:
            if not isinstance(self.duration, int) or isinstance(self.duration, bool):
                raise ValueError("phase duration must be an integer or None")
            if self.duration <= 0:
                raise ValueError("phase duration must be positive")

    def describe(self) -> dict[str, Any]:
        describe = getattr(self.component, "describe", None)
        component = (
            describe()
            if callable(describe)
            else {"type": type(self.component).__name__}
        )
        return {"component": component, "duration": self.duration}


class Schedule:
    """An ordered sequence of phases covering ``[0, total_duration)``.

    Phases are laid back to back starting at slot 0.  Only the last phase
    may be open-ended (``duration=None``); with a finite last phase the
    schedule simply ends, and whatever drives it contributes nothing after
    ``total_duration``.
    """

    def __init__(self, phases: Sequence[Phase]) -> None:
        phases = tuple(phases)
        if not phases:
            raise ValueError("a schedule needs at least one phase")
        starts: list[int] = []
        offset = 0
        for index, phase in enumerate(phases):
            if not isinstance(phase, Phase):
                raise TypeError(f"phase {index} is not a Phase: {phase!r}")
            starts.append(offset)
            if phase.duration is None:
                if index != len(phases) - 1:
                    raise ValueError(
                        "only the last phase of a schedule may be open-ended"
                    )
            else:
                offset += phase.duration
        self.phases = phases
        self._starts = starts
        #: ``None`` when the last phase is open-ended.
        self.total_duration: int | None = (
            None if phases[-1].duration is None else offset
        )

    def __len__(self) -> int:
        return len(self.phases)

    def start_of(self, index: int) -> int:
        """First slot of phase ``index``."""
        return self._starts[index]

    def end_of(self, index: int) -> int | None:
        """One past the last slot of phase ``index`` (``None`` if open-ended)."""
        duration = self.phases[index].duration
        if duration is None:
            return None
        return self._starts[index] + duration

    def phase_at(self, slot: int) -> tuple[int, int] | None:
        """``(phase index, phase-local slot)`` for ``slot``, or ``None``.

        ``None`` means the slot lies past the end of a finite schedule.
        """
        if slot < 0:
            raise ValueError("slot must be non-negative")
        if self.total_duration is not None and slot >= self.total_duration:
            return None
        index = bisect_right(self._starts, slot) - 1
        return index, slot - self._starts[index]

    def segments(self, start: int, count: int) -> Iterator[tuple[int, int, int, int]]:
        """Split ``[start, start + count)`` along phase boundaries.

        Yields ``(phase_index, local_start, offset, length)`` per phase that
        overlaps the range: ``local_start`` is the phase-local slot of the
        segment's first slot and ``offset`` its position within the queried
        range.  Slots past the end of a finite schedule are not covered by
        any segment.
        """
        if start < 0 or count < 0:
            raise ValueError("segment range must be non-negative")
        end = start + count
        for index, phase in enumerate(self.phases):
            phase_start = self._starts[index]
            phase_end = self.end_of(index)
            segment_start = max(start, phase_start)
            segment_end = end if phase_end is None else min(end, phase_end)
            if segment_start >= segment_end:
                continue
            yield (
                index,
                segment_start - phase_start,
                segment_start - start,
                segment_end - segment_start,
            )

    def describe(self) -> dict[str, Any]:
        return {
            "phases": [phase.describe() for phase in self.phases],
            "total_duration": self.total_duration,
        }
