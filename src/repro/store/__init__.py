"""Durable, queryable storage of simulation results.

The :class:`~repro.store.store.ResultsStore` is the persistence layer that
everything above the execution backends writes through: a SQLite run
registry (one row per executed :class:`~repro.experiments.plan.RunSpec`,
keyed by ``(spec_hash, seed, backend_layout)`` with scenario content hash,
code version, timing and headline-metric columns) plus content-addressed
:class:`~repro.sim.results.SimulationResult` artifacts on disk.

The store is what makes campaigns (:mod:`repro.campaigns`) resumable and
cross-run comparisons (``campaign diff``) possible, and it is the backing
persistence of :class:`~repro.exec.cache.ResultCacheBackend`.
"""

from repro.store.store import (
    METRIC_COLUMNS,
    ResultsStore,
    StoredRun,
    StoreError,
    describe_version,
)

__all__ = [
    "METRIC_COLUMNS",
    "ResultsStore",
    "StoreError",
    "StoredRun",
    "describe_version",
]
