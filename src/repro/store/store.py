"""The SQLite-backed results store.

Layout on disk (``root`` is the store directory)::

    root/
      store.db                     # run registry + campaign bookkeeping
      artifacts/ab/abcdef....pkl   # content-addressed SimulationResult pickles

Design rules that the rest of the system depends on:

* **Runs are identified by content, not by history.**  A run row is keyed
  by ``(spec_hash, seed, backend_layout)`` — the spec's content hash
  (:meth:`~repro.experiments.plan.RunSpec.cache_key`), its seed, and the
  identity namespace of the result layout ("scalar" for the bit-identical
  serial/process engines, ``vector:<batch-sig>`` for a lockstep batch of a
  specific composition).  Writing the same run twice is a no-op, which is
  what makes interrupted-and-resumed campaigns converge to the same store
  as uninterrupted ones.
* **Artifacts are content-addressed.**  The full pickled
  :class:`~repro.sim.results.SimulationResult` is stored under the SHA-256
  of its bytes, written atomically (temp file + rename).  Identical
  results share one file; a crash mid-write never leaves a torn artifact
  under a final name; an orphaned artifact (crash between artifact write
  and registry commit) is harmless because a re-run re-produces the exact
  same bytes under the exact same name.
* **Provenance columns never leak into identity.**  ``created_at``,
  ``elapsed_seconds`` and ``version`` record when/how a row was produced;
  :meth:`ResultsStore.fingerprint` — the canonical "are these two stores
  the same science?" digest — covers identities, artifact hashes and
  metric columns only, so two stores produced at different times or speeds
  still fingerprint identically when their results match bit-for-bit.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import pickle
import sqlite3
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from repro.sim.results import SimulationResult

#: Bump when the registry schema changes incompatibly.
STORE_SCHEMA_VERSION = 1


class StoreError(RuntimeError):
    """The store on disk cannot be used by this version of the code."""

#: Headline-metric columns copied from ``SimulationResult.summary()`` into
#: the registry so queries and diffs never need to unpickle artifacts.
METRIC_COLUMNS = (
    "throughput",
    "implicit_throughput",
    "mean_accesses",
    "max_accesses",
    "mean_sends",
    "mean_listens",
    "max_backlog",
    "makespan",
    "num_arrivals",
    "num_delivered",
    "num_slots",
    "drained",
)

_SCHEMA = f"""
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    spec_hash TEXT NOT NULL,
    seed INTEGER NOT NULL,
    backend_layout TEXT NOT NULL,
    artifact_hash TEXT NOT NULL,
    scenario_hash TEXT,
    source TEXT NOT NULL DEFAULT 'cache',
    protocol TEXT,
    version TEXT,
    created_at TEXT NOT NULL,
    elapsed_seconds REAL,
    {", ".join(f"{column} REAL" for column in METRIC_COLUMNS)},
    PRIMARY KEY (spec_hash, seed, backend_layout)
);
CREATE INDEX IF NOT EXISTS runs_by_scenario ON runs (scenario_hash);
CREATE INDEX IF NOT EXISTS runs_by_artifact ON runs (artifact_hash);
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id TEXT PRIMARY KEY,
    scenario_id TEXT,
    scenario_hash TEXT,
    definition TEXT,
    scale TEXT,
    seeds TEXT,
    backend TEXT,
    status TEXT NOT NULL,
    total_runs INTEGER NOT NULL,
    created_at TEXT NOT NULL,
    completed_at TEXT,
    elapsed_seconds REAL NOT NULL DEFAULT 0.0
);
CREATE TABLE IF NOT EXISTS campaign_runs (
    campaign_id TEXT NOT NULL,
    position INTEGER NOT NULL,
    group_id INTEGER NOT NULL,
    protocol TEXT,
    spec_hash TEXT NOT NULL,
    seed INTEGER NOT NULL,
    backend_layout TEXT NOT NULL,
    PRIMARY KEY (campaign_id, position)
);
CREATE TABLE IF NOT EXISTS campaign_units (
    campaign_id TEXT NOT NULL,
    unit_index INTEGER NOT NULL,
    group_id INTEGER NOT NULL,
    protocol TEXT,
    backend_layout TEXT NOT NULL,
    runs INTEGER NOT NULL,
    started_at TEXT,
    elapsed_seconds REAL NOT NULL,
    PRIMARY KEY (campaign_id, unit_index)
);
CREATE TABLE IF NOT EXISTS trajectories (
    spec_hash TEXT NOT NULL,
    seed INTEGER NOT NULL,
    backend_layout TEXT NOT NULL,
    window INTEGER NOT NULL,
    num_slots INTEGER NOT NULL,
    protocol TEXT,
    artifact_hash TEXT NOT NULL,
    created_at TEXT NOT NULL,
    PRIMARY KEY (spec_hash, seed, backend_layout)
);
CREATE TABLE IF NOT EXISTS perf_samples (
    sample_id INTEGER PRIMARY KEY AUTOINCREMENT,
    spec_hash TEXT NOT NULL,
    backend_layout TEXT NOT NULL,
    host TEXT NOT NULL,
    label TEXT,
    runs INTEGER NOT NULL,
    slots INTEGER NOT NULL,
    seconds REAL NOT NULL,
    slots_per_second REAL,
    version TEXT,
    created_at TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS perf_samples_by_group
    ON perf_samples (spec_hash, backend_layout, host);
"""


def _utcnow() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")


_VERSION_CACHE: str | None = None


def describe_version() -> str:
    """A best-effort code-version string for provenance columns.

    ``git describe`` when the package lives in a checkout, otherwise the
    installed distribution version, otherwise ``"unknown"``.  Never raises.
    """
    global _VERSION_CACHE
    if _VERSION_CACHE is not None:
        return _VERSION_CACHE
    version = "unknown"
    try:
        proc = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
        if proc.returncode == 0 and proc.stdout.strip():
            version = proc.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    if version == "unknown":
        try:
            import importlib.metadata

            version = importlib.metadata.version("repro")
        except Exception:
            pass
    _VERSION_CACHE = version
    return version


@dataclass(frozen=True)
class StoredRun:
    """One registry row (metrics included, artifact not loaded)."""

    spec_hash: str
    seed: int
    backend_layout: str
    artifact_hash: str
    scenario_hash: str | None
    source: str
    protocol: str | None
    version: str | None
    created_at: str
    elapsed_seconds: float | None
    metrics: dict[str, float]


class ResultsStore:
    """A durable run registry plus content-addressed result artifacts.

    Open it as a context manager (or call :meth:`close`); all writes are
    transactional, and :meth:`put_run` is idempotent by design.
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.artifacts_dir = self.root / "artifacts"
        self.db_path = self.root / "store.db"
        self._connection = sqlite3.connect(self.db_path)
        self._connection.row_factory = sqlite3.Row
        with self._connection:
            self._connection.executescript(_SCHEMA)
            self._connection.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema', ?)",
                (str(STORE_SCHEMA_VERSION),),
            )
        recorded = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'schema'"
        ).fetchone()[0]
        if recorded != str(STORE_SCHEMA_VERSION):
            self._connection.close()
            raise StoreError(
                f"results store {self.root} was written with schema "
                f"v{recorded}; this code expects v{STORE_SCHEMA_VERSION} — "
                "use a matching version or start a fresh store directory"
            )

    # -- Lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- Artifacts ---------------------------------------------------------

    def _artifact_path(self, artifact_hash: str) -> Path:
        return self.artifacts_dir / artifact_hash[:2] / f"{artifact_hash}.pkl"

    def _write_artifact(self, result: SimulationResult) -> str:
        # Dynamics trajectories are observability, not results: they are
        # persisted as *separate* artifacts (see put_run), and the run
        # artifact is pickled with the field stripped so its bytes — and
        # therefore the store fingerprint — are identical whether or not
        # the run was executed with dynamics sampling on.
        dynamics = getattr(result, "dynamics", None)
        if dynamics is not None:
            result.dynamics = None
        try:
            return self._write_payload(result)
        finally:
            if dynamics is not None:
                result.dynamics = dynamics

    def _write_payload(self, payload_object: Any) -> str:
        # Canonicalise through one pickle round trip before hashing:
        # pickle's memo encodes *object identity* (interned/shared strings
        # become backrefs), so a freshly built result and the same result
        # after a process-pool round trip serialise to different bytes.
        # Repickling an unpickled object is stable and identical across
        # those histories, which is what makes artifact hashes a function
        # of result content rather than of which backend produced it.
        payload = pickle.dumps(
            pickle.loads(pickle.dumps(payload_object, protocol=pickle.HIGHEST_PROTOCOL)),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        artifact_hash = hashlib.sha256(payload).hexdigest()
        path = self._artifact_path(artifact_hash)
        # Always write, even when the path exists: the name is the content
        # hash, so an existing *valid* file is replaced by identical bytes
        # (harmless), while an existing *corrupt* file — truncated by a
        # crash or damaged on disk — is healed instead of trusted.
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_suffix(f".tmp.{os.getpid()}")
        temporary.write_bytes(payload)
        temporary.replace(path)
        return artifact_hash

    def load_artifact(self, artifact_hash: str) -> SimulationResult | None:
        """Unpickle one artifact, or ``None`` if missing/corrupt."""
        try:
            with self._artifact_path(artifact_hash).open("rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Corrupt bytes or classes that moved between versions: treat
            # as absent so callers re-run instead of crashing.
            return None

    # -- Runs --------------------------------------------------------------

    def put_run(
        self,
        spec_hash: str,
        seed: int,
        backend_layout: str,
        result: SimulationResult,
        *,
        scenario_hash: str | None = None,
        source: str = "cache",
        elapsed_seconds: float | None = None,
    ) -> str:
        """Store one run (idempotent); returns the artifact hash.

        An existing row under the same key keeps its provenance (source,
        scenario hash, timestamps) — runs are deterministic functions of
        their key, so the stored row is already the right one.  If the
        existing row's artifact hash disagrees with the fresh result's
        (possible only if determinism was violated by an older code
        version), the row's artifact hash and metrics are repaired in
        place, atomically, so the registry never points at bytes that
        will not be re-produced.
        """
        artifact_hash = self._write_artifact(result)
        summary = result.summary()
        # METRIC_COLUMNS names RunSummary fields, so the schema has one
        # source of truth: adding a column there is the whole change.
        metrics = {
            column: float(getattr(summary, column)) for column in METRIC_COLUMNS
        }
        columns = ", ".join(METRIC_COLUMNS)
        placeholders = ", ".join("?" for _ in METRIC_COLUMNS)
        metric_values = [metrics[column] for column in METRIC_COLUMNS]
        with self._connection:
            cursor = self._connection.execute(
                f"INSERT OR IGNORE INTO runs "
                f"(spec_hash, seed, backend_layout, artifact_hash, scenario_hash, "
                f" source, protocol, version, created_at, elapsed_seconds, {columns}) "
                f"VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, {placeholders})",
                (
                    spec_hash,
                    seed,
                    backend_layout,
                    artifact_hash,
                    scenario_hash,
                    source,
                    summary.protocol,
                    describe_version(),
                    _utcnow(),
                    elapsed_seconds,
                    *metric_values,
                ),
            )
            if cursor.rowcount == 0:
                assignments = ", ".join(f"{column} = ?" for column in METRIC_COLUMNS)
                self._connection.execute(
                    f"UPDATE runs SET artifact_hash = ?, {assignments} "
                    f"WHERE spec_hash = ? AND seed = ? AND backend_layout = ? "
                    f"AND artifact_hash != ?",
                    (
                        artifact_hash,
                        *metric_values,
                        spec_hash,
                        seed,
                        backend_layout,
                        artifact_hash,
                    ),
                )
        dynamics = getattr(result, "dynamics", None)
        if dynamics is not None:
            self.put_trajectory(
                spec_hash,
                seed,
                backend_layout,
                dynamics,
                protocol=summary.protocol,
            )
        return artifact_hash

    def get_run(
        self, spec_hash: str, seed: int, backend_layout: str
    ) -> StoredRun | None:
        row = self._connection.execute(
            "SELECT * FROM runs WHERE spec_hash = ? AND seed = ? AND backend_layout = ?",
            (spec_hash, seed, backend_layout),
        ).fetchone()
        return self._stored_run(row) if row is not None else None

    def get_result(
        self, spec_hash: str, seed: int, backend_layout: str
    ) -> SimulationResult | None:
        """The full artifact of one run, or ``None`` if absent/corrupt."""
        run = self.get_run(spec_hash, seed, backend_layout)
        if run is None:
            return None
        return self.load_artifact(run.artifact_hash)

    def has_run(self, spec_hash: str, seed: int, backend_layout: str) -> bool:
        return self.get_run(spec_hash, seed, backend_layout) is not None

    def delete_run(self, spec_hash: str, seed: int, backend_layout: str) -> None:
        """Drop one registry row (artifact cleanup is :meth:`prune`'s job)."""
        with self._connection:
            self._connection.execute(
                "DELETE FROM runs WHERE spec_hash = ? AND seed = ? "
                "AND backend_layout = ?",
                (spec_hash, seed, backend_layout),
            )

    def iter_runs(self, *, source: str | None = None) -> list[StoredRun]:
        query = "SELECT * FROM runs"
        params: tuple[Any, ...] = ()
        if source is not None:
            query += " WHERE source = ?"
            params = (source,)
        query += " ORDER BY spec_hash, seed, backend_layout"
        return [self._stored_run(row) for row in self._connection.execute(query, params)]

    def _stored_run(self, row: sqlite3.Row) -> StoredRun:
        return StoredRun(
            spec_hash=row["spec_hash"],
            seed=row["seed"],
            backend_layout=row["backend_layout"],
            artifact_hash=row["artifact_hash"],
            scenario_hash=row["scenario_hash"],
            source=row["source"],
            protocol=row["protocol"],
            version=row["version"],
            created_at=row["created_at"],
            elapsed_seconds=row["elapsed_seconds"],
            metrics={column: row[column] for column in METRIC_COLUMNS},
        )

    # -- Trajectories ------------------------------------------------------

    def put_trajectory(
        self,
        spec_hash: str,
        seed: int,
        backend_layout: str,
        trajectory: Any,
        *,
        protocol: str | None = None,
    ) -> str:
        """Persist one dynamics trajectory as a content-addressed artifact.

        Trajectories live in their own registry table and their own
        artifacts — :meth:`fingerprint` covers only ``runs`` and
        ``campaign_runs``, so storing (or re-storing) a trajectory can
        never move a store fingerprint.
        """
        artifact_hash = self._write_payload(trajectory)
        with self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO trajectories (spec_hash, seed, "
                "backend_layout, window, num_slots, protocol, artifact_hash, "
                "created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    spec_hash,
                    seed,
                    backend_layout,
                    int(trajectory.window),
                    int(trajectory.num_slots),
                    protocol,
                    artifact_hash,
                    _utcnow(),
                ),
            )
        return artifact_hash

    def get_trajectory(
        self, spec_hash: str, seed: int, backend_layout: str
    ) -> Any | None:
        """The stored trajectory of one run, or ``None`` if absent/corrupt."""
        row = self._connection.execute(
            "SELECT artifact_hash FROM trajectories WHERE spec_hash = ? "
            "AND seed = ? AND backend_layout = ?",
            (spec_hash, seed, backend_layout),
        ).fetchone()
        if row is None:
            return None
        return self.load_artifact(row["artifact_hash"])

    def trajectory_rows(self, *, spec_prefix: str | None = None) -> list[dict[str, Any]]:
        """Trajectory registry rows, optionally filtered by spec-hash prefix."""
        query = "SELECT * FROM trajectories"
        params: tuple[Any, ...] = ()
        if spec_prefix:
            query += " WHERE spec_hash LIKE ?"
            params = (spec_prefix + "%",)
        query += " ORDER BY spec_hash, seed, backend_layout"
        return [dict(row) for row in self._connection.execute(query, params)]

    # -- Performance history -----------------------------------------------

    def put_perf_sample(
        self,
        *,
        spec_hash: str,
        backend_layout: str,
        host: str,
        seconds: float,
        runs: int = 0,
        slots: int = 0,
        slots_per_second: float | None = None,
        label: str | None = None,
    ) -> int:
        """Append one wall-clock sample to the performance history.

        Samples are keyed by (spec_hash, backend_layout, host) — drift
        detection only ever compares within one group.  The table is
        append-only provenance: it is excluded from :meth:`fingerprint`,
        so recording perf can never change what the store *means*.
        Returns the new sample's rowid.
        """
        with self._connection:
            cursor = self._connection.execute(
                "INSERT INTO perf_samples (spec_hash, backend_layout, host, "
                "label, runs, slots, seconds, slots_per_second, version, "
                "created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    spec_hash,
                    backend_layout,
                    host,
                    label,
                    int(runs),
                    int(slots),
                    float(seconds),
                    float(slots_per_second) if slots_per_second is not None else None,
                    describe_version(),
                    _utcnow(),
                ),
            )
        return int(cursor.lastrowid or 0)

    def perf_sample_rows(
        self, *, spec_prefix: str | None = None
    ) -> list[dict[str, Any]]:
        """Perf history rows in recording order (oldest first).

        Recording order — not timestamp order — is the drift-detection
        contract: ``detect_drift`` windows a series by position.
        """
        query = "SELECT * FROM perf_samples"
        params: tuple[Any, ...] = ()
        if spec_prefix:
            query += " WHERE spec_hash LIKE ?"
            params = (spec_prefix + "%",)
        query += " ORDER BY sample_id"
        return [dict(row) for row in self._connection.execute(query, params)]

    # -- Campaigns ---------------------------------------------------------

    def create_campaign(
        self,
        campaign_id: str,
        *,
        scenario_id: str | None,
        scenario_hash: str | None,
        definition: Mapping[str, Any] | None,
        scale: str,
        seeds: Sequence[int],
        backend: str,
        total_runs: int,
    ) -> None:
        with self._connection:
            self._connection.execute(
                "INSERT INTO campaigns (campaign_id, scenario_id, scenario_hash, "
                "definition, scale, seeds, backend, status, total_runs, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, 'running', ?, ?)",
                (
                    campaign_id,
                    scenario_id,
                    scenario_hash,
                    json.dumps(definition, sort_keys=True) if definition else None,
                    scale,
                    json.dumps(list(seeds)),
                    backend,
                    total_runs,
                    _utcnow(),
                ),
            )

    def get_campaign(self, campaign_id: str) -> dict[str, Any] | None:
        row = self._connection.execute(
            "SELECT * FROM campaigns WHERE campaign_id = ?", (campaign_id,)
        ).fetchone()
        return dict(row) if row is not None else None

    def list_campaigns(self) -> list[dict[str, Any]]:
        rows = self._connection.execute(
            "SELECT * FROM campaigns ORDER BY created_at, campaign_id"
        ).fetchall()
        return [dict(row) for row in rows]

    def campaign_run_count(self, campaign_id: str) -> int:
        """Recorded runs of one campaign (constant memory; for progress)."""
        return self._connection.execute(
            "SELECT COUNT(*) FROM campaign_runs WHERE campaign_id = ?",
            (campaign_id,),
        ).fetchone()[0]

    def campaign_run_rows(self, campaign_id: str) -> list[dict[str, Any]]:
        rows = self._connection.execute(
            "SELECT * FROM campaign_runs WHERE campaign_id = ? ORDER BY position",
            (campaign_id,),
        ).fetchall()
        return [dict(row) for row in rows]

    def record_campaign_unit(
        self,
        campaign_id: str,
        entries: Iterable[tuple[int, int, str, str, int, str]],
        *,
        elapsed_seconds: float,
        unit_index: int | None = None,
        started_at: str | None = None,
    ) -> None:
        """Commit one completed campaign unit.

        ``entries`` are ``(position, group_id, protocol, spec_hash, seed,
        backend_layout)`` tuples.  One transaction per unit is the
        checkpoint granularity: after this returns, a kill loses at most
        the unit in flight.

        When ``unit_index`` is given, a per-unit wall-clock span is also
        persisted in ``campaign_units`` (in the same transaction), which
        is what backs ``campaign status``'s elapsed/ETA display.  Unit
        spans are provenance, not science: :meth:`fingerprint` covers only
        ``runs`` and ``campaign_runs``, so recording them — always, with
        telemetry on or off — cannot move a fingerprint.
        """
        entries = list(entries)
        with self._connection:
            self._connection.executemany(
                "INSERT OR REPLACE INTO campaign_runs "
                "(campaign_id, position, group_id, protocol, spec_hash, seed, "
                " backend_layout) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [(campaign_id, *entry) for entry in entries],
            )
            self._connection.execute(
                "UPDATE campaigns SET elapsed_seconds = elapsed_seconds + ? "
                "WHERE campaign_id = ?",
                (elapsed_seconds, campaign_id),
            )
            if unit_index is not None and entries:
                self._connection.execute(
                    "INSERT OR REPLACE INTO campaign_units (campaign_id, "
                    "unit_index, group_id, protocol, backend_layout, runs, "
                    "started_at, elapsed_seconds) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        campaign_id,
                        unit_index,
                        entries[0][1],
                        entries[0][2],
                        entries[0][5],
                        len(entries),
                        started_at,
                        elapsed_seconds,
                    ),
                )

    def campaign_units(self, campaign_id: str) -> list[dict[str, Any]]:
        """Persisted per-unit wall-clock spans, in unit order."""
        rows = self._connection.execute(
            "SELECT * FROM campaign_units WHERE campaign_id = ? ORDER BY unit_index",
            (campaign_id,),
        ).fetchall()
        return [dict(row) for row in rows]

    def finish_campaign(self, campaign_id: str) -> None:
        with self._connection:
            self._connection.execute(
                "UPDATE campaigns SET status = 'complete', completed_at = ? "
                "WHERE campaign_id = ?",
                (_utcnow(), campaign_id),
            )

    # -- Identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """Canonical SHA-256 over the store's *scientific* content.

        Covers every run row's identity, artifact hash and metric columns,
        plus the campaign run-membership tables — and deliberately excludes
        timestamps, versions, elapsed times and campaign status, so an
        interrupted-then-resumed campaign fingerprints identically to an
        uninterrupted one.  Artifacts are content-addressed, so equal
        fingerprints imply byte-identical artifact payloads.
        """
        # source and scenario_hash are provenance (how the row got here),
        # not science: a run first stored by `--cache-dir` and later
        # adopted by a campaign must fingerprint the same as one the
        # campaign executed itself.
        runs = [
            [
                run.spec_hash,
                run.seed,
                run.backend_layout,
                run.artifact_hash,
                run.protocol,
                [repr(run.metrics[column]) for column in METRIC_COLUMNS],
            ]
            for run in self.iter_runs()
        ]
        memberships = sorted(
            (
                row["campaign_id"],
                row["position"],
                row["group_id"],
                row["protocol"],
                row["spec_hash"],
                row["seed"],
                row["backend_layout"],
            )
            for row in self._connection.execute("SELECT * FROM campaign_runs")
        )
        payload = json.dumps(
            {"runs": runs, "campaign_runs": memberships},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # -- Maintenance -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Entry counts and on-disk sizes (for ``cache stats``)."""
        run_count = self._connection.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
        by_source = dict(
            self._connection.execute(
                "SELECT source, COUNT(*) FROM runs GROUP BY source"
            ).fetchall()
        )
        by_layout = dict(
            self._connection.execute(
                "SELECT backend_layout, COUNT(*) FROM runs GROUP BY backend_layout"
            ).fetchall()
        )
        campaign_count = self._connection.execute(
            "SELECT COUNT(*) FROM campaigns"
        ).fetchone()[0]
        trajectory_count = self._connection.execute(
            "SELECT COUNT(*) FROM trajectories"
        ).fetchone()[0]
        perf_sample_count = self._connection.execute(
            "SELECT COUNT(*) FROM perf_samples"
        ).fetchone()[0]
        artifact_files = list(self.artifacts_dir.rglob("*.pkl"))
        artifact_bytes = sum(path.stat().st_size for path in artifact_files)
        return {
            "root": str(self.root),
            "runs": run_count,
            "runs_by_source": by_source,
            "runs_by_layout": by_layout,
            "campaigns": campaign_count,
            "trajectories": trajectory_count,
            "perf_samples": perf_sample_count,
            "artifacts": len(artifact_files),
            "artifact_bytes": artifact_bytes,
            "db_bytes": self.db_path.stat().st_size if self.db_path.exists() else 0,
        }

    def prune(
        self,
        *,
        older_than_days: float | None = None,
        max_bytes: int | None = None,
        dry_run: bool = False,
    ) -> dict[str, Any]:
        """Prune cache-sourced runs by age and/or total artifact size.

        Only rows not referenced by any campaign are candidates (campaign
        stores are the durable record ``campaign diff`` compares against).
        ``older_than_days`` drops candidates older than the cutoff;
        ``max_bytes`` then drops oldest-first until the store's artifact
        payload fits.  Orphaned artifacts (referenced by no remaining row)
        are deleted last.  Returns a summary of what was (or would be,
        with ``dry_run``) removed.
        """
        candidates = self._connection.execute(
            "SELECT spec_hash, seed, backend_layout, artifact_hash, created_at "
            "FROM runs WHERE NOT EXISTS ("
            "  SELECT 1 FROM campaign_runs c WHERE c.spec_hash = runs.spec_hash "
            "  AND c.seed = runs.seed AND c.backend_layout = runs.backend_layout"
            ") ORDER BY created_at, spec_hash"
        ).fetchall()
        doomed: list[sqlite3.Row] = []
        if older_than_days is not None:
            cutoff = (
                datetime.datetime.now(datetime.timezone.utc)
                - datetime.timedelta(days=older_than_days)
            ).isoformat(timespec="seconds")
            doomed.extend(row for row in candidates if row["created_at"] < cutoff)
        if max_bytes is not None:
            doomed_keys = {
                (row["spec_hash"], row["seed"], row["backend_layout"]) for row in doomed
            }
            remaining = [
                row
                for row in candidates
                if (row["spec_hash"], row["seed"], row["backend_layout"])
                not in doomed_keys
            ]
            # Size after this prune = artifacts still referenced by a
            # surviving row (a doomed row's artifact is only freed once no
            # survivor shares it; orphans are swept regardless).
            total = self._kept_artifact_bytes(doomed)
            for row in remaining:
                if total <= max_bytes:
                    break
                size = self._artifact_size_if_unshared(row, doomed)
                doomed.append(row)
                total -= size
        removed_rows = len(doomed)
        if not dry_run:
            doomed_keys = [
                (row["spec_hash"], row["seed"], row["backend_layout"])
                for row in doomed
            ]
            with self._connection:
                self._connection.executemany(
                    "DELETE FROM runs WHERE spec_hash = ? AND seed = ? "
                    "AND backend_layout = ?",
                    doomed_keys,
                )
                # A trajectory without its run row is dead weight; dropping
                # it here lets the orphan sweep reclaim its artifact too.
                self._connection.executemany(
                    "DELETE FROM trajectories WHERE spec_hash = ? AND seed = ? "
                    "AND backend_layout = ?",
                    doomed_keys,
                )
            removed_files, removed_bytes = self._sweep_orphan_artifacts()
        else:
            removed_files, removed_bytes = self._orphan_preview(doomed)
        return {
            "removed_runs": removed_rows,
            "removed_artifacts": removed_files,
            "removed_bytes": removed_bytes,
            "dry_run": dry_run,
        }

    def _referenced_hashes(self) -> set[str]:
        return {
            row[0]
            for row in self._connection.execute("SELECT artifact_hash FROM runs")
        } | {
            row[0]
            for row in self._connection.execute(
                "SELECT artifact_hash FROM trajectories"
            )
        }

    def _kept_hashes(self, doomed: Sequence[sqlite3.Row]) -> set[str]:
        """Artifact hashes still referenced once ``doomed`` rows are gone.

        The single survivorship rule behind prune's byte accounting, its
        dry-run preview, and the size-if-unshared probe: a shared artifact
        survives as long as any referent does.
        """
        doomed_keys = {
            (row["spec_hash"], row["seed"], row["backend_layout"]) for row in doomed
        }
        # Trajectory rows share the run key space and die with their run,
        # so surviving trajectory artifacts join the kept set.
        return {
            row["artifact_hash"]
            for table in ("runs", "trajectories")
            for row in self._connection.execute(
                f"SELECT spec_hash, seed, backend_layout, artifact_hash FROM {table}"
            )
            if (row["spec_hash"], row["seed"], row["backend_layout"])
            not in doomed_keys
        }

    def _kept_artifact_bytes(self, doomed: Sequence[sqlite3.Row]) -> int:
        """Bytes the store would still hold after deleting ``doomed`` rows
        and sweeping orphans."""
        total = 0
        for artifact_hash in self._kept_hashes(doomed):
            try:
                total += self._artifact_path(artifact_hash).stat().st_size
            except OSError:
                pass
        return total

    def _artifact_size_if_unshared(
        self, row: sqlite3.Row, doomed: Sequence[sqlite3.Row]
    ) -> int:
        """Bytes freed by dropping ``row`` (0 while other rows share its artifact)."""
        if row["artifact_hash"] in self._kept_hashes(list(doomed) + [row]):
            return 0
        try:
            return self._artifact_path(row["artifact_hash"]).stat().st_size
        except OSError:
            return 0

    def _sweep_orphan_artifacts(self) -> tuple[int, int]:
        referenced = self._referenced_hashes()
        removed_files = 0
        removed_bytes = 0
        for path in self.artifacts_dir.rglob("*.pkl"):
            if path.stem not in referenced:
                removed_bytes += path.stat().st_size
                path.unlink()
                removed_files += 1
        # Temp files orphaned by a kill mid-write (the crash mode campaigns
        # are built to survive) would otherwise be invisible to every
        # *.pkl glob forever.  A minute of age keeps a concurrent writer's
        # in-flight temp safe.
        import time

        cutoff = time.time() - 60.0
        for path in self.artifacts_dir.rglob("*.tmp.*"):
            try:
                if path.stat().st_mtime < cutoff:
                    removed_bytes += path.stat().st_size
                    path.unlink()
                    removed_files += 1
            except OSError:
                pass
        return removed_files, removed_bytes

    def _orphan_preview(self, doomed: Sequence[sqlite3.Row]) -> tuple[int, int]:
        kept_hashes = self._kept_hashes(doomed)
        removed_files = 0
        removed_bytes = 0
        for path in self.artifacts_dir.rglob("*.pkl"):
            if path.stem not in kept_hashes:
                removed_files += 1
                removed_bytes += path.stat().st_size
        return removed_files, removed_bytes
