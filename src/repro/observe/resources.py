"""``/proc``-based process resource sampling.

Two consumption patterns, both emitting through the active telemetry
session as ``resource_sample`` point events (so the existing JSONL
per-line-flush SIGKILL contract and the result-inertness guarantee apply
unchanged):

* :class:`ResourceSampler` — a daemon interval thread in the parent
  process, for wall-clock-correlated RSS/CPU/fd series;
* :func:`sample_process` — a one-shot snapshot, which pool workers take
  at job boundaries (see ``repro.exec.backends._execute_pool_job``) and
  hand back to the parent for emission, because telemetry sessions are
  process-local and workers have none.

Reading ``/proc`` is a few microseconds and never raises out of here: on
platforms without procfs the reader degrades to ``os.times()`` for CPU
and reports what it can, so instrumented code needs no platform guards.
"""

from __future__ import annotations

import os
import threading
from typing import Any

#: Default seconds between parent-process samples.
DEFAULT_INTERVAL = 0.25


def _sysconf(name: str, fallback: int) -> int:
    try:
        value = os.sysconf(name)
        return int(value) if value > 0 else fallback
    except (AttributeError, ValueError, OSError):
        return fallback


_PAGE_SIZE = _sysconf("SC_PAGE_SIZE", 4096)
_CLOCK_TICKS = _sysconf("SC_CLK_TCK", 100)


def _read_rss_bytes(pid: int | str) -> int | None:
    """Resident set size from ``/proc/<pid>/statm`` (None off-Linux)."""
    try:
        with open(f"/proc/{pid}/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        return None


def _read_cpu_seconds(pid: int | str) -> float | None:
    """utime+stime from ``/proc/<pid>/stat``, else ``os.times()`` for self."""
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            stat = handle.read().decode("ascii", errors="replace")
        # comm can contain spaces/parens; fields start after the last ')'.
        fields = stat[stat.rfind(")") + 2 :].split()
        utime, stime = int(fields[11]), int(fields[12])
        return (utime + stime) / _CLOCK_TICKS
    except (OSError, ValueError, IndexError):
        if pid in ("self", os.getpid()):
            try:
                times = os.times()
                return float(times.user + times.system)
            except OSError:
                return None
        return None


def _count_fds(pid: int | str) -> int | None:
    try:
        return len(os.listdir(f"/proc/{pid}/fd"))
    except OSError:
        return None


def sample_process(pid: int | str = "self") -> dict[str, Any]:
    """One resource snapshot of ``pid`` (keys absent when unreadable).

    The returned dict is exactly the attribute payload of a
    ``resource_sample`` telemetry event (minus ``pid``/``source``, which
    the emitter stamps), and is picklable so workers can return it.
    """
    sample: dict[str, Any] = {}
    rss = _read_rss_bytes(pid)
    if rss is not None:
        sample["rss_bytes"] = rss
    cpu = _read_cpu_seconds(pid)
    if cpu is not None:
        sample["cpu_seconds"] = round(cpu, 4)
    fds = _count_fds(pid)
    if fds is not None:
        sample["fds"] = fds
    return sample


class ResourceSampler:
    """A daemon thread sampling the current process every ``interval``.

    Use as a context manager around the instrumented region::

        with activated(session), ResourceSampler(session, interval=0.25):
            ...

    Emission goes through ``session.event("resource_sample", ...)``, so
    with a :class:`~repro.telemetry.sinks.JsonlSink` attached every
    sample is flushed line-by-line — a SIGKILL mid-run leaves at most one
    truncated final line, which the reader already tolerates.  One sample
    is always taken synchronously on entry and one on clean exit, so even
    a run shorter than the interval records its bounds.
    """

    def __init__(self, session: Any, interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self._session = session
        self.interval = interval
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _emit_sample(self) -> None:
        try:
            sample = sample_process()
            if sample:
                self._session.event(
                    "resource_sample", pid=os.getpid(), source="parent", **sample
                )
        except Exception:
            # Observability must never take down the run it observes.
            pass

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._emit_sample()

    def start(self) -> None:
        if self._thread is not None:
            return
        self._emit_sample()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._emit_sample()

    def __enter__(self) -> "ResourceSampler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class _NullSampler:
    """The no-op stand-in when sampling is off (one ``with`` either way)."""

    def __enter__(self) -> "_NullSampler":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def start(self) -> None:
        pass

    def stop(self) -> None:
        pass


NULL_SAMPLER = _NullSampler()


def make_sampler(session: Any, interval: float | None) -> Any:
    """A running-or-null sampler: ``None``/no-session ⇒ the shared no-op."""
    if interval is None or session is None or not getattr(session, "enabled", False):
        return NULL_SAMPLER
    return ResourceSampler(session, interval=interval)
