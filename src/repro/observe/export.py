"""Zero-dependency exporters: Prometheus text format and JSON.

``to_prometheus`` renders a registry in the Prometheus text exposition
format (version 0.0.4) — the seam the future FastAPI service's
``/metrics`` endpoint returns verbatim.  Conformance points the tests
pin down:

* every metric gets exactly one ``# HELP`` and one ``# TYPE`` line;
* metric names match ``[a-zA-Z_:][a-zA-Z0-9_:]*`` (enforced at metric
  creation, re-checked here);
* label values escape backslash, double-quote and newline per the spec;
* histograms export as the ``summary`` exposition type — quantile series
  (``{quantile="0.5"}`` …) plus ``_sum``/``_count`` — because the
  registry keeps exact observations rather than fixed buckets.

``to_json`` is the same content as a structured document (one entry per
metric with type, help, and labelled samples), for dashboards and tests
that would rather not parse the text format.
"""

from __future__ import annotations

import json
from typing import Any

from repro.observe.registry import (
    HISTOGRAM_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    summarize_distribution,
)


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP lines escape backslash and newline (but not quotes)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{name}="{escape_label_value(value)}"'
        for name, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _render_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry as a text-format exposition document."""
    lines: list[str] = []
    for metric in registry.metrics():
        if isinstance(metric, Histogram):
            exposition_type = "summary"
        elif isinstance(metric, Counter):
            exposition_type = "counter"
        elif isinstance(metric, Gauge):
            exposition_type = "gauge"
        else:
            exposition_type = "untyped"
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {exposition_type}")
        for labels, value in metric.samples():
            if isinstance(metric, Histogram):
                stats = summarize_distribution(value)
                for q in HISTOGRAM_QUANTILES:
                    rendered = _render_labels(labels, {"quantile": str(q)})
                    lines.append(
                        f"{metric.name}{rendered} "
                        f"{_render_value(stats[f'p{int(q * 100)}'])}"
                    )
                lines.append(
                    f"{metric.name}_sum{_render_labels(labels)} "
                    f"{_render_value(stats['sum'])}"
                )
                lines.append(
                    f"{metric.name}_count{_render_labels(labels)} "
                    f"{_render_value(stats['count'])}"
                )
            else:
                lines.append(
                    f"{metric.name}{_render_labels(labels)} {_render_value(value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def registry_to_dict(registry: MetricsRegistry) -> dict[str, Any]:
    """The registry as a JSON-friendly document (one entry per metric)."""
    metrics: list[dict[str, Any]] = []
    for metric in registry.metrics():
        samples: list[dict[str, Any]] = []
        for labels, value in metric.samples():
            if isinstance(metric, Histogram):
                samples.append({"labels": labels, **summarize_distribution(value)})
            else:
                samples.append({"labels": labels, "value": float(value)})
        metrics.append(
            {
                "name": metric.name,
                "type": metric.metric_type,
                "help": metric.help,
                "samples": samples,
            }
        )
    return {"metrics": metrics}


def to_json(registry: MetricsRegistry, *, indent: int | None = 2) -> str:
    return json.dumps(registry_to_dict(registry), indent=indent, sort_keys=False)
