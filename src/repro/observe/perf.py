"""Store-backed performance history and drift detection.

``BENCH_*.json`` bars are only checked when a benchmark runs; the store's
``elapsed_seconds`` columns are write-only provenance.  This module makes
wall-clock a first-class, queryable time series: ``perf record`` executes
a scenario's plan on a chosen backend, measures wall-clock and slots/sec,
and appends one row to the store's ``perf_samples`` table — keyed by the
scenario's content hash, the backend layout, and a **host fingerprint**
(samples from different machines are never compared).  ``perf regress``
then Welch-tests the latest window of samples against the rolling
baseline before it and exits non-zero on sustained drift.

Drift rule (:func:`detect_drift`): the latest ``window`` samples drift
when their mean is more than ``factor`` slower than the baseline mean
*and* — whenever both sides support a Welch test — the difference is
significant at ``alpha``.  The factor gate keeps one noisy sample from
crying wolf; the significance gate keeps a materially-slower-looking but
statistically-flat comparison honest.  Groups with too little history
report ``insufficient`` and never fail the gate.

Exit-code contract (enforced by ``python -m repro perf regress``):

* ``0`` — no group drifted (insufficient-history groups count as clean);
* ``1`` — at least one (scenario, backend layout, host) group shows
  sustained drift;
* ``2`` — usage error (argparse).

``REPRO_PERF_INJECT_SLEEP=<seconds>`` injects a sleep into the timed
region of ``perf record`` — the deterministic regression fixture CI uses
to prove the gate actually fails, mirroring
``REPRO_CAMPAIGN_FAIL_AFTER_UNITS``.

Perf samples are provenance, not science: the table is excluded from
:meth:`~repro.store.ResultsStore.fingerprint`, and ``perf record``
discards the simulation results it times (no run rows are written), so
recording can never move a fingerprint.
"""

from __future__ import annotations

import hashlib
import os
import platform
import time
from typing import Any, Mapping, Sequence

from repro.analysis.statistics import welch_t_test

#: Samples in the "latest" window regress compares against the baseline.
DEFAULT_WINDOW = 2

#: Most-recent baseline samples the window is compared against.
DEFAULT_BASELINE = 8

#: Welch significance level for the drift test.
DEFAULT_ALPHA = 0.05

#: Material-slowdown gate: latest/baseline mean ratio that counts as drift.
DEFAULT_FACTOR = 1.2

_HOST_CACHE: str | None = None


def _cpu_model() -> str:
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or "unknown"


def host_fingerprint() -> str:
    """A stable short digest of the hardware/platform identity.

    Covers machine architecture, OS, CPU model and logical core count —
    the axes along which wall-clock comparisons stop being meaningful.
    Deliberately excludes hostname (same-spec CI runners should share a
    history) and code version (drift *across* versions is the point).
    """
    global _HOST_CACHE
    if _HOST_CACHE is None:
        payload = "|".join(
            (
                platform.machine(),
                platform.system(),
                _cpu_model(),
                str(os.cpu_count() or 0),
            )
        )
        _HOST_CACHE = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]
    return _HOST_CACHE


def backend_layout_name(backend_name: str, workers: int | None) -> str:
    """The perf-sample layout key: backend plus pool width when it has one."""
    if backend_name == "processes":
        return f"processes:w{workers or os.cpu_count() or 1}"
    return backend_name


def record_scenario_perf(
    store: Any,
    scenario: Any,
    *,
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    backend_name: str = "serial",
    workers: int | None = None,
    label: str | None = None,
) -> dict[str, Any]:
    """Execute ``scenario``'s plan once, timed, and store one perf sample.

    Results are discarded after counting slots — this is a stopwatch, not
    a campaign — so the only store write is the ``perf_samples`` row
    (committed in one transaction).  Returns the stored sample row.
    """
    from repro.exec import make_backend
    from repro.scenarios.runner import build_plan, scenario_seeds

    seed_list = scenario_seeds(scenario, scale, seeds)
    plan = build_plan(scenario, scale, seed_list)
    inject = float(os.environ.get("REPRO_PERF_INJECT_SLEEP", "0") or 0.0)
    with make_backend(backend_name, workers=workers) as backend:
        started = time.perf_counter()
        results = plan.run(backend).results
        if inject > 0:
            # Deterministic regression fixture (see module docstring).
            time.sleep(inject)
        elapsed = time.perf_counter() - started
    slots = sum(result.num_slots for result in results)
    sample = {
        "spec_hash": scenario.content_hash(),
        "backend_layout": backend_layout_name(backend_name, workers),
        "host": host_fingerprint(),
        "label": label or f"{scenario.scenario_id}@{scale}",
        "runs": len(results),
        "slots": int(slots),
        "seconds": round(elapsed, 6),
        "slots_per_second": round(slots / elapsed, 2) if elapsed > 0 else None,
    }
    store.put_perf_sample(**sample)
    return sample


def detect_drift(
    seconds: Sequence[float],
    *,
    window: int = DEFAULT_WINDOW,
    baseline: int = DEFAULT_BASELINE,
    alpha: float = DEFAULT_ALPHA,
    factor: float = DEFAULT_FACTOR,
) -> dict[str, Any]:
    """Drift verdict over one group's wall-clock series (oldest first).

    Returns a dict with ``status`` (``"drift"``, ``"ok"`` or
    ``"insufficient"``), the latest/baseline means and their ratio, and
    the Welch p-value when both sides support the test (``None``
    otherwise — degenerate variance or a single-sample window, where the
    factor gate alone decides).
    """
    values = [float(value) for value in seconds]
    if window < 1:
        raise ValueError("window must be at least 1")
    if len(values) < window + 2:
        # Fewer than two baseline samples: no rolling baseline to test
        # against yet.
        return {
            "status": "insufficient",
            "samples": len(values),
            "needed": window + 2,
        }
    latest = values[-window:]
    base = values[:-window][-baseline:]
    latest_mean = sum(latest) / len(latest)
    base_mean = sum(base) / len(base)
    ratio = latest_mean / base_mean if base_mean > 0 else float("inf")
    p_value: float | None = None
    if len(latest) >= 2 and len(base) >= 2:
        try:
            _, _, p_value = welch_t_test(latest, base)
        except ValueError:
            p_value = None  # zero variance: the factor gate decides alone
    material = ratio > factor
    significant = p_value is None or p_value < alpha
    return {
        "status": "drift" if material and significant else "ok",
        "samples": len(values),
        "window": len(latest),
        "baseline": len(base),
        "latest_mean": round(latest_mean, 6),
        "baseline_mean": round(base_mean, 6),
        "ratio": round(ratio, 4),
        "p_value": round(p_value, 6) if p_value is not None else None,
        "factor": factor,
        "alpha": alpha,
    }


def regress_groups(
    rows: Sequence[Mapping[str, Any]],
    *,
    window: int = DEFAULT_WINDOW,
    baseline: int = DEFAULT_BASELINE,
    alpha: float = DEFAULT_ALPHA,
    factor: float = DEFAULT_FACTOR,
) -> list[dict[str, Any]]:
    """One drift verdict per (spec_hash, backend_layout, host) group.

    ``rows`` are ``perf_samples`` registry rows in recording order (the
    store query guarantees it).  Each verdict carries its group key and
    label so the CLI can point at the drifting workload directly.
    """
    groups: dict[tuple[str, str, str], list[Mapping[str, Any]]] = {}
    for row in rows:
        key = (row["spec_hash"], row["backend_layout"], row["host"])
        groups.setdefault(key, []).append(row)
    verdicts = []
    for key in sorted(groups):
        samples = groups[key]
        verdict = detect_drift(
            [row["seconds"] for row in samples],
            window=window,
            baseline=baseline,
            alpha=alpha,
            factor=factor,
        )
        verdict.update(
            {
                "spec_hash": key[0],
                "backend_layout": key[1],
                "host": key[2],
                "label": samples[-1].get("label"),
            }
        )
        verdicts.append(verdict)
    return verdicts
