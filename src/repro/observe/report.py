"""Single-file static HTML dashboards for runs and campaigns.

``python -m repro report html`` renders one self-contained document —
inline CSS, inline SVG, zero scripts, zero external assets — so the file
can be attached to a CI run or mailed around and still open anywhere.

Sections appear when their inputs do:

* a telemetry JSONL file contributes phase wall-clock bars, counter
  tables, worker-utilization attribution, and resource-gauge tables
  (through :func:`repro.observe.registry.fold_events`);
* a results store + campaign id contributes the campaign overview, unit
  timing, and per-protocol trajectory sparklines (the same series
  ``dynamics show`` renders as block characters, here as SVG polylines);
* a results store with perf history contributes the wall-clock series
  and the current :func:`repro.observe.perf.detect_drift` verdicts.
"""

from __future__ import annotations

import html
import math
from typing import Any, Iterable, Sequence

from repro.observe.perf import regress_groups
from repro.observe.registry import MetricsRegistry, fold_events
from repro.observe.workers import worker_utilization

#: Trajectory series drawn per protocol (a readable subset of the full
#: export; `dynamics export` remains the firehose).
TRAJECTORY_SERIES = ("throughput", "backlog", "contention")

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 960px; color: #1a1a2e; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #16213e; padding-bottom: .3rem; }
h2 { font-size: 1.05rem; margin-top: 1.6rem; color: #16213e; }
table { border-collapse: collapse; font-size: .85rem; margin: .5rem 0; }
th, td { border: 1px solid #d0d0e0; padding: .25rem .55rem; text-align: left; }
th { background: #f0f0f8; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { fill: #0f3460; }
.barlabel { font-size: 11px; fill: #1a1a2e; }
.spark { stroke: #0f3460; stroke-width: 1.5; fill: none; }
.sparkfill { fill: #0f346022; stroke: none; }
.ok { color: #0a7a2f; font-weight: 600; }
.drift { color: #b00020; font-weight: 600; }
.insufficient { color: #888; }
.meta { color: #666; font-size: .8rem; }
"""


def _e(value: Any) -> str:
    return html.escape(str(value))


def _finite(values: Iterable[float]) -> list[float]:
    return [float(v) for v in values if v is not None and math.isfinite(float(v))]


def svg_sparkline(
    values: Sequence[float], *, width: int = 260, height: int = 40
) -> str:
    """An inline-SVG sparkline of a series (empty string for no data).

    Long series are downsampled by window means, mirroring
    :func:`repro.dynamics.render.sparkline`'s behaviour so the SVG and
    block-character views of the same trajectory agree.
    """
    data = _finite(values)
    if not data:
        return ""
    max_points = max(width // 2, 2)
    if len(data) > max_points:
        edges = [round(i * len(data) / max_points) for i in range(max_points + 1)]
        data = [
            sum(data[a:b]) / (b - a)
            for a, b in zip(edges[:-1], edges[1:])
            if b > a
        ]
    low, high = min(data), max(data)
    span = high - low
    pad = 3.0
    inner_h = height - 2 * pad
    step = (width - 2 * pad) / max(len(data) - 1, 1)
    points = []
    for index, value in enumerate(data):
        x = pad + index * step
        y = (
            height / 2.0
            if span == 0
            else pad + inner_h * (1.0 - (value - low) / span)
        )
        points.append(f"{x:.1f},{y:.1f}")
    polyline = " ".join(points)
    area = f"{pad:.1f},{height - pad:.1f} {polyline} {pad + (len(data) - 1) * step:.1f},{height - pad:.1f}"
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}" '
        f'role="img">'
        f'<polygon class="sparkfill" points="{area}"/>'
        f'<polyline class="spark" points="{polyline}"/></svg>'
    )


def _bar_chart(rows: Sequence[tuple[str, float]], *, width: int = 620) -> str:
    """Horizontal SVG wall-clock bars, one row per (label, seconds)."""
    if not rows:
        return ""
    row_h, gap, label_w = 20, 6, 250
    height = len(rows) * (row_h + gap)
    peak = max(seconds for _, seconds in rows) or 1.0
    parts = [
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
    ]
    for index, (label, seconds) in enumerate(rows):
        y = index * (row_h + gap)
        bar_w = max((width - label_w - 90) * seconds / peak, 1.0)
        parts.append(
            f'<text class="barlabel" x="0" y="{y + row_h - 6}">{_e(label)}</text>'
            f'<rect class="bar" x="{label_w}" y="{y + 3}" '
            f'width="{bar_w:.1f}" height="{row_h - 6}"/>'
            f'<text class="barlabel" x="{label_w + bar_w + 6}" '
            f'y="{y + row_h - 6}">{seconds:.4f}s</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], numeric: set[int] = frozenset()
) -> str:
    out = ["<table><tr>"]
    out.extend(f"<th>{_e(header)}</th>" for header in headers)
    out.append("</tr>")
    for row in rows:
        out.append("<tr>")
        for index, cell in enumerate(row):
            css = ' class="num"' if index in numeric else ""
            out.append(f"<td{css}>{_e(cell if cell is not None else '-')}</td>")
        out.append("</tr>")
    out.append("</table>")
    return "".join(out)


def _telemetry_sections(events: list[dict[str, Any]]) -> list[str]:
    from repro.telemetry import summarize_events

    summary = summarize_events(events)
    sections: list[str] = []
    phase_rows = [
        (f"{row['name']} [{row['backend']}]", row["total"])
        for row in summary["phases"]
    ]
    if phase_rows:
        sections.append("<h2>Phase wall-clock</h2>" + _bar_chart(phase_rows))
        coverage = summary["coverage"]
        if coverage is not None:
            sections.append(
                f'<p class="meta">phases explain {coverage:.1%} of '
                f"{summary['root_seconds']:.4f}s root wall-clock "
                f"across {len(summary['runs'])} session(s)</p>"
            )
    if summary["counters"]:
        sections.append(
            "<h2>Counters</h2>"
            + _table(
                ("counter", "total"),
                [
                    (name, f"{value:.0f}" if float(value).is_integer() else f"{value:.4f}")
                    for name, value in summary["counters"].items()
                ],
                numeric={1},
            )
        )
    utilization = worker_utilization(events)
    if utilization is not None:
        rows = [
            (
                row["pid"],
                row["jobs"],
                f"{row['busy_seconds']:.4f}",
                f"{row['busy_fraction']:.1%}" if row["busy_fraction"] is not None else "-",
            )
            for row in utilization["workers"]
        ]
        caption = (
            f"{utilization['jobs']} job(s) over {len(utilization['workers'])} "
            f"worker(s) in {utilization['wall_seconds']:.4f}s"
        )
        if utilization.get("imbalance"):
            caption += f"; imbalance {utilization['imbalance']:.2f}x (max/mean busy)"
        wait = utilization.get("queue_wait")
        if wait:
            caption += (
                f"; queue wait p50 {wait['p50']:.4f}s / p95 {wait['p95']:.4f}s"
            )
        sections.append(
            "<h2>Worker utilization</h2>"
            + _table(("pid", "jobs", "busy_s", "busy fraction"), rows, numeric={1, 2, 3})
            + f'<p class="meta">{_e(caption)}</p>'
        )
    sections.extend(_resource_sections(events))
    return sections


def _resource_sections(events: list[dict[str, Any]]) -> list[str]:
    registry: MetricsRegistry = fold_events(events)
    rss = registry.get("repro_resource_rss_peak_bytes")
    cpu = registry.get("repro_resource_cpu_seconds")
    fds = registry.get("repro_resource_open_fds")
    if rss is None and cpu is None and fds is None:
        return []
    by_process: dict[tuple[str, str], dict[str, Any]] = {}
    for metric, column in ((rss, "rss_peak"), (cpu, "cpu_seconds"), (fds, "fds")):
        if metric is None:
            continue
        for labels, value in metric.samples():
            key = (labels.get("pid", "-"), labels.get("source", "-"))
            by_process.setdefault(key, {})[column] = value
    rss_series = [
        float(record["attrs"]["rss_bytes"])
        for record in events
        if record.get("ev") == "event"
        and record.get("name") == "resource_sample"
        and (record.get("attrs") or {}).get("source") == "parent"
        and "rss_bytes" in (record.get("attrs") or {})
    ]
    rows = [
        (
            pid,
            source,
            f"{cells['rss_peak'] / 1048576:.1f} MiB" if "rss_peak" in cells else "-",
            f"{cells['cpu_seconds']:.2f}" if "cpu_seconds" in cells else "-",
            int(cells["fds"]) if "fds" in cells else "-",
        )
        for (pid, source), cells in sorted(by_process.items())
    ]
    section = "<h2>Resources</h2>" + _table(
        ("pid", "source", "rss peak", "cpu_s", "fds"), rows, numeric={2, 3, 4}
    )
    if len(rss_series) >= 2:
        section += (
            f'<p class="meta">parent RSS over time '
            f"({len(rss_series)} samples)</p>" + svg_sparkline(rss_series)
        )
    return [section]


def _campaign_sections(store: Any, campaign_id: str) -> list[str]:
    from repro.campaigns.runner import CampaignError
    from repro.observe.workers import unit_imbalance

    campaign = store.get_campaign(campaign_id)
    if campaign is None:
        raise CampaignError(f"unknown campaign {campaign_id!r}")
    sections = ["<h2>Campaign</h2>"]
    done = store.campaign_run_count(campaign_id)
    sections.append(
        _table(
            ("campaign", "scenario", "status", "runs", "backend", "scale", "elapsed_s"),
            [
                (
                    campaign_id,
                    campaign["scenario_id"],
                    campaign["status"],
                    f"{done}/{campaign['total_runs']}",
                    campaign["backend"],
                    campaign["scale"],
                    f"{campaign['elapsed_seconds'] or 0.0:.2f}",
                )
            ],
            numeric={6},
        )
    )
    units = store.campaign_units(campaign_id)
    if units:
        unit_rows = [
            (f"unit {row['unit_index']} [{row['protocol']}]", row["elapsed_seconds"])
            for row in units
        ]
        sections.append("<h2>Unit wall-clock</h2>" + _bar_chart(unit_rows))
        imbalance = unit_imbalance([row["elapsed_seconds"] for row in units])
        if imbalance is not None:
            sections.append(
                f'<p class="meta">unit imbalance {imbalance:.2f}x (max/mean)</p>'
            )
    sections.extend(_trajectory_sections(store, campaign_id))
    return sections


def _trajectory_sections(store: Any, campaign_id: str) -> list[str]:
    memberships = store.campaign_run_rows(campaign_id)
    first_by_protocol: dict[str, dict[str, Any]] = {}
    for row in memberships:
        first_by_protocol.setdefault(str(row["protocol"]), row)
    blocks: list[str] = []
    for protocol in sorted(first_by_protocol):
        row = first_by_protocol[protocol]
        trajectory = store.get_trajectory(
            row["spec_hash"], row["seed"], row["backend_layout"]
        )
        if trajectory is None:
            continue
        cells = []
        for series in TRAJECTORY_SERIES:
            raw = getattr(trajectory, series, None)
            values = [] if raw is None else list(raw)
            spark = svg_sparkline(values)
            if spark:
                cells.append(
                    f"<td>{_e(series)}</td><td>{spark}</td>"
                )
        if cells:
            rows_html = "".join(f"<tr>{cell}</tr>" for cell in cells)
            blocks.append(
                f"<h2>Trajectory — {_e(protocol)} "
                f'<span class="meta">(spec {_e(row["spec_hash"][:12])}, '
                f"seed {_e(row['seed'])})</span></h2>"
                f"<table>{rows_html}</table>"
            )
    return blocks


def _perf_sections(store: Any) -> list[str]:
    rows = store.perf_sample_rows()
    if not rows:
        return []
    verdicts = regress_groups(rows)
    groups: dict[tuple[str, str, str], list[dict[str, Any]]] = {}
    for row in rows:
        groups.setdefault(
            (row["spec_hash"], row["backend_layout"], row["host"]), []
        ).append(row)
    table_rows = []
    sparks = []
    for verdict in verdicts:
        key = (verdict["spec_hash"], verdict["backend_layout"], verdict["host"])
        samples = groups[key]
        status = verdict["status"]
        table_rows.append(
            (
                verdict.get("label") or verdict["spec_hash"][:12],
                verdict["backend_layout"],
                verdict["samples"],
                verdict.get("latest_mean"),
                verdict.get("baseline_mean"),
                verdict.get("ratio"),
                verdict.get("p_value"),
                status,
            )
        )
        spark = svg_sparkline([row["seconds"] for row in samples])
        if spark:
            sparks.append(
                f'<p class="meta">{_e(verdict.get("label") or key[0][:12])} '
                f"[{_e(verdict['backend_layout'])}] wall-clock</p>{spark}"
            )
    # Status cells get their verdict class by post-processing the plain
    # table (keeps _table generic).
    table = _table(
        (
            "workload", "layout", "samples", "latest_s", "baseline_s",
            "ratio", "p", "verdict",
        ),
        table_rows,
        numeric={2, 3, 4, 5, 6},
    )
    for status in ("drift", "ok", "insufficient"):
        table = table.replace(
            f"<td>{status}</td>", f'<td class="{status}">{status}</td>'
        )
    return ["<h2>Performance history</h2>", table, *sparks]


def render_html_report(
    *,
    store: Any | None = None,
    campaign_id: str | None = None,
    events: list[dict[str, Any]] | None = None,
    title: str | None = None,
) -> str:
    """Assemble the dashboard from whichever inputs are present."""
    from repro.observe.perf import host_fingerprint
    from repro.store.store import describe_version

    sections: list[str] = []
    if events:
        sections.extend(_telemetry_sections(events))
    if store is not None and campaign_id is not None:
        sections.extend(_campaign_sections(store, campaign_id))
    if store is not None:
        sections.extend(_perf_sections(store))
    if not sections:
        sections.append("<p>(nothing to report: no telemetry events, campaign, or perf history)</p>")
    heading = title or (
        f"repro report — {campaign_id}" if campaign_id else "repro report"
    )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{_e(heading)}</title><style>{_CSS}</style></head><body>"
        f"<h1>{_e(heading)}</h1>"
        f'<p class="meta">version {_e(describe_version())} · '
        f"host {_e(host_fingerprint())}</p>"
        + "".join(sections)
        + "</body></html>\n"
    )
