"""Worker-utilization attribution for pool-backed execution.

:class:`~repro.exec.backends.ProcessPoolBackend` already emits one
``simulate`` phase span per job with ``worker_pid`` and ``queue_wait``
attributes (workers time themselves on the system-wide monotonic clock).
This module folds those spans into the scaling diagnostics the upcoming
sharded-campaign work needs:

* per-pid busy seconds, job count, and busy fraction of the pool's
  wall-clock window;
* the queue-wait distribution (p50/p95/max) — how long jobs sat between
  submission and a worker picking them up;
* an **imbalance index**: max per-pid busy time over mean per-pid busy
  time.  1.0 is a perfectly level pool; 2.0 means the slowest worker
  carried twice the average load (stragglers, skewed job sizes, or an
  oversubscribed host).

The same index over campaign checkpoint units (max/mean unit wall-clock)
is computed by :func:`unit_imbalance` and surfaced in
``campaign status``.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.analysis.statistics import quantile


def worker_utilization(events: Iterable[dict[str, Any]]) -> dict[str, Any] | None:
    """Fold pool-attributed spans into per-worker utilization rows.

    Returns ``None`` when the events carry no ``worker_pid`` spans (the
    run never touched a process pool).  The wall-clock window is the
    envelope of all attributed spans — from the earliest job start
    (``ts - dur``) to the latest job end (``ts``) — which is exactly the
    interval during which the pool had work in flight.
    """
    per_pid: dict[str, dict[str, Any]] = {}
    queue_waits: list[float] = []
    window_start: float | None = None
    window_end: float | None = None
    for record in events:
        if record.get("ev") != "span":
            continue
        attrs = record.get("attrs") or {}
        pid = attrs.get("worker_pid")
        if pid is None:
            continue
        duration = float(record.get("dur", 0.0))
        ended = float(record.get("ts", 0.0))
        started = ended - duration
        row = per_pid.setdefault(
            str(pid), {"pid": str(pid), "jobs": 0, "busy_seconds": 0.0}
        )
        row["jobs"] += 1
        row["busy_seconds"] += duration
        wait = attrs.get("queue_wait")
        if wait is not None:
            queue_waits.append(float(wait))
        window_start = started if window_start is None else min(window_start, started)
        window_end = ended if window_end is None else max(window_end, ended)
    if not per_pid:
        return None
    wall = max((window_end or 0.0) - (window_start or 0.0), 0.0)
    busy_values = [row["busy_seconds"] for row in per_pid.values()]
    for row in per_pid.values():
        row["busy_seconds"] = round(row["busy_seconds"], 6)
        row["busy_fraction"] = (
            round(row["busy_seconds"] / wall, 4) if wall > 0 else None
        )
    mean_busy = sum(busy_values) / len(busy_values)
    summary: dict[str, Any] = {
        "workers": sorted(
            per_pid.values(), key=lambda row: -row["busy_seconds"]
        ),
        "jobs": sum(row["jobs"] for row in per_pid.values()),
        "wall_seconds": round(wall, 6),
        "imbalance": (
            round(max(busy_values) / mean_busy, 4) if mean_busy > 0 else None
        ),
    }
    if queue_waits:
        summary["queue_wait"] = {
            "count": len(queue_waits),
            "p50": round(quantile(queue_waits, 0.5), 6),
            "p95": round(quantile(queue_waits, 0.95), 6),
            "max": round(max(queue_waits), 6),
        }
    return summary


def unit_imbalance(unit_seconds: Sequence[float]) -> float | None:
    """Max/mean imbalance index over campaign unit wall-clocks.

    ``None`` when fewer than two units have timing (one unit is trivially
    "balanced") or the mean is zero.
    """
    values = [float(value) for value in unit_seconds if value is not None]
    if len(values) < 2:
        return None
    mean = sum(values) / len(values)
    if mean <= 0:
        return None
    return round(max(values) / mean, 4)


def render_worker_table(summary: dict[str, Any]) -> str:
    """Aligned text block for ``telemetry summarize``'s workers section."""
    lines = ["workers (process-pool attribution)"]
    header = (
        f"  {'pid':<10} {'jobs':>6} {'busy_s':>10} {'busy_frac':>10}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for row in summary["workers"]:
        fraction = (
            f"{row['busy_fraction']:10.1%}"
            if row.get("busy_fraction") is not None
            else f"{'-':>10}"
        )
        lines.append(
            f"  {row['pid']:<10} {row['jobs']:>6} {row['busy_seconds']:>10.4f} "
            f"{fraction}"
        )
    imbalance = summary.get("imbalance")
    lines.append(
        f"  {summary['jobs']} job(s) over {len(summary['workers'])} worker(s) "
        f"in {summary['wall_seconds']:.4f}s"
        + (f"; imbalance {imbalance:.2f}x (max/mean busy)" if imbalance else "")
    )
    wait = summary.get("queue_wait")
    if wait:
        lines.append(
            f"  queue wait: p50 {wait['p50']:.4f}s, p95 {wait['p95']:.4f}s, "
            f"max {wait['max']:.4f}s over {wait['count']} job(s)"
        )
    return "\n".join(lines)
