"""Cross-run observability: metrics, resources, perf history, reports.

:mod:`repro.telemetry` is the *emission* layer — cheap structured events
from inside a run.  This package is the *aggregation* layer above it:

* :mod:`~repro.observe.registry` folds event streams into a typed
  :class:`MetricsRegistry` (counters, gauges, p50/p95/p99 histograms);
* :mod:`~repro.observe.export` renders a registry as Prometheus text
  exposition or JSON;
* :mod:`~repro.observe.resources` samples ``/proc`` (RSS, CPU, fds) into
  the telemetry stream — interval thread in the parent, job-boundary
  snapshots in pool workers;
* :mod:`~repro.observe.workers` attributes pool wall-clock to worker
  pids (busy fractions, queue-wait distribution, imbalance index);
* :mod:`~repro.observe.perf` keeps a store-backed wall-clock history and
  Welch-tests for sustained drift (``perf record|history|regress``);
* :mod:`~repro.observe.report` renders a single-file HTML dashboard.

The package-wide contract, inherited from telemetry and enforced by
tests: observability is RNG- and result-inert.  Store fingerprints are
bit-identical with observe on or off, on every backend.
"""

from repro.observe.export import (
    escape_label_value,
    registry_to_dict,
    to_json,
    to_prometheus,
)
from repro.observe.perf import (
    DEFAULT_ALPHA,
    DEFAULT_BASELINE,
    DEFAULT_FACTOR,
    DEFAULT_WINDOW,
    backend_layout_name,
    detect_drift,
    host_fingerprint,
    record_scenario_perf,
    regress_groups,
)
from repro.observe.registry import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricError,
    MetricsRegistry,
    RegistrySink,
    fold_events,
    summarize_distribution,
)
from repro.observe.report import render_html_report, svg_sparkline
from repro.observe.resources import (
    DEFAULT_INTERVAL,
    NULL_SAMPLER,
    ResourceSampler,
    make_sampler,
    sample_process,
)
from repro.observe.workers import (
    render_worker_table,
    unit_imbalance,
    worker_utilization,
)

__all__ = [
    "Counter",
    "DEFAULT_ALPHA",
    "DEFAULT_BASELINE",
    "DEFAULT_FACTOR",
    "DEFAULT_INTERVAL",
    "DEFAULT_WINDOW",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricError",
    "MetricsRegistry",
    "NULL_SAMPLER",
    "RegistrySink",
    "ResourceSampler",
    "backend_layout_name",
    "detect_drift",
    "escape_label_value",
    "fold_events",
    "host_fingerprint",
    "make_sampler",
    "record_scenario_perf",
    "regress_groups",
    "registry_to_dict",
    "render_html_report",
    "render_worker_table",
    "sample_process",
    "summarize_distribution",
    "svg_sparkline",
    "to_json",
    "to_prometheus",
    "unit_imbalance",
    "worker_utilization",
]
