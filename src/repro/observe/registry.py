"""The typed metrics registry: counters, gauges, and histograms.

:mod:`repro.telemetry` records *what happened* as a flat event stream;
this module folds that stream (a JSONL file, a live session, or a
:class:`~repro.telemetry.sinks.MemorySink`) into *named metrics* with
types and labels — the shape scrape endpoints and dashboards consume.
The registry is deliberately dumb storage: folding rules live in
:func:`fold_events`, rendering lives in :mod:`repro.observe.export`.

Metric model
------------

A metric has a name (``[a-zA-Z_:][a-zA-Z0-9_:]*``, enforced at creation),
a help string, a type, and one *sample* per distinct label set:

``Counter``
    Monotonically accumulated total (``inc``).
``Gauge``
    Last-written value (``set``) — resource samples, live queue depths.
``Histogram``
    A distribution of observations (``observe``); exports count, sum,
    and p50/p95/p99 quantiles (computed by
    :func:`repro.analysis.statistics.quantile`, the same definition the
    telemetry summarizer's p50/p95 span columns use).

Everything here inherits the telemetry contract: the registry only ever
*reads* already-emitted events, never touches the simulation's RNG
streams or results, so observe on/off cannot move a store fingerprint.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Mapping

from repro.analysis.statistics import quantile

#: Prometheus metric-name grammar; label names drop the colon.
METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Quantiles every histogram exports, in export order.
HISTOGRAM_QUANTILES = (0.5, 0.95, 0.99)


class MetricError(ValueError):
    """A metric or label name violates the exposition grammar."""


def _check_name(name: str) -> str:
    if not METRIC_NAME_RE.match(name):
        raise MetricError(
            f"invalid metric name {name!r} (must match {METRIC_NAME_RE.pattern})"
        )
    return name


def _label_key(labels: Mapping[str, Any]) -> tuple[tuple[str, str], ...]:
    """Canonical hashable form of a label set (sorted, stringified)."""
    for label in labels:
        if not LABEL_NAME_RE.match(label):
            raise MetricError(
                f"invalid label name {label!r} (must match {LABEL_NAME_RE.pattern})"
            )
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class Metric:
    """Base class: a named, typed family of labelled samples."""

    metric_type = "untyped"

    def __init__(self, name: str, help_text: str) -> None:
        self.name = _check_name(name)
        self.help = help_text
        self._samples: dict[tuple[tuple[str, str], ...], Any] = {}

    def samples(self) -> list[tuple[dict[str, str], Any]]:
        """``(labels, value)`` pairs in insertion order."""
        return [(dict(key), value) for key, value in self._samples.items()]

    def __len__(self) -> int:
        return len(self._samples)


class Counter(Metric):
    metric_type = "counter"

    def inc(self, value: float = 1.0, **labels: Any) -> None:
        if value < 0:
            raise MetricError(f"counter {self.name} cannot decrease (got {value})")
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + float(value)

    def value(self, **labels: Any) -> float:
        return float(self._samples.get(_label_key(labels), 0.0))


class Gauge(Metric):
    metric_type = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        self._samples[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> float | None:
        raw = self._samples.get(_label_key(labels))
        return float(raw) if raw is not None else None


class Histogram(Metric):
    """A distribution; keeps raw observations so quantiles stay exact.

    Observation counts here are telemetry-scale (one per span, not one
    per slot), so the memory cost of exact quantiles is irrelevant next
    to the JSONL file the events came from.
    """

    metric_type = "histogram"

    def observe(self, value: float, **labels: Any) -> None:
        self._samples.setdefault(_label_key(labels), []).append(float(value))

    def snapshot(self, **labels: Any) -> dict[str, float] | None:
        """count/sum/p50/p95/p99 of one label set (``None`` when empty)."""
        values = self._samples.get(_label_key(labels))
        if not values:
            return None
        return summarize_distribution(values)


def summarize_distribution(values: list[float]) -> dict[str, float]:
    """The exported shape of one histogram sample."""
    stats = {"count": float(len(values)), "sum": float(sum(values))}
    for q in HISTOGRAM_QUANTILES:
        stats[f"p{int(q * 100)}"] = quantile(values, q)
    return stats


class MetricsRegistry:
    """All metrics of one observed process/run, keyed by name.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same metric, and asking with a
    different type for an existing name is an error (one name, one type —
    the exposition format's rule).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}

    def _get_or_create(self, cls: type[Metric], name: str, help_text: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise MetricError(
                    f"metric {name!r} already registered as "
                    f"{existing.metric_type}, not {cls.metric_type}"
                )
            return existing
        metric = cls(name, help_text)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)  # type: ignore[return-value]

    def histogram(self, name: str, help_text: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help_text)  # type: ignore[return-value]

    def metrics(self) -> list[Metric]:
        """Every registered metric, sorted by name (export order)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)


def _sanitize_label_component(raw: Any) -> str:
    return str(raw)


def fold_events(
    events: Iterable[dict[str, Any]], registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Fold telemetry events into a registry of named metrics.

    The mapping (one rule per telemetry event kind):

    * ``span`` → ``repro_span_seconds`` histogram labelled by span name,
      ``kind`` and ``backend`` — phase wall-clock distributions;
    * ``counter`` → ``repro_counter_total`` counter labelled by counter
      name and ``backend`` — slots simulated, packets processed, …;
    * ``event`` named ``resource_sample`` → the ``repro_resource_*``
      gauges (last value per pid/source) plus an RSS peak gauge;
    * any other ``event`` → ``repro_events_total`` labelled by name and
      ``reason``;
    * ``session_start``/``session_end`` → ``repro_sessions_total`` and
      the ``repro_session_seconds`` histogram.

    ``progress`` events are live-rendering state, not metrics; they are
    ignored, exactly as the summarizer ignores them.
    """
    registry = registry if registry is not None else MetricsRegistry()
    spans = registry.histogram(
        "repro_span_seconds", "Telemetry span durations by name/kind/backend"
    )
    counters = registry.counter(
        "repro_counter_total", "Telemetry counter totals by name/backend"
    )
    events_total = registry.counter(
        "repro_events_total", "Telemetry point events by name/reason"
    )
    sessions = registry.counter(
        "repro_sessions_total", "Telemetry sessions opened/closed"
    )
    for record in events:
        kind = record.get("ev")
        if kind == "span":
            attrs = record.get("attrs") or {}
            spans.observe(
                float(record.get("dur", 0.0)),
                name=_sanitize_label_component(record.get("name")),
                kind=_sanitize_label_component(attrs.get("kind", "phase")),
                backend=_sanitize_label_component(attrs.get("backend", "-")),
            )
        elif kind == "counter":
            attrs = record.get("attrs") or {}
            counters.inc(
                float(record.get("value", 0.0)),
                name=_sanitize_label_component(record.get("name")),
                backend=_sanitize_label_component(attrs.get("backend", "-")),
            )
        elif kind == "event":
            attrs = record.get("attrs") or {}
            name = str(record.get("name"))
            if name == "resource_sample":
                _fold_resource_sample(registry, attrs)
                continue
            events_total.inc(
                1.0,
                name=_sanitize_label_component(name),
                reason=_sanitize_label_component(attrs.get("reason", "-")),
            )
        elif kind == "session_start":
            sessions.inc(1.0, phase="start")
        elif kind == "session_end":
            sessions.inc(1.0, phase="end")
            registry.histogram(
                "repro_session_seconds", "Telemetry session lifetimes"
            ).observe(float(record.get("elapsed_seconds", 0.0)))
    return registry


def _fold_resource_sample(registry: MetricsRegistry, attrs: Mapping[str, Any]) -> None:
    """One ``resource_sample`` event → the resource gauge family.

    Gauges keep the *last* value per (pid, source); the RSS peak gauge
    keeps the max, because the interesting number for capacity planning
    is the high-water mark, which a last-value gauge scraped after the
    run would miss.
    """
    pid = _sanitize_label_component(attrs.get("pid", "-"))
    source = _sanitize_label_component(attrs.get("source", "-"))
    mapping = (
        ("rss_bytes", "repro_resource_rss_bytes", "Resident set size"),
        ("cpu_seconds", "repro_resource_cpu_seconds", "Cumulative process CPU time"),
        ("fds", "repro_resource_open_fds", "Open file descriptors"),
    )
    for attr, metric_name, help_text in mapping:
        raw = attrs.get(attr)
        if raw is None:
            continue
        registry.gauge(metric_name, help_text).set(float(raw), pid=pid, source=source)
    rss = attrs.get("rss_bytes")
    if rss is not None:
        peak = registry.gauge(
            "repro_resource_rss_peak_bytes", "High-water resident set size"
        )
        previous = peak.value(pid=pid, source=source)
        if previous is None or float(rss) > previous:
            peak.set(float(rss), pid=pid, source=source)


class RegistrySink:
    """A telemetry sink folding a *live* session into a registry.

    Attach it alongside the JSONL sink to scrape metrics mid-run (the
    seam a future ``/metrics`` HTTP endpoint reads from) — the folding
    rules are exactly :func:`fold_events`'s, applied one event at a time.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def emit(self, record: dict[str, Any]) -> None:
        try:
            fold_events((record,), self.registry)
        except Exception:
            # The sink contract: observability must never raise into the
            # instrumented path.
            pass

    def close(self) -> None:
        pass
