"""Sweep execution with replication.

The :class:`SweepRunner` removes the boilerplate every experiment shares:
run one configuration over several seeds (constructing a fresh adversary per
seed, because adversaries are stateful), collect the per-run summaries, and
aggregate them into a single row of means.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.adversary.base import Adversary
from repro.metrics.summary import aggregate_summaries
from repro.protocols.base import BackoffProtocol
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.results import SimulationResult

AdversaryFactory = Callable[[], Adversary]


class SweepRunner:
    """Runs replicated simulations for experiment sweeps."""

    def __init__(self, seeds: Sequence[int], max_slots: int = 200_000) -> None:
        if not seeds:
            raise ValueError("at least one seed is required")
        self.seeds = list(seeds)
        self.max_slots = max_slots

    def run_replicates(
        self,
        protocol: BackoffProtocol,
        adversary_factory: AdversaryFactory,
        *,
        stop_when_drained: bool = True,
        collect_potential: bool = False,
        max_slots: int | None = None,
    ) -> list[SimulationResult]:
        """One simulation per seed with a freshly built adversary each time."""
        results = []
        for seed in self.seeds:
            config = SimulationConfig(
                protocol=protocol,
                adversary=adversary_factory(),
                seed=seed,
                max_slots=max_slots or self.max_slots,
                stop_when_drained=stop_when_drained,
                collect_potential=collect_potential,
            )
            results.append(Simulator(config).run())
        return results

    def aggregate_row(
        self,
        protocol: BackoffProtocol,
        adversary_factory: AdversaryFactory,
        *,
        extra_columns: dict[str, Any] | None = None,
        stop_when_drained: bool = True,
        max_slots: int | None = None,
    ) -> dict[str, Any]:
        """Run replicates and flatten the aggregated metrics into one row.

        The row contains the protocol name, any caller-provided sweep columns
        (``extra_columns``), and the replicate means of the headline metrics.
        """
        results = self.run_replicates(
            protocol,
            adversary_factory,
            stop_when_drained=stop_when_drained,
            max_slots=max_slots,
        )
        summaries = [result.summary() for result in results]
        aggregated = aggregate_summaries(summaries)
        row: dict[str, Any] = {"protocol": protocol.name}
        if extra_columns:
            row.update(extra_columns)
        row.update(
            {
                "replicates": len(results),
                "throughput": aggregated["throughput"].mean,
                "implicit_throughput": aggregated["implicit_throughput"].mean,
                "mean_accesses": aggregated["mean_accesses"].mean,
                "max_accesses": aggregated["max_accesses"].mean,
                "mean_sends": aggregated["mean_sends"].mean,
                "mean_listens": aggregated["mean_listens"].mean,
                "max_backlog": aggregated["max_backlog"].mean,
                "makespan": aggregated["makespan"].mean,
                "active_slots": aggregated["num_active_slots"].mean,
                "jammed_active": aggregated["num_jammed_active"].mean,
                "arrivals": aggregated["num_arrivals"].mean,
                "delivered": aggregated["num_delivered"].mean,
                "drained": all(summary.drained for summary in summaries),
            }
        )
        return row
