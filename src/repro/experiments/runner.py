"""Sweep execution with replication.

The :class:`SweepRunner` removes the boilerplate every experiment shares:
run one configuration over several seeds (constructing a fresh adversary per
seed, because adversaries are stateful), collect the per-run summaries, and
aggregate them into a single row of means.

Since the execution-backend refactor this class is a thin convenience
wrapper: replication is delegated to :mod:`repro.exec` (serial by default,
or any backend passed to the constructor) and row aggregation to
:func:`repro.experiments.plan.aggregate_replicate_row`.  Declarative sweeps
should use :class:`~repro.experiments.plan.SweepPlan` directly.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.adversary.base import Adversary
from repro.exec.backends import ConfigJob, ExecutionBackend, SerialBackend
from repro.experiments.plan import aggregate_replicate_row
from repro.protocols.base import BackoffProtocol
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult

AdversaryFactory = Callable[[], Adversary]


class SweepRunner:
    """Runs replicated simulations for experiment sweeps."""

    def __init__(
        self,
        seeds: Sequence[int],
        max_slots: int = 200_000,
        backend: ExecutionBackend | None = None,
    ) -> None:
        if not seeds:
            raise ValueError("at least one seed is required")
        self.seeds = list(seeds)
        self.max_slots = max_slots
        self.backend = backend or SerialBackend()

    def run_replicates(
        self,
        protocol: BackoffProtocol,
        adversary_factory: AdversaryFactory,
        *,
        stop_when_drained: bool = True,
        collect_potential: bool = False,
        max_slots: int | None = None,
    ) -> list[SimulationResult]:
        """One simulation per seed with a freshly built adversary each time."""
        jobs = [
            ConfigJob(
                SimulationConfig(
                    protocol=protocol,
                    adversary=adversary_factory(),
                    seed=seed,
                    max_slots=max_slots or self.max_slots,
                    stop_when_drained=stop_when_drained,
                    collect_potential=collect_potential,
                )
            )
            for seed in self.seeds
        ]
        return self.backend.run(jobs)

    def aggregate_row(
        self,
        protocol: BackoffProtocol,
        adversary_factory: AdversaryFactory,
        *,
        extra_columns: dict[str, Any] | None = None,
        stop_when_drained: bool = True,
        max_slots: int | None = None,
    ) -> dict[str, Any]:
        """Run replicates and flatten the aggregated metrics into one row.

        The row contains the protocol name, any caller-provided sweep columns
        (``extra_columns``), and the replicate means of the headline metrics.
        """
        results = self.run_replicates(
            protocol,
            adversary_factory,
            stop_when_drained=stop_when_drained,
            max_slots=max_slots,
        )
        return aggregate_replicate_row(
            results, protocol_name=protocol.name, extra_columns=extra_columns
        )
