"""Declarative sweep plans.

The experiment functions used to be nested for-loops that each built
configurations and ran them inline, which welded the *what* (the
protocol × adversary × seed grid) to the *how* (serial, in-process
execution).  This module turns the grid into data:

* :func:`factory` captures "call this class with these arguments" as a
  picklable value, so an adversary can be constructed *fresh inside each
  run* — possibly in another process — instead of being a closure;
* :class:`RunSpec` is one execution: protocol, adversary factory, seed, and
  engine options.  It can build its configuration on demand and derives a
  stable content hash for result caching;
* :class:`SweepPlan` is an ordered list of specs with grouping metadata
  (one group = one table row aggregated over seed replicates), executed by
  any :class:`~repro.exec.backends.ExecutionBackend`.

Because specs are plain data, the same plan can be executed serially, over a
process pool, or against a result cache, and must produce identical results.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Mapping, Sequence

from repro.adversary.base import Adversary
from repro.exec.backends import ExecutionBackend, SerialBackend
from repro.metrics.summary import aggregate_summaries
from repro.protocols.base import BackoffProtocol
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult

#: Bump when the engine's observable behaviour changes in a way that makes
#: previously cached results stale (randomness layout, metric definitions…).
SPEC_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Factory:
    """A deferred, picklable constructor call.

    ``fn`` must be importable by reference (a module-level class or
    function); arguments may themselves be factories, which are built
    recursively.  Two factories with equal fields build equal objects, which
    is what makes :meth:`RunSpec.cache_key` meaningful.
    """

    fn: Callable[..., Any]
    args: tuple[Any, ...] = ()
    kwargs: tuple[tuple[str, Any], ...] = ()

    def build(self) -> Any:
        """Construct a fresh instance (sub-factories built recursively)."""
        args = tuple(_build_value(value) for value in self.args)
        kwargs = {name: _build_value(value) for name, value in self.kwargs}
        return self.fn(*args, **kwargs)

    def canonical(self) -> dict[str, Any]:
        """A JSON-friendly canonical form used for hashing."""
        return {
            "factory": f"{self.fn.__module__}.{self.fn.__qualname__}",
            "args": [_canonical_value(value) for value in self.args],
            "kwargs": {name: _canonical_value(value) for name, value in self.kwargs},
        }


def factory(fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Factory:
    """Shorthand for building a :class:`Factory` (kwargs stored sorted)."""
    return Factory(fn, tuple(args), tuple(sorted(kwargs.items())))


def _build_value(value: Any) -> Any:
    return value.build() if isinstance(value, Factory) else value


def _canonical_value(value: Any) -> Any:
    """Reduce a value to JSON-serialisable canonical data, or raise."""
    if isinstance(value, Factory):
        return value.canonical()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): _canonical_value(item) for key, item in value.items()}
    describe = getattr(value, "describe", None)
    if callable(describe):
        return {"class": type(value).__qualname__, "describe": describe()}
    raise TypeError(f"cannot canonicalise {type(value).__name__!r} for hashing")


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified execution of the simulator.

    The adversary is given as a :class:`Factory` (or any zero-argument
    callable) because adversaries carry mutable state and must be built
    fresh per run; the protocol is immutable configuration and is held
    directly.  A spec built from factories is picklable and hashable, which
    is what process pools and the result cache require.
    """

    protocol: BackoffProtocol
    adversary: Factory | Callable[[], Adversary]
    seed: int
    max_slots: int = 200_000
    stop_when_drained: bool = True
    collect_trace: bool = False
    collect_potential: bool = False
    #: Windowed dynamics sampling interval (0 = off).  Deliberately excluded
    #: from :meth:`cache_key` — dynamics are observability, not results, so
    #: a spec hashes the same with or without them.
    dynamics_window: int = 0

    def build_config(self) -> SimulationConfig:
        adversary = (
            self.adversary.build()
            if isinstance(self.adversary, Factory)
            else self.adversary()
        )
        return SimulationConfig(
            protocol=self.protocol,
            adversary=adversary,
            seed=self.seed,
            max_slots=self.max_slots,
            stop_when_drained=self.stop_when_drained,
            collect_trace=self.collect_trace,
            collect_potential=self.collect_potential,
            dynamics_window=self.dynamics_window,
        )

    def vector_support(self) -> str | None:
        """Why this spec cannot vectorize, or ``None`` if it can.

        The :class:`~repro.exec.vector_backend.VectorBackend` batches specs
        for which this returns ``None`` (grouped by everything but the
        seed) through the lockstep engine and runs the rest on its fallback
        backend.  The answer depends only on the spec's declarative content
        — protocol type, adversary composition, and engine options — so a
        plan can be partitioned before anything runs.
        """
        from repro.sim.vector.support import vector_support

        return vector_support(self)

    def cache_key(self) -> str | None:
        """Stable content hash of the spec, or ``None`` if not hashable.

        ``None`` (e.g. for a plain-callable adversary) means the result
        cache will always re-run this spec rather than risk a wrong hit.
        """
        try:
            canonical = {
                "schema": SPEC_SCHEMA_VERSION,
                "protocol": _canonical_value(self.protocol),
                "adversary": _canonical_value(self.adversary),
                "seed": self.seed,
                "max_slots": self.max_slots,
                "stop_when_drained": self.stop_when_drained,
                "collect_trace": self.collect_trace,
                "collect_potential": self.collect_potential,
            }
        except TypeError:
            return None
        payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@functools.lru_cache(maxsize=4096)
def _cached_vector_support_by_signature(signature_spec: "RunSpec") -> str | None:
    return signature_spec.vector_support()


def cached_vector_support(spec: "RunSpec") -> str | None:
    """Memoised :meth:`RunSpec.vector_support`, keyed by the spec signature.

    Probing support builds the spec's adversary to introspect it, and large
    campaign plans replicate identical configurations over hundreds of
    seeds; support never depends on the seed, so the memo key is the spec
    with its seed normalised away — one probe per *configuration*, however
    many seeds or plans repeat it.  Specs that cannot be hashed (a
    plain-callable adversary carrying unhashable state) are probed
    directly.
    """
    try:
        return _cached_vector_support_by_signature(replace(spec, seed=0))
    except TypeError:
        return spec.vector_support()


@dataclass(frozen=True)
class SweepGroup:
    """One table row's worth of specs: a configuration replicated over seeds."""

    group_id: int
    protocol_name: str
    columns: tuple[tuple[str, Any], ...]
    spec_indices: tuple[int, ...]
    seeds: tuple[int, ...]


def batch_signature(specs: Sequence["RunSpec"]) -> str | None:
    """Stable identity of one lockstep vector batch, or ``None``.

    A vectorized result is a deterministic function of the *whole ordered
    batch* it ran in (the coin-block geometry depends on the replication
    count and order), not of its own spec alone.  Hashing the ordered spec
    content hashes therefore gives vector results a stable storage
    identity: the results store files them under layout
    ``vector:<signature>``, so a batch re-run with the same composition is
    served bit-identically while a differently composed batch never
    collides.  ``None`` when any spec lacks a cache key.
    """
    keys = [spec.cache_key() for spec in specs]
    if not keys or any(key is None for key in keys):
        return None
    payload = json.dumps(keys, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SweepPlan:
    """An ordered collection of run specs with row-grouping metadata."""

    def __init__(self, *, default_max_slots: int = 200_000) -> None:
        if default_max_slots <= 0:
            raise ValueError("default_max_slots must be positive")
        self.default_max_slots = default_max_slots
        self._specs: list[RunSpec] = []
        self._groups: list[SweepGroup] = []

    @property
    def specs(self) -> list[RunSpec]:
        return list(self._specs)

    @property
    def groups(self) -> list[SweepGroup]:
        return list(self._groups)

    def __len__(self) -> int:
        return len(self._specs)

    def add_group(
        self,
        protocol: BackoffProtocol,
        adversary: Factory | Callable[[], Adversary],
        seeds: Sequence[int],
        *,
        columns: Mapping[str, Any] | None = None,
        max_slots: int | None = None,
        stop_when_drained: bool = True,
        collect_trace: bool = False,
        collect_potential: bool = False,
        dynamics_window: int = 0,
    ) -> int:
        """Add one configuration replicated over ``seeds``; returns group id.

        Every seed becomes one :class:`RunSpec`; the group remembers which
        specs belong to it so results can be re-assembled into aggregate
        rows after any backend has executed the flat spec list.
        """
        if not seeds:
            raise ValueError("at least one seed is required")
        start = len(self._specs)
        for seed in seeds:
            self._specs.append(
                RunSpec(
                    protocol=protocol,
                    adversary=adversary,
                    seed=seed,
                    max_slots=max_slots or self.default_max_slots,
                    stop_when_drained=stop_when_drained,
                    collect_trace=collect_trace,
                    collect_potential=collect_potential,
                    dynamics_window=dynamics_window,
                )
            )
        group = SweepGroup(
            group_id=len(self._groups),
            protocol_name=protocol.name,
            columns=tuple(columns.items()) if columns else (),
            spec_indices=tuple(range(start, len(self._specs))),
            seeds=tuple(seeds),
        )
        self._groups.append(group)
        return group.group_id

    def run(self, backend: ExecutionBackend | None = None) -> "PlanResults":
        """Execute every spec on ``backend`` (serial by default)."""
        backend = backend or SerialBackend()
        results = backend.run(self._specs)
        return PlanResults(self, results)

    def vector_summary(self) -> dict[str, Any]:
        """How much of the plan the vector backend could batch.

        Groups share one spec per seed, so a group either vectorizes
        entirely or not at all; the summary maps each non-vectorizable
        group id to its reason.  ``vector_groups`` counts the lockstep
        replication groups and ``mega_batches`` the kernel launches after
        the backend stacks compatible groups (see
        :class:`~repro.exec.vector_backend.VectorBackend`), so the summary
        shows both how much vectorizes and how few launches it costs.
        Support probes are memoised per spec signature
        (:func:`cached_vector_support`), so a large campaign plan re-probing
        identical configurations pays for each only once.
        """
        from repro.exec.vector_backend import vector_group_key, vector_mega_key
        from repro.sim.vector.support import mega_batch_exclusion

        reasons: dict[int, str] = {}
        mega_exclusions: dict[int, str] = {}
        vectorizable_specs = 0
        group_keys: set[Any] = set()
        mega_keys: set[Any] = set()
        for group in self._groups:
            spec = self._specs[group.spec_indices[0]]
            reason = cached_vector_support(spec)
            if reason is None:
                vectorizable_specs += len(group.spec_indices)
                group_key = vector_group_key(spec)
                group_keys.add(
                    group_key if group_key is not None else ("group", group.group_id)
                )
                mega_key = vector_mega_key(spec)
                mega_keys.add(
                    mega_key if mega_key is not None else ("group", group.group_id)
                )
                exclusion = mega_batch_exclusion(spec)
                if exclusion is not None:
                    mega_exclusions[group.group_id] = exclusion
            else:
                reasons[group.group_id] = reason
        return {
            "total_specs": len(self._specs),
            "vectorizable_specs": vectorizable_specs,
            "vector_groups": len(group_keys),
            "mega_batches": len(mega_keys),
            "fallback_groups": reasons,
            "mega_exclusions": mega_exclusions,
        }


@dataclass
class PlanResults:
    """Results of executing a plan, aligned with its specs."""

    plan: SweepPlan
    results: list[SimulationResult] = field(default_factory=list)

    def __iter__(self) -> Iterator[tuple[RunSpec, SimulationResult]]:
        return iter(zip(self.plan.specs, self.results))

    def for_group(self, group_id: int) -> list[SimulationResult]:
        group = self.plan.groups[group_id]
        return [self.results[index] for index in group.spec_indices]

    def seeded_group(self, group_id: int) -> list[tuple[int, SimulationResult]]:
        """``(seed, result)`` pairs of one group, in seed order."""
        group = self.plan.groups[group_id]
        return list(zip(group.seeds, self.for_group(group_id)))

    def group_rows(self) -> list[dict[str, Any]]:
        """One aggregated table row per group, in group order."""
        from repro.telemetry import current as current_telemetry

        with current_telemetry().span(
            "finalize", kind="phase", op="aggregate-rows", groups=len(self.plan.groups)
        ):
            return [
                aggregate_replicate_row(
                    self.for_group(group.group_id),
                    protocol_name=group.protocol_name,
                    extra_columns=dict(group.columns),
                )
                for group in self.plan.groups
            ]


def aggregate_replicate_row(
    results: Sequence[SimulationResult],
    *,
    protocol_name: str,
    extra_columns: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Flatten replicate results into one row of means.

    The row contains the protocol name, any caller-provided sweep columns,
    and the replicate means of the headline metrics.  This is the single
    aggregation used by both :class:`~repro.experiments.runner.SweepRunner`
    and :meth:`PlanResults.group_rows`.
    """
    summaries = [result.summary() for result in results]
    aggregated = aggregate_summaries(summaries)
    row: dict[str, Any] = {"protocol": protocol_name}
    if extra_columns:
        row.update(extra_columns)
    row.update(
        {
            "replicates": len(results),
            "throughput": aggregated["throughput"].mean,
            "implicit_throughput": aggregated["implicit_throughput"].mean,
            "mean_accesses": aggregated["mean_accesses"].mean,
            "max_accesses": aggregated["max_accesses"].mean,
            "mean_sends": aggregated["mean_sends"].mean,
            "mean_listens": aggregated["mean_listens"].mean,
            "max_backlog": aggregated["max_backlog"].mean,
            "makespan": aggregated["makespan"].mean,
            "active_slots": aggregated["num_active_slots"].mean,
            "jammed_active": aggregated["num_jammed_active"].mean,
            "arrivals": aggregated["num_arrivals"].mean,
            "delivered": aggregated["num_delivered"].mean,
            "drained": all(summary.drained for summary in summaries),
        }
    )
    return row
