"""Experiment specifications and reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence


@dataclass(frozen=True)
class ExperimentSpec:
    """Identity and provenance of one paper-claim experiment."""

    exp_id: str
    title: str
    claim: str
    bench_target: str

    def __post_init__(self) -> None:
        if not self.exp_id:
            raise ValueError("exp_id must be non-empty")


@dataclass
class ExperimentReport:
    """The output of running one experiment.

    ``rows`` are dictionaries (one per swept configuration) whose keys are
    column names; ``verdicts`` are free-form conclusions computed from the
    rows (for example the selected scaling model for an energy curve);
    ``notes`` record caveats such as reduced scale.
    """

    spec: ExperimentSpec
    rows: list[dict[str, Any]] = field(default_factory=list)
    verdicts: dict[str, str] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_row(self, row: Mapping[str, Any]) -> None:
        self.rows.append(dict(row))

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        missing = [i for i, row in enumerate(self.rows) if name not in row]
        if missing:
            raise KeyError(f"column {name!r} missing from rows {missing}")
        return [row[name] for row in self.rows]

    def rows_where(self, **criteria: Any) -> list[dict[str, Any]]:
        """Rows whose columns match all the given key/value criteria."""
        selected = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                selected.append(row)
        return selected


#: Scale presets: the number of packets / slots each experiment uses.  The
#: "smoke" preset exists for integration tests, "default" is what the
#: benchmark suite runs, and "full" is a larger sweep for slower, more
#: precise reproductions.
SCALES = ("smoke", "default", "full")


def check_scale(scale: str) -> str:
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale
