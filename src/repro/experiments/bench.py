"""Merging wall-clock benchmark records.

One JSON file maps experiment ids to their timing history::

    {
      "E1": {
        "latest":  {"seconds": 3.2, "scale": "default", ...},
        "history": [{...}, {...}]
      }
    }

:func:`record_bench` *merges* into the file — other experiments' entries are
preserved and each experiment's history accumulates — so repeated runs build
a perf trajectory instead of overwriting it.  Both the benchmark suite
(``benchmarks/conftest.py``) and the CLI's ``--bench-out`` flag write
through this function, so the artifacts have one schema.

Older files that stored a bare ``{"seconds": ..., "scale": ...}`` per
experiment are migrated in place on the first merge.
"""

from __future__ import annotations

import datetime
import json
import os
import warnings
from pathlib import Path
from typing import Any


def _quarantine(path: Path, reason: str) -> None:
    """Move a damaged bench file aside instead of silently dropping it.

    History files accumulate across many runs; a quietly reset file loses
    all of it.  The damaged bytes are preserved at ``<path>.corrupt`` (last
    corruption wins) so the operator can recover or inspect them, and a
    warning names both paths.
    """
    backup = path.with_name(path.name + ".corrupt")
    try:
        path.replace(backup)
    except OSError:
        # The file may be unreadable *and* unmovable (permissions); the
        # warning below still fires so the loss is at least visible.
        backup = None  # type: ignore[assignment]
    warnings.warn(
        f"bench history {path} is unreadable ({reason}); "
        + (
            f"backed it up to {backup} and starting a fresh history"
            if backup is not None
            else "could not back it up; starting a fresh history"
        ),
        stacklevel=3,
    )


def _load(path: Path) -> dict[str, Any]:
    if not path.exists():
        return {}
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        _quarantine(path, str(exc))
        return {}
    if not text.strip():
        # An empty file is a freshly touched history, not corruption.
        return {}
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        _quarantine(path, f"invalid JSON: {exc}")
        return {}
    if not isinstance(data, dict):
        _quarantine(path, f"expected a JSON object, got {type(data).__name__}")
        return {}
    return data


def _migrate(entry: Any) -> dict[str, Any]:
    """Normalise an entry to the ``{"latest": ..., "history": [...]}`` shape."""
    if isinstance(entry, dict) and "history" in entry:
        history = entry.get("history")
        return {
            "latest": entry.get("latest"),
            "history": list(history) if isinstance(history, list) else [],
        }
    if isinstance(entry, dict) and entry:
        # Legacy shape: the entry itself was the one-and-only record.
        return {"latest": entry, "history": [entry]}
    return {"latest": None, "history": []}


def _merge_record(bench_path: Path, exp_id: str, record: dict[str, Any]) -> None:
    """Merge one record into a history file (atomic replace)."""
    data = _load(bench_path)
    entry = _migrate(data.get(exp_id))
    entry["latest"] = record
    entry["history"].append(record)
    data[exp_id] = entry
    bench_path.parent.mkdir(parents=True, exist_ok=True)
    # Atomic replace (same pattern as the result cache): a reader or a
    # crash mid-write never observes a torn file, which matters because a
    # torn file would be silently reset to {} on the next merge — losing
    # the accumulated history this module exists to preserve.  Concurrent
    # writers can still lose each other's single newest record (last
    # rename wins), but never the file.
    temporary = bench_path.with_suffix(f".tmp.{os.getpid()}")
    temporary.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    temporary.replace(bench_path)


def record_bench(
    path: str | os.PathLike[str],
    exp_id: str,
    *,
    seconds: float,
    scale: str,
    backend: dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
    mirror: str | os.PathLike[str] | None = None,
) -> dict[str, Any]:
    """Merge one timing record into ``path`` and return the record.

    ``backend`` is the executing backend's ``describe()`` snapshot;
    ``extra`` holds free-form caller fields (replicate counts, speedups…).
    ``mirror``, when given, merges the *same* record into a second history
    file — the benchmark suite mirrors its headline metrics from
    ``benchmarks/results/`` to the repo root this way, so the perf
    trajectory is visible where tooling looks for ``BENCH_*.json``
    without splitting the history in two.
    """
    bench_path = Path(path)
    record: dict[str, Any] = {
        "seconds": round(seconds, 4),
        "scale": scale,
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    if backend is not None:
        record["backend"] = backend
    if extra:
        record.update(extra)
    _merge_record(bench_path, exp_id, record)
    if mirror is not None:
        mirror_path = Path(mirror)
        # Resolve both sides so a differently spelled path (relative vs
        # absolute, symlinked) to the same file is not merged twice.
        if mirror_path.resolve() != bench_path.resolve():
            _merge_record(mirror_path, exp_id, record)
    return record
