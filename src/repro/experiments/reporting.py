"""Rendering of experiment reports.

``render_report`` turns an :class:`~repro.experiments.spec.ExperimentReport`
into the plain-text block that the benchmarks print and that EXPERIMENTS.md
quotes.  The module is also runnable::

    python -m repro.experiments.reporting E1 E4 --scale smoke

which regenerates the requested experiments from the command line without
going through pytest.
"""

from __future__ import annotations

import argparse
from typing import Iterable

from repro.analysis.tables import render_rows
from repro.experiments.spec import ExperimentReport

#: Columns shown first when present; remaining columns follow in row order.
_PREFERRED_COLUMNS = (
    "protocol",
    "scenario",
    "variant",
    "n",
    "jam_budget",
    "jammer",
    "rate",
    "granularity",
    "placement",
    "workload",
    "seed",
    "throughput",
    "implicit_throughput",
    "min_implicit_throughput",
    "mean_accesses",
    "max_accesses",
    "victim_accesses",
    "mean_listens",
    "mean_sends",
    "max_backlog",
    "max_backlog_over_s",
    "fraction_negative_drift",
    "max_potential_over_n_plus_j",
    "makespan",
    "drained",
)


def _ordered_columns(report: ExperimentReport) -> list[str]:
    present: set[str] = set()
    for row in report.rows:
        present.update(row.keys())
    ordered = [column for column in _PREFERRED_COLUMNS if column in present]
    ordered.extend(sorted(present - set(ordered)))
    return ordered


def report_to_dict(report: ExperimentReport) -> dict:
    """A JSON-serialisable representation of a report (used by the CLI)."""
    return {
        "experiment": report.spec.exp_id,
        "title": report.spec.title,
        "claim": report.spec.claim,
        "bench_target": report.spec.bench_target,
        "rows": [dict(row) for row in report.rows],
        "verdicts": dict(report.verdicts),
        "notes": list(report.notes),
    }


def render_report(report: ExperimentReport, precision: int = 4) -> str:
    """Render an experiment report as a plain-text block."""
    lines = [
        f"== {report.spec.exp_id}: {report.spec.title} ==",
        f"Claim: {report.spec.claim}",
        f"Bench target: {report.spec.bench_target}",
        "",
    ]
    if report.rows:
        lines.append(
            render_rows(report.rows, columns=_ordered_columns(report), precision=precision)
        )
    else:
        lines.append("(no rows)")
    if report.verdicts:
        lines.append("")
        lines.append("Verdicts:")
        for key, value in report.verdicts.items():
            lines.append(f"  - {key}: {value}")
    if report.notes:
        lines.append("")
        lines.append("Notes:")
        for note in report.notes:
            lines.append(f"  - {note}")
    return "\n".join(lines)


def main(argv: Iterable[str] | None = None) -> int:
    """Command-line entry point: run and print selected experiments."""
    from repro.experiments.experiments import ALL_EXPERIMENTS

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        default=list(ALL_EXPERIMENTS),
        help="experiment ids to run (default: all)",
    )
    parser.add_argument("--scale", default="default", choices=("smoke", "default", "full"))
    args = parser.parse_args(list(argv) if argv is not None else None)
    for exp_id in args.experiments:
        if exp_id not in ALL_EXPERIMENTS:
            parser.error(f"unknown experiment id {exp_id!r}")
        report = ALL_EXPERIMENTS[exp_id](scale=args.scale)
        print(render_report(report))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
