"""Definitions of the paper-claim experiments E1–E9 and the ablation A1.

Every experiment function takes a ``scale`` ("smoke" for tests, "default"
for the benchmark suite, "full" for slower high-precision runs), a seed
list, and an optional execution ``backend`` (see :mod:`repro.exec`), and
returns an :class:`~repro.experiments.spec.ExperimentReport` whose rows are
the table recorded in EXPERIMENTS.md.  The functions only *measure*; the
pass/fail reasoning lives in the verdict strings and in the test-suite's
assertions.

Each experiment is expressed declaratively: it first lays out its whole
protocol × adversary × seed grid as a :class:`~repro.experiments.plan.SweepPlan`
(adversaries as picklable :func:`~repro.experiments.plan.factory` calls, not
closures), then executes the plan on the chosen backend, then post-processes
the aligned results into rows and verdicts.  The same plan therefore runs
serially, across a process pool, or against a result cache — with identical
tables.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.adversary.arrivals import (
    AdversarialQueueingArrivals,
    BatchArrivals,
    PeriodicBurstArrivals,
)
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import (
    AdaptiveContentionJammer,
    BernoulliJamming,
    BudgetedRandomJamming,
    BurstJamming,
    NoJamming,
    ReactiveSuccessJammer,
    ReactiveTargetedJammer,
)
from repro.analysis.fitting import fit_linear, fit_log_power, fit_power_law
from repro.core.low_sensing import DecoupledLowSensingBackoff, LowSensingBackoff
from repro.core.parameters import LowSensingParameters
from repro.exec.backends import ExecutionBackend
from repro.experiments.plan import Factory, SweepPlan, factory
from repro.experiments.spec import ExperimentReport, ExperimentSpec, check_scale
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.fixed_probability import FixedProbabilityProtocol
from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights
from repro.protocols.polynomial_backoff import PolynomialBackoff
from repro.protocols.sawtooth import SawtoothBackoff

DEFAULT_SEEDS = (11, 23, 47)
SMOKE_SEEDS = (11,)


def _seeds(scale: str, seeds: Sequence[int] | None) -> Sequence[int]:
    if seeds is not None:
        return seeds
    return SMOKE_SEEDS if scale == "smoke" else DEFAULT_SEEDS


def _batch_sizes(scale: str) -> list[int]:
    if scale == "smoke":
        return [50, 100]
    if scale == "default":
        return [100, 200, 400, 800]
    return [100, 200, 400, 800, 1600]


def _batch_adversary(n: int) -> Factory:
    return factory(CompositeAdversary, factory(BatchArrivals, n))


def _queueing_adversary(
    rate: float, granularity: int, placement: str, horizon: int
) -> Factory:
    return factory(
        CompositeAdversary,
        factory(
            AdversarialQueueingArrivals,
            rate=rate,
            granularity=granularity,
            placement=placement,
            horizon=horizon,
        ),
    )


# ---------------------------------------------------------------------------
# E1 — Overall throughput on finite (batch) streams.
# ---------------------------------------------------------------------------

E1_SPEC = ExperimentSpec(
    exp_id="E1",
    title="Throughput on batch arrivals",
    claim=(
        "Corollary 1.4: LOW-SENSING BACKOFF delivers Θ(1) overall throughput "
        "on finite streams, whereas binary exponential backoff degrades as "
        "O(1/ln N) [23]."
    ),
    bench_target="benchmarks/bench_e1_throughput_batch.py",
)


def build_e1_plan(
    scale: str = "default", seeds: Sequence[int] | None = None
) -> SweepPlan:
    """The E1 grid: batch size N × every protocol, replicated over seeds."""
    scale = check_scale(scale)
    seeds = _seeds(scale, seeds)
    sizes = _batch_sizes(scale)
    protocols: list = [
        LowSensingBackoff(),
        FullSensingMultiplicativeWeights(),
        SawtoothBackoff(),
        BinaryExponentialBackoff(),
        PolynomialBackoff(),
    ]
    plan = SweepPlan()
    for n in sizes:
        for protocol in protocols + [FixedProbabilityProtocol.tuned_for(n)]:
            plan.add_group(
                protocol, _batch_adversary(n), seeds, columns={"n": n}
            )
    return plan


def run_e1_throughput_batch(
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    """Sweep batch size N for every protocol and record overall throughput."""
    scale = check_scale(scale)
    report = ExperimentReport(spec=E1_SPEC)
    plan = build_e1_plan(scale, seeds)
    for row in plan.run(backend).group_rows():
        report.add_row(row)
    # Verdict: is low-sensing throughput flat while BEB's declines?
    lsb = [r for r in report.rows if r["protocol"] == "low-sensing"]
    beb = [r for r in report.rows if r["protocol"] == "binary-exponential"]
    if len(lsb) >= 2 and len(beb) >= 2:
        report.verdicts["low_sensing_ratio_last_to_first"] = (
            f"{lsb[-1]['throughput'] / lsb[0]['throughput']:.3f}"
        )
        report.verdicts["beb_ratio_last_to_first"] = (
            f"{beb[-1]['throughput'] / beb[0]['throughput']:.3f}"
        )
    return report


# ---------------------------------------------------------------------------
# E2 — Implicit throughput on (effectively) infinite streams.
# ---------------------------------------------------------------------------

E2_SPEC = ExperimentSpec(
    exp_id="E2",
    title="Implicit throughput under adversarial-queuing arrivals",
    claim=(
        "Theorem 1.3: the implicit throughput (N_t + J_t)/S_t is Ω(1) at "
        "every active slot, for arbitrarily long executions."
    ),
    bench_target="benchmarks/bench_e2_implicit_throughput.py",
)


def _e2_horizon(scale: str) -> int:
    return {"smoke": 2_000, "default": 15_000, "full": 60_000}[scale]


def build_e2_plan(
    scale: str = "default", seeds: Sequence[int] | None = None
) -> SweepPlan:
    """The E2 grid: adversarial-queuing configurations at a long horizon."""
    scale = check_scale(scale)
    seeds = _seeds(scale, seeds)
    horizon = _e2_horizon(scale)
    configs = [
        (0.1, 100, "front"),
        (0.2, 200, "front"),
        (0.2, 200, "random"),
        (0.3, 400, "front"),
    ]
    if scale == "smoke":
        configs = configs[:2]
    plan = SweepPlan()
    for rate, granularity, placement in configs:
        plan.add_group(
            LowSensingBackoff(),
            _queueing_adversary(rate, granularity, placement, horizon),
            seeds,
            columns={"rate": rate, "granularity": granularity, "placement": placement},
            max_slots=horizon * 4,
        )
    return plan


def run_e2_implicit_throughput(
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    """Long queueing runs; record the minimum implicit throughput over time."""
    scale = check_scale(scale)
    report = ExperimentReport(spec=E2_SPEC)
    horizon = _e2_horizon(scale)
    plan = build_e2_plan(scale, seeds)
    results = plan.run(backend)
    for group in plan.groups:
        columns = dict(group.columns)
        granularity = columns["granularity"]
        for seed, result in results.seeded_group(group.group_id):
            series = result.implicit_throughput_series()
            # Ignore the warm-up prefix: implicit throughput is trivially high
            # before the first burst has been processed.
            start = min(len(series) - 1, granularity)
            tail = series[start:] or series
            report.add_row(
                {
                    "protocol": "low-sensing",
                    **columns,
                    "seed": seed,
                    "horizon": horizon,
                    "arrivals": result.num_arrivals,
                    "min_implicit_throughput": min(tail),
                    "final_implicit_throughput": series[-1],
                    "final_throughput": result.throughput,
                    "drained": result.drained,
                }
            )
    minima = report.column("min_implicit_throughput")
    report.verdicts["worst_min_implicit_throughput"] = f"{min(minima):.3f}"
    return report


# ---------------------------------------------------------------------------
# E3 — Bounded backlog under adversarial-queuing arrivals.
# ---------------------------------------------------------------------------

E3_SPEC = ExperimentSpec(
    exp_id="E3",
    title="Backlog under adversarial-queuing arrivals",
    claim=(
        "Corollary 1.5: with (λ, S) arrivals and small constant λ, the number "
        "of packets in the system is O(S) at all times."
    ),
    bench_target="benchmarks/bench_e3_backlog.py",
)


def build_e3_plan(
    scale: str = "default", seeds: Sequence[int] | None = None
) -> SweepPlan:
    """The E3 grid: queueing granularity sweep at fixed rate."""
    scale = check_scale(scale)
    seeds = _seeds(scale, seeds)
    granularities = {"smoke": [100], "default": [100, 200, 400], "full": [100, 200, 400, 800]}[
        scale
    ]
    windows = {"smoke": 10, "default": 30, "full": 60}[scale]
    rate = 0.2
    plan = SweepPlan()
    for granularity in granularities:
        horizon = granularity * windows
        plan.add_group(
            LowSensingBackoff(),
            _queueing_adversary(rate, granularity, "front", horizon),
            seeds,
            columns={"granularity": granularity, "rate": rate, "horizon": horizon},
            max_slots=horizon * 4,
        )
    return plan


def run_e3_backlog(
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    """Sweep the granularity S and record max backlog relative to S."""
    scale = check_scale(scale)
    report = ExperimentReport(spec=E3_SPEC)
    plan = build_e3_plan(scale, seeds)
    for row in plan.run(backend).group_rows():
        row["max_backlog_over_s"] = row["max_backlog"] / row["granularity"]
        report.add_row(row)
    ratios = report.column("max_backlog_over_s")
    report.verdicts["largest_backlog_over_s"] = f"{max(ratios):.3f}"
    if len(report.rows) >= 2:
        fit = fit_linear(report.column("granularity"), report.column("max_backlog"))
        report.verdicts["backlog_vs_s_linear_fit"] = str(fit)
    return report


# ---------------------------------------------------------------------------
# E4 — Energy (channel accesses) on finite streams, adaptive adversary.
# ---------------------------------------------------------------------------

E4_SPEC = ExperimentSpec(
    exp_id="E4",
    title="Channel accesses per packet on finite streams",
    claim=(
        "Theorem 1.6: every packet makes O(polylog(N+J)) channel accesses "
        "w.h.p. against an adaptive (non-reactive) adversary."
    ),
    bench_target="benchmarks/bench_e4_energy_finite.py",
)


def build_e4_plan(
    scale: str = "default", seeds: Sequence[int] | None = None
) -> SweepPlan:
    """The E4 grid: batch size × jamming-budget fraction."""
    scale = check_scale(scale)
    seeds = _seeds(scale, seeds)
    sizes = _batch_sizes(scale)
    jam_fractions = [0.0, 0.5] if scale != "smoke" else [0.0]
    plan = SweepPlan()
    for n in sizes:
        for jam_fraction in jam_fractions:
            budget = int(n * jam_fraction)
            jammer = (
                factory(BudgetedRandomJamming, budget=budget, horizon=8 * n)
                if budget
                else factory(NoJamming)
            )
            plan.add_group(
                LowSensingBackoff(),
                factory(CompositeAdversary, factory(BatchArrivals, n), jammer),
                seeds,
                columns={"n": n, "jam_budget": budget},
            )
    return plan


def run_e4_energy_finite(
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    """Sweep N (and a jamming budget proportional to N); fit access scaling."""
    scale = check_scale(scale)
    report = ExperimentReport(spec=E4_SPEC)
    plan = build_e4_plan(scale, seeds)
    for row in plan.run(backend).group_rows():
        row["n_plus_j"] = row["n"] + row["jam_budget"]
        report.add_row(row)
    unjammed = report.rows_where(jam_budget=0)
    xs = [row["n"] for row in unjammed]
    ys = [row["mean_accesses"] for row in unjammed]
    if len(xs) >= 3:
        log_fit = fit_log_power(xs, ys)
        power_fit = fit_power_law(xs, ys)
        linear_fit = fit_linear(xs, ys)
        report.verdicts["mean_accesses_log_power_fit"] = str(log_fit)
        report.verdicts["mean_accesses_power_fit"] = str(power_fit)
        report.verdicts["mean_accesses_linear_fit"] = str(linear_fit)
        report.verdicts["accesses_growth_factor"] = (
            f"N x{xs[-1] / xs[0]:.0f} -> accesses x{ys[-1] / ys[0]:.2f}"
        )
    return report


# ---------------------------------------------------------------------------
# E5 — Energy under adversarial-queuing arrivals.
# ---------------------------------------------------------------------------

E5_SPEC = ExperimentSpec(
    exp_id="E5",
    title="Channel accesses per packet under adversarial queuing",
    claim=(
        "Theorem 1.7: with (λ, S) arrivals and small constant λ, every packet "
        "makes O(polylog S) channel accesses w.h.p."
    ),
    bench_target="benchmarks/bench_e5_energy_queueing.py",
)


def build_e5_plan(
    scale: str = "default", seeds: Sequence[int] | None = None
) -> SweepPlan:
    """The E5 grid: queueing granularity sweep for energy statistics."""
    scale = check_scale(scale)
    seeds = _seeds(scale, seeds)
    granularities = {"smoke": [100], "default": [100, 200, 400, 800], "full": [100, 200, 400, 800, 1600]}[
        scale
    ]
    windows = {"smoke": 10, "default": 25, "full": 50}[scale]
    rate = 0.2
    plan = SweepPlan()
    for granularity in granularities:
        horizon = granularity * windows
        plan.add_group(
            LowSensingBackoff(),
            _queueing_adversary(rate, granularity, "front", horizon),
            seeds,
            columns={"granularity": granularity, "rate": rate, "horizon": horizon},
            max_slots=horizon * 4,
        )
    return plan


def run_e5_energy_queueing(
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    """Sweep granularity S; record per-packet access statistics."""
    scale = check_scale(scale)
    report = ExperimentReport(spec=E5_SPEC)
    plan = build_e5_plan(scale, seeds)
    for row in plan.run(backend).group_rows():
        report.add_row(row)
    xs = report.column("granularity")
    ys = report.column("mean_accesses")
    if len(xs) >= 3:
        report.verdicts["mean_accesses_log_power_fit"] = str(fit_log_power(xs, ys))
        report.verdicts["mean_accesses_power_fit"] = str(fit_power_law(xs, ys))
        report.verdicts["accesses_growth_factor"] = (
            f"S x{xs[-1] / xs[0]:.0f} -> accesses x{ys[-1] / ys[0]:.2f}"
        )
    return report


# ---------------------------------------------------------------------------
# E6 — Reactive adversary: worst-case vs average energy.
# ---------------------------------------------------------------------------

E6_SPEC = ExperimentSpec(
    exp_id="E6",
    title="Energy against a reactive adversary",
    claim=(
        "Theorem 1.9: against a reactive adversary a targeted packet may pay "
        "O((J+1)·polylog(N)) accesses, but the average over packets stays "
        "O((J/N+1)·polylog(N+J))."
    ),
    bench_target="benchmarks/bench_e6_reactive.py",
)


def build_e6_plan(
    scale: str = "default", seeds: Sequence[int] | None = None
) -> SweepPlan:
    """The E6 grid: reactive jamming budgets aimed at one victim packet."""
    scale = check_scale(scale)
    seeds = _seeds(scale, seeds)
    n = 100 if scale == "smoke" else 200
    budgets = [0, 25, 100, 400] if scale != "smoke" else [0, 25]
    plan = SweepPlan()
    for budget in budgets:
        plan.add_group(
            LowSensingBackoff(),
            factory(
                CompositeAdversary,
                factory(BatchArrivals, n),
                factory(ReactiveTargetedJammer, budget=budget, target_index=0),
            ),
            seeds,
            columns={"n": n, "jam_budget": budget},
            max_slots=500_000,
        )
    return plan


def run_e6_reactive(
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    """Sweep the reactive jamming budget aimed at one victim packet."""
    scale = check_scale(scale)
    report = ExperimentReport(spec=E6_SPEC)
    plan = build_e6_plan(scale, seeds)
    results = plan.run(backend)
    for group in plan.groups:
        columns = dict(group.columns)
        for seed, result in results.seeded_group(group.group_id):
            energy = result.energy_statistics()
            victim = next(p for p in result.packets if p.packet_id == 0)
            report.add_row(
                {
                    "protocol": "low-sensing",
                    **columns,
                    "seed": seed,
                    "victim_accesses": victim.channel_accesses,
                    "mean_accesses": energy.mean_accesses,
                    "max_accesses": energy.max_accesses,
                    "jammed_active": result.num_jammed_active,
                    "throughput": result.throughput,
                    "drained": result.drained,
                }
            )
    by_budget: dict[int, list[float]] = {}
    avg_by_budget: dict[int, list[float]] = {}
    for row in report.rows:
        by_budget.setdefault(row["jam_budget"], []).append(row["victim_accesses"])
        avg_by_budget.setdefault(row["jam_budget"], []).append(row["mean_accesses"])
    for budget, values in sorted(by_budget.items()):
        mean_victim = sum(values) / len(values)
        mean_avg = sum(avg_by_budget[budget]) / len(avg_by_budget[budget])
        report.verdicts[f"victim_accesses_at_J={budget}"] = f"{mean_victim:.1f}"
        report.verdicts[f"mean_accesses_at_J={budget}"] = f"{mean_avg:.1f}"
    return report


# ---------------------------------------------------------------------------
# E7 — Throughput robustness to jamming.
# ---------------------------------------------------------------------------

E7_SPEC = ExperimentSpec(
    exp_id="E7",
    title="Throughput with adversarial jamming",
    claim=(
        "Corollary 1.4 with J > 0: throughput measured as (T+J)/S remains "
        "Θ(1) under adaptive jamming strategies."
    ),
    bench_target="benchmarks/bench_e7_jamming_throughput.py",
)


def build_e7_plan(
    scale: str = "default", seeds: Sequence[int] | None = None
) -> SweepPlan:
    """The E7 grid: jamming strategies × protocols on a batch workload."""
    scale = check_scale(scale)
    seeds = _seeds(scale, seeds)
    n = 100 if scale == "smoke" else 300
    jammers: list[tuple[str, Factory]] = [
        ("none", factory(NoJamming)),
        ("bernoulli-20%", factory(BernoulliJamming, probability=0.2, budget=n)),
        ("burst", factory(BurstJamming, start=20, length=n // 2)),
        (
            "adaptive-good-contention",
            factory(AdaptiveContentionJammer, budget=n, target_regime="good"),
        ),
        ("reactive-success", factory(ReactiveSuccessJammer, budget=n // 2)),
    ]
    if scale == "smoke":
        jammers = jammers[:3]
    protocols = [LowSensingBackoff(), FullSensingMultiplicativeWeights(), BinaryExponentialBackoff()]
    if scale == "smoke":
        protocols = protocols[:1]
    plan = SweepPlan()
    for jammer_name, jammer in jammers:
        for protocol in protocols:
            plan.add_group(
                protocol,
                factory(CompositeAdversary, factory(BatchArrivals, n), jammer),
                seeds,
                columns={"n": n, "jammer": jammer_name},
            )
    return plan


def run_e7_jamming_throughput(
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    """Batch workload under several jamming strategies and protocols."""
    scale = check_scale(scale)
    report = ExperimentReport(spec=E7_SPEC)
    plan = build_e7_plan(scale, seeds)
    for row in plan.run(backend).group_rows():
        report.add_row(row)
    lsb_rows = [r for r in report.rows if r["protocol"] == "low-sensing"]
    report.verdicts["low_sensing_min_throughput_over_jammers"] = (
        f"{min(r['throughput'] for r in lsb_rows):.3f}"
    )
    return report


# ---------------------------------------------------------------------------
# E8 — Energy/throughput trade-off across protocols.
# ---------------------------------------------------------------------------

E8_SPEC = ExperimentSpec(
    exp_id="E8",
    title="Energy vs throughput across protocols",
    claim=(
        "The motivation of the paper: full-sensing protocols buy Θ(1) "
        "throughput with Θ(active slots) listens per packet; oblivious "
        "protocols are listen-free but lose constant throughput; LOW-SENSING "
        "BACKOFF achieves both constant throughput and polylog accesses."
    ),
    bench_target="benchmarks/bench_e8_energy_throughput_tradeoff.py",
)


def _e8_sizes(scale: str) -> list[int]:
    return [100] if scale == "smoke" else [200, 400]


def build_e8_plan(
    scale: str = "default", seeds: Sequence[int] | None = None
) -> SweepPlan:
    """The E8 grid: every protocol at each batch size."""
    scale = check_scale(scale)
    seeds = _seeds(scale, seeds)
    sizes = _e8_sizes(scale)
    protocols = [
        LowSensingBackoff(),
        FullSensingMultiplicativeWeights(),
        SawtoothBackoff(),
        BinaryExponentialBackoff(),
        PolynomialBackoff(),
    ]
    plan = SweepPlan()
    for n in sizes:
        for protocol in protocols:
            plan.add_group(
                protocol, _batch_adversary(n), seeds, columns={"n": n}
            )
    return plan


def run_e8_energy_throughput_tradeoff(
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    """Record the (throughput, accesses/packet) pair for every protocol."""
    scale = check_scale(scale)
    report = ExperimentReport(spec=E8_SPEC)
    sizes = _e8_sizes(scale)
    plan = build_e8_plan(scale, seeds)
    for row in plan.run(backend).group_rows():
        report.add_row(row)
    for n in sizes:
        rows = report.rows_where(n=n)
        lsb = next(r for r in rows if r["protocol"] == "low-sensing")
        mw = next(r for r in rows if r["protocol"] == "full-sensing-mw")
        beb = next(r for r in rows if r["protocol"] == "binary-exponential")
        report.verdicts[f"n={n}_mw_over_lsb_accesses"] = (
            f"{mw['mean_accesses'] / lsb['mean_accesses']:.2f}"
        )
        report.verdicts[f"n={n}_lsb_over_beb_throughput"] = (
            f"{lsb['throughput'] / beb['throughput']:.2f}"
        )
    return report


# ---------------------------------------------------------------------------
# E9 — Potential-function drift (Theorem 5.18).
# ---------------------------------------------------------------------------

E9_SPEC = ExperimentSpec(
    exp_id="E9",
    title="Potential-function drift over analysis intervals",
    claim=(
        "Theorem 5.18: over intervals of length τ = (1/c_int)·max(w_max/ln² "
        "w_max, √N), the potential Φ decreases by Ω(τ) − O(A+J) w.h.p.; the "
        "maximum potential stays O(N+J) (Corollary 5.22)."
    ),
    bench_target="benchmarks/bench_e9_potential_drift.py",
)


def build_e9_plan(
    scale: str = "default", seeds: Sequence[int] | None = None
) -> SweepPlan:
    """The E9 grid: batch and bursty workloads with potential tracking."""
    scale = check_scale(scale)
    seeds = _seeds(scale, seeds)
    n = 100 if scale == "smoke" else 400
    workloads: list[tuple[str, Factory]] = [
        ("batch", _batch_adversary(n)),
        (
            "bursty",
            factory(
                CompositeAdversary,
                factory(
                    PeriodicBurstArrivals,
                    burst_size=n // 10,
                    period=50,
                    num_bursts=10,
                ),
                factory(BernoulliJamming, probability=0.05, budget=n // 4),
            ),
        ),
    ]
    plan = SweepPlan()
    for workload_name, adversary in workloads:
        plan.add_group(
            LowSensingBackoff(),
            adversary,
            seeds,
            columns={"workload": workload_name},
            max_slots=500_000,
            collect_potential=True,
        )
    return plan


def run_e9_potential_drift(
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    """Track Φ(t) on batch and bursty workloads; report drift statistics."""
    scale = check_scale(scale)
    report = ExperimentReport(spec=E9_SPEC)
    plan = build_e9_plan(scale, seeds)
    results = plan.run(backend)
    for group in plan.groups:
        columns = dict(group.columns)
        for seed, result in results.seeded_group(group.group_id):
            tracker = result.potential
            assert tracker is not None
            drifts = tracker.interval_drifts()
            negative_fraction = tracker.fraction_negative_drift()
            jam_plus_arrivals = result.num_arrivals + result.num_jammed_active
            report.add_row(
                {
                    "protocol": "low-sensing",
                    **columns,
                    "seed": seed,
                    "n_plus_j": jam_plus_arrivals,
                    "num_intervals": len(drifts),
                    "fraction_negative_drift": negative_fraction,
                    "max_potential": tracker.max_potential(),
                    "max_potential_over_n_plus_j": (
                        tracker.max_potential() / jam_plus_arrivals
                        if jam_plus_arrivals
                        else 0.0
                    ),
                    "throughput": result.throughput,
                    "drained": result.drained,
                }
            )
    fractions = report.column("fraction_negative_drift")
    report.verdicts["min_fraction_negative_drift"] = f"{min(fractions):.3f}"
    ratios = report.column("max_potential_over_n_plus_j")
    report.verdicts["max_potential_over_n_plus_j"] = f"{max(ratios):.3f}"
    return report


# ---------------------------------------------------------------------------
# A1 — Ablation of design choices.
# ---------------------------------------------------------------------------

A1_SPEC = ExperimentSpec(
    exp_id="A1",
    title="Ablation: algorithm constants and listen/send coupling",
    claim=(
        "Design choices of Section 3: the coupled listen-then-send structure "
        "and the c / w_min constants trade energy against convergence speed "
        "without affecting the constant-throughput behaviour."
    ),
    bench_target="benchmarks/bench_a1_ablation.py",
)


def build_a1_plan(
    scale: str = "default", seeds: Sequence[int] | None = None
) -> SweepPlan:
    """The A1 grid: LOW-SENSING parameter and coupling variants."""
    scale = check_scale(scale)
    seeds = _seeds(scale, seeds)
    n = 100 if scale == "smoke" else 300
    variants: list[tuple[str, object]] = [
        ("default (c=0.5, w_min=32)", LowSensingBackoff()),
        (
            "larger constants (c=1, w_min=100)",
            LowSensingBackoff(params=LowSensingParameters(c=1.0, w_min=100.0)),
        ),
        (
            "gentler updates (c=1.4, w_min=256)",
            LowSensingBackoff(params=LowSensingParameters(c=1.4, w_min=256.0)),
        ),
        ("decoupled listen/send coins", DecoupledLowSensingBackoff()),
    ]
    if scale == "smoke":
        variants = variants[:2]
    plan = SweepPlan()
    for label, protocol in variants:
        plan.add_group(
            protocol,
            _batch_adversary(n),
            seeds,
            columns={"variant": label, "n": n},
        )
    return plan


def run_a1_ablation(
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    backend: ExecutionBackend | None = None,
) -> ExperimentReport:
    """Compare LOW-SENSING variants (constants, decoupled coins) on a batch."""
    scale = check_scale(scale)
    report = ExperimentReport(spec=A1_SPEC)
    plan = build_a1_plan(scale, seeds)
    for row in plan.run(backend).group_rows():
        report.add_row(row)
    throughputs = {row["variant"]: row["throughput"] for row in report.rows}
    report.verdicts["throughput_spread"] = (
        f"min={min(throughputs.values()):.3f}, max={max(throughputs.values()):.3f}"
    )
    return report


#: Registry used by the benchmark suite, the CLI, and the reporting module.
ALL_EXPERIMENTS: dict[str, Callable[..., ExperimentReport]] = {
    "E1": run_e1_throughput_batch,
    "E2": run_e2_implicit_throughput,
    "E3": run_e3_backlog,
    "E4": run_e4_energy_finite,
    "E5": run_e5_energy_queueing,
    "E6": run_e6_reactive,
    "E7": run_e7_jamming_throughput,
    "E8": run_e8_energy_throughput_tradeoff,
    "E9": run_e9_potential_drift,
    "A1": run_a1_ablation,
}

#: Plan builders, one per experiment: the declarative grid *without* running
#: it.  ``run --explain`` and ``list --json`` introspect vectorization
#: coverage through these, and every ``run_*`` function above executes
#: exactly the plan its builder returns.
EXPERIMENT_PLANS: dict[str, Callable[..., SweepPlan]] = {
    "E1": build_e1_plan,
    "E2": build_e2_plan,
    "E3": build_e3_plan,
    "E4": build_e4_plan,
    "E5": build_e5_plan,
    "E6": build_e6_plan,
    "E7": build_e7_plan,
    "E8": build_e8_plan,
    "E9": build_e9_plan,
    "A1": build_a1_plan,
}
