"""Paper-experiment harness.

Each of the paper's main claims is reproduced by one experiment (E1–E9 plus
the ablation A1; see DESIGN.md for the index).  An experiment is a plain
function that runs a parameter sweep with replication and returns an
:class:`~repro.experiments.spec.ExperimentReport` containing the table rows
that EXPERIMENTS.md records.  The benchmark suite calls the same functions,
so `pytest benchmarks/ --benchmark-only` regenerates every table.
"""

from repro.experiments.experiments import (
    ALL_EXPERIMENTS,
    run_a1_ablation,
    run_e1_throughput_batch,
    run_e2_implicit_throughput,
    run_e3_backlog,
    run_e4_energy_finite,
    run_e5_energy_queueing,
    run_e6_reactive,
    run_e7_jamming_throughput,
    run_e8_energy_throughput_tradeoff,
    run_e9_potential_drift,
)
from repro.experiments.plan import (
    Factory,
    PlanResults,
    RunSpec,
    SweepPlan,
    aggregate_replicate_row,
    factory,
)
from repro.experiments.reporting import render_report, report_to_dict
from repro.experiments.runner import SweepRunner
from repro.experiments.spec import ExperimentReport, ExperimentSpec

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentReport",
    "ExperimentSpec",
    "Factory",
    "PlanResults",
    "RunSpec",
    "SweepPlan",
    "SweepRunner",
    "aggregate_replicate_row",
    "factory",
    "render_report",
    "report_to_dict",
    "run_a1_ablation",
    "run_e1_throughput_batch",
    "run_e2_implicit_throughput",
    "run_e3_backlog",
    "run_e4_energy_finite",
    "run_e5_energy_queueing",
    "run_e6_reactive",
    "run_e7_jamming_throughput",
    "run_e8_energy_throughput_tradeoff",
    "run_e9_potential_drift",
]
