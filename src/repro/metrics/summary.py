"""Cross-seed aggregation of run summaries.

Experiments replicate each configuration over several seeds; this module
defines the per-run summary record and aggregation over replicates (mean,
min, max per numeric field), which is what experiment tables report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Sequence


@dataclass(frozen=True)
class RunSummary:
    """Headline metrics of one execution (one protocol, one seed)."""

    protocol: str
    seed: int
    num_arrivals: int
    num_delivered: int
    num_active_slots: int
    num_jammed_active: int
    num_slots: int
    throughput: float
    implicit_throughput: float
    mean_accesses: float
    max_accesses: float
    mean_sends: float
    mean_listens: float
    max_backlog: int
    makespan: float
    drained: bool

    NUMERIC_FIELDS = (
        "num_arrivals",
        "num_delivered",
        "num_active_slots",
        "num_jammed_active",
        "num_slots",
        "throughput",
        "implicit_throughput",
        "mean_accesses",
        "max_accesses",
        "mean_sends",
        "mean_listens",
        "max_backlog",
        "makespan",
    )


@dataclass(frozen=True)
class AggregatedMetric:
    """Mean / min / max / standard deviation of one metric over replicates."""

    mean: float
    minimum: float
    maximum: float
    std: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} [{self.minimum:.4g}, {self.maximum:.4g}]"


def aggregate_summaries(
    summaries: Sequence[RunSummary],
) -> dict[str, AggregatedMetric]:
    """Aggregate replicate summaries field-by-field.

    All summaries must describe the same protocol; aggregation across
    protocols would be meaningless and is rejected.
    """
    if not summaries:
        raise ValueError("no summaries to aggregate")
    protocols = {summary.protocol for summary in summaries}
    if len(protocols) > 1:
        raise ValueError(f"cannot aggregate across protocols: {sorted(protocols)}")
    aggregated: dict[str, AggregatedMetric] = {}
    for name in RunSummary.NUMERIC_FIELDS:
        values = [float(getattr(summary, name)) for summary in summaries]
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        aggregated[name] = AggregatedMetric(
            mean=mean,
            minimum=min(values),
            maximum=max(values),
            std=math.sqrt(variance),
        )
    return aggregated


def summary_field_names() -> list[str]:
    """Names of all fields of :class:`RunSummary` (for table headers)."""
    return [f.name for f in fields(RunSummary)]
