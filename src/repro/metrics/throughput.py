"""Throughput and implicit throughput.

Definitions (Section 1.1, including the jamming extension):

* ``throughput(t) = (T_t + J_t) / S_t`` — successes plus jammed slots over
  active slots;
* ``implicit_throughput(t) = (N_t + J_t) / S_t`` — arrivals plus jammed
  slots over active slots.

Both are computed over *active* slots only; jammed slots are counted only
when active (jamming an empty system neither helps nor hurts the algorithm,
and counting it would let an adversary inflate the metric for free).
Observation 1.1: whenever the system is empty the two quantities coincide,
which the property tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ThroughputAccounting:
    """Cumulative counts needed to evaluate both throughput metrics."""

    arrivals: int
    successes: int
    jammed_active: int
    active_slots: int

    def __post_init__(self) -> None:
        if min(self.arrivals, self.successes, self.jammed_active, self.active_slots) < 0:
            raise ValueError("counts cannot be negative")
        if self.successes > self.arrivals:
            raise ValueError("cannot have more successes than arrivals")

    @property
    def throughput(self) -> float:
        """``(T + J) / S``; defined as 1.0 when there were no active slots."""
        if self.active_slots == 0:
            return 1.0
        return (self.successes + self.jammed_active) / self.active_slots

    @property
    def implicit_throughput(self) -> float:
        """``(N + J) / S``; defined as 1.0 when there were no active slots."""
        if self.active_slots == 0:
            return 1.0
        return (self.arrivals + self.jammed_active) / self.active_slots


def overall_throughput(
    successes: int, jammed_active: int, active_slots: int
) -> float:
    """Overall throughput of a finished execution: ``(T + J) / S``."""
    accounting = ThroughputAccounting(
        arrivals=successes,
        successes=successes,
        jammed_active=jammed_active,
        active_slots=active_slots,
    )
    return accounting.throughput


def throughput_series(
    cumulative_successes: Sequence[int],
    cumulative_jammed_active: Sequence[int],
    cumulative_active_slots: Sequence[int],
) -> list[float]:
    """Per-slot throughput series ``(T_t + J_t) / S_t``.

    Slots before the first active slot report 1.0 (vacuous throughput), in
    line with the paper's convention that the first slot of interest is the
    first active slot.
    """
    _check_equal_lengths(
        cumulative_successes, cumulative_jammed_active, cumulative_active_slots
    )
    series = []
    for t_count, j_count, s_count in zip(
        cumulative_successes, cumulative_jammed_active, cumulative_active_slots
    ):
        series.append(1.0 if s_count == 0 else (t_count + j_count) / s_count)
    return series


def implicit_throughput_series(
    cumulative_arrivals: Sequence[int],
    cumulative_jammed_active: Sequence[int],
    cumulative_active_slots: Sequence[int],
) -> list[float]:
    """Per-slot implicit throughput series ``(N_t + J_t) / S_t``."""
    _check_equal_lengths(
        cumulative_arrivals, cumulative_jammed_active, cumulative_active_slots
    )
    series = []
    for n_count, j_count, s_count in zip(
        cumulative_arrivals, cumulative_jammed_active, cumulative_active_slots
    ):
        series.append(1.0 if s_count == 0 else (n_count + j_count) / s_count)
    return series


def _check_equal_lengths(*sequences: Sequence[int]) -> None:
    lengths = {len(sequence) for sequence in sequences}
    if len(lengths) > 1:
        raise ValueError(f"series lengths differ: {sorted(lengths)}")
