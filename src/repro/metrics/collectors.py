"""Per-slot metrics collection.

The :class:`MetricsCollector` is the engine's single sink for per-slot
observations.  It maintains the cumulative counters that the paper's metrics
are defined over (arrivals, successes, jammed slots, active slots) plus the
light-weight series (backlog, cumulative counters per slot) that the
throughput and backlog analyses need.  It deliberately stores only integers
per slot so that even 10^5-slot executions stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channel.feedback import SlotOutcome


@dataclass(frozen=True, slots=True)
class SlotObservation:
    """What the engine reports to the collector after each slot."""

    slot: int
    outcome: SlotOutcome
    jammed: bool
    arrivals: int
    active_before: int
    active_after: int
    num_senders: int
    num_listeners: int


class MetricsCollector:
    """Accumulates counters and per-slot series for one execution."""

    def __init__(self, collect_series: bool = True) -> None:
        self.collect_series = collect_series
        # Cumulative counters.
        self.num_slots = 0
        self.num_active_slots = 0
        self.num_arrivals = 0
        self.num_successes = 0
        self.num_collisions = 0
        self.num_empty_active = 0
        self.num_jammed = 0
        self.num_jammed_active = 0
        self.total_sends = 0
        self.total_listens = 0
        # Per-slot series (indices are slot numbers).
        self.backlog_series: list[int] = []
        self.cumulative_arrivals: list[int] = []
        self.cumulative_successes: list[int] = []
        self.cumulative_jammed_active: list[int] = []
        self.cumulative_active_slots: list[int] = []

    def observe(self, observation: SlotObservation) -> None:
        """Record one slot."""
        if observation.slot != self.num_slots:
            raise ValueError(
                f"slots must be observed in order: expected {self.num_slots}, "
                f"got {observation.slot}"
            )
        self.num_slots += 1
        self.num_arrivals += observation.arrivals
        active = observation.active_before > 0
        if active:
            self.num_active_slots += 1
        if observation.jammed:
            self.num_jammed += 1
            if active:
                self.num_jammed_active += 1
        outcome = observation.outcome
        if outcome is SlotOutcome.SUCCESS:
            self.num_successes += 1
        elif outcome is SlotOutcome.COLLISION:
            self.num_collisions += 1
        elif outcome is SlotOutcome.EMPTY and active:
            self.num_empty_active += 1
        self.total_sends += observation.num_senders
        self.total_listens += observation.num_listeners
        if self.collect_series:
            self.backlog_series.append(observation.active_after)
            self.cumulative_arrivals.append(self.num_arrivals)
            self.cumulative_successes.append(self.num_successes)
            self.cumulative_jammed_active.append(self.num_jammed_active)
            self.cumulative_active_slots.append(self.num_active_slots)

    # -- Convenience -----------------------------------------------------

    @property
    def backlog(self) -> int:
        """Backlog after the most recent slot (0 before any slot)."""
        if self.collect_series and self.backlog_series:
            return self.backlog_series[-1]
        return self.num_arrivals - self.num_successes

    @property
    def total_channel_accesses(self) -> int:
        return self.total_sends + self.total_listens
