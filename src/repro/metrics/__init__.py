"""Measurement: throughput, implicit throughput, energy, latency, backlog.

The definitions follow Section 1.1 of the paper exactly:

* a slot is **active** when at least one packet is in the system during it;
* **throughput** at slot ``t`` is ``(T_t + J_t) / S_t`` where ``T_t`` counts
  successes, ``J_t`` counts jammed (active) slots, and ``S_t`` counts active
  slots so far — without jamming this reduces to ``T_t / S_t``;
* **implicit throughput** at slot ``t`` is ``(N_t + J_t) / S_t`` where
  ``N_t`` counts packet arrivals so far;
* **energy** is the number of channel accesses (sends plus listens) a packet
  performs over its lifetime.
"""

from repro.metrics.collectors import MetricsCollector, SlotObservation
from repro.metrics.energy import EnergyStatistics, energy_statistics
from repro.metrics.latency import LatencyStatistics, latency_statistics
from repro.metrics.summary import RunSummary, aggregate_summaries
from repro.metrics.throughput import (
    ThroughputAccounting,
    implicit_throughput_series,
    overall_throughput,
    throughput_series,
)

__all__ = [
    "EnergyStatistics",
    "LatencyStatistics",
    "MetricsCollector",
    "RunSummary",
    "SlotObservation",
    "ThroughputAccounting",
    "aggregate_summaries",
    "energy_statistics",
    "implicit_throughput_series",
    "latency_statistics",
    "overall_throughput",
    "throughput_series",
]
