"""Energy: per-packet channel accesses.

Each slot in which a packet sends or listens costs one channel access; sends
and listens are also reported separately because the baselines differ in
kind (binary exponential backoff never listens; full-sensing MW listens in
every active slot).  The statistics here feed the energy experiments
(E4–E6, E8): per-packet maximum, mean, and high quantiles, restricted either
to all packets or to departed packets only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PacketEnergy:
    """Energy record for one packet."""

    packet_id: int
    sends: int
    listens: int
    departed: bool

    @property
    def accesses(self) -> int:
        return self.sends + self.listens


@dataclass(frozen=True)
class EnergyStatistics:
    """Distributional summary of per-packet channel accesses."""

    num_packets: int
    mean_accesses: float
    max_accesses: int
    p50_accesses: float
    p95_accesses: float
    p99_accesses: float
    mean_sends: float
    mean_listens: float
    total_accesses: int

    def as_dict(self) -> dict[str, float]:
        return {
            "num_packets": self.num_packets,
            "mean_accesses": self.mean_accesses,
            "max_accesses": self.max_accesses,
            "p50_accesses": self.p50_accesses,
            "p95_accesses": self.p95_accesses,
            "p99_accesses": self.p99_accesses,
            "mean_sends": self.mean_sends,
            "mean_listens": self.mean_listens,
            "total_accesses": self.total_accesses,
        }


def _quantile(sorted_values: Sequence[int], q: float) -> float:
    if not sorted_values:
        raise ValueError("cannot take a quantile of an empty sequence")
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return float(sorted_values[index])


def energy_statistics(
    packets: Sequence[PacketEnergy], departed_only: bool = False
) -> EnergyStatistics:
    """Summarise per-packet channel accesses.

    Parameters
    ----------
    packets:
        Per-packet energy records.
    departed_only:
        Restrict to packets that succeeded; useful when an execution was
        truncated at ``max_slots`` and stragglers would skew the statistics.
    """
    selected = [p for p in packets if p.departed] if departed_only else list(packets)
    if not selected:
        raise ValueError("no packets to summarise")
    accesses = sorted(p.accesses for p in selected)
    n = len(selected)
    return EnergyStatistics(
        num_packets=n,
        mean_accesses=sum(accesses) / n,
        max_accesses=int(accesses[-1]),
        p50_accesses=_quantile(accesses, 0.50),
        p95_accesses=_quantile(accesses, 0.95),
        p99_accesses=_quantile(accesses, 0.99),
        mean_sends=sum(p.sends for p in selected) / n,
        mean_listens=sum(p.listens for p in selected) / n,
        total_accesses=sum(accesses),
    )
