"""Latency: slots from a packet's arrival to its success.

Latency is not one of the paper's headline metrics, but makespan (the
latency of the slowest packet on a batch) is the classical quantity in the
batch-arrival literature and makes the E1 comparison tables more
interpretable; it also underpins the fairness discussion in the paper's
conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PacketLatency:
    """Latency record for one packet (``latency`` is ``None`` if undelivered)."""

    packet_id: int
    arrival_slot: int
    latency: int | None


@dataclass(frozen=True)
class LatencyStatistics:
    """Distributional summary of delivered-packet latencies."""

    num_delivered: int
    num_undelivered: int
    mean_latency: float
    max_latency: int
    p50_latency: float
    p95_latency: float
    p99_latency: float

    @property
    def makespan(self) -> int:
        """Latency of the slowest delivered packet."""
        return self.max_latency

    def as_dict(self) -> dict[str, float]:
        return {
            "num_delivered": self.num_delivered,
            "num_undelivered": self.num_undelivered,
            "mean_latency": self.mean_latency,
            "max_latency": self.max_latency,
            "p50_latency": self.p50_latency,
            "p95_latency": self.p95_latency,
            "p99_latency": self.p99_latency,
        }


def _quantile(sorted_values: Sequence[int], q: float) -> float:
    if not sorted_values:
        raise ValueError("cannot take a quantile of an empty sequence")
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return float(sorted_values[index])


def latency_statistics(packets: Sequence[PacketLatency]) -> LatencyStatistics:
    """Summarise latencies; undelivered packets are counted but excluded."""
    delivered = sorted(p.latency for p in packets if p.latency is not None)
    undelivered = sum(1 for p in packets if p.latency is None)
    if not delivered:
        raise ValueError("no delivered packets to summarise")
    n = len(delivered)
    return LatencyStatistics(
        num_delivered=n,
        num_undelivered=undelivered,
        mean_latency=sum(delivered) / n,
        max_latency=int(delivered[-1]),
        p50_latency=_quantile(delivered, 0.50),
        p95_latency=_quantile(delivered, 0.95),
        p99_latency=_quantile(delivered, 0.99),
    )
