"""Windowed simulation-dynamics trajectories.

A :class:`DynamicsTrajectory` is a compact per-window time series of one
execution: every ``window`` slots the engines snapshot the cumulative
counters and a few live gauges (backlog, contention, mean backoff window,
jammer budget), and the trajectory stores the per-window differences plus
the end-of-window gauge values as numpy arrays.  The final window may be
partial (the execution drained or hit ``max_slots`` mid-window); its width
is recorded in :attr:`DynamicsTrajectory.slots`.

Both engines produce trajectories through the same machinery:

* the scalar engine feeds a :class:`DynamicsAccumulator` at each window
  boundary (one pass over the active packets, no per-slot work);
* the vector engine samples its gauge buffers at the same global
  boundaries and materialises per-row snapshots after the lockstep loop.

Both paths end in :func:`build_trajectory`, so the arithmetic that turns
cumulative snapshots into per-window series is literally shared — when the
two engines agree on the snapshot integers and gauge floats (which they do
on shared coins), the trajectories are bit-identical.

Trajectories are **result-inert**: they never consume randomness, never
change any counter, and are excluded from run artifacts and store
fingerprints (see ``repro.store``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

#: Default sampling window (slots per sample) for ``--dynamics``.
DEFAULT_WINDOW = 1000

#: Integer per-window series (counts and cumulative counters).
COUNT_FIELDS = (
    "slots",
    "arrivals",
    "successes",
    "collisions",
    "jammed",
    "idle",
    "backlog",
    "cumulative_sends",
    "cumulative_listens",
)

#: Float per-window series (rates and end-of-window gauges; NaN = not
#: applicable for this protocol/adversary).
GAUGE_FIELDS = (
    "throughput",
    "contention",
    "mean_window",
    "mean_send_probability",
    "jammer_budget_remaining",
)

ARRAY_FIELDS = COUNT_FIELDS + GAUGE_FIELDS


@dataclass(frozen=True, slots=True)
class WindowSnapshot:
    """Cumulative state sampled at one window boundary (end of a slot).

    Counters are cumulative since slot 0; the gauges (``backlog``,
    ``window_sum``/``window_count``, ``probability_sum``) describe the live
    post-slot system state at the boundary.
    """

    num_slots: int
    arrivals: int
    successes: int
    collisions: int
    jammed: int
    sends: int
    listens: int
    backlog: int
    window_sum: float
    window_count: int
    probability_sum: float


@dataclass(eq=False)
class DynamicsTrajectory:
    """Per-window dynamics of one execution (arrays of equal length K)."""

    window: int
    num_slots: int
    slots: np.ndarray
    arrivals: np.ndarray
    successes: np.ndarray
    collisions: np.ndarray
    jammed: np.ndarray
    idle: np.ndarray
    backlog: np.ndarray
    throughput: np.ndarray
    cumulative_sends: np.ndarray
    cumulative_listens: np.ndarray
    contention: np.ndarray
    mean_window: np.ndarray
    mean_send_probability: np.ndarray
    jammer_budget_remaining: np.ndarray

    @property
    def num_windows(self) -> int:
        return int(self.slots.shape[0])

    def window_bounds(self) -> list[tuple[int, int]]:
        """Inclusive ``(first_slot, last_slot)`` of each window."""
        bounds = []
        start = 0
        for width in self.slots.tolist():
            bounds.append((start, start + width - 1))
            start += width
        return bounds

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicsTrajectory):
            return NotImplemented
        if self.window != other.window or self.num_slots != other.num_slots:
            return False
        return all(
            np.array_equal(
                getattr(self, name), getattr(other, name), equal_nan=True
            )
            for name in ARRAY_FIELDS
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (NaN encoded as ``None``)."""
        payload: dict[str, Any] = {
            "window": self.window,
            "num_slots": self.num_slots,
        }
        for name in COUNT_FIELDS:
            payload[name] = getattr(self, name).tolist()
        for name in GAUGE_FIELDS:
            payload[name] = [
                None if math.isnan(value) else value
                for value in getattr(self, name).tolist()
            ]
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DynamicsTrajectory":
        kwargs: dict[str, Any] = {
            "window": int(payload["window"]),
            "num_slots": int(payload["num_slots"]),
        }
        for name in COUNT_FIELDS:
            kwargs[name] = np.asarray(payload[name], dtype=np.int64)
        for name in GAUGE_FIELDS:
            kwargs[name] = np.asarray(
                [math.nan if value is None else value for value in payload[name]],
                dtype=np.float64,
            )
        return cls(**kwargs)


def build_trajectory(
    window: int,
    num_slots: int,
    snapshots: Sequence[WindowSnapshot],
    *,
    budget: float | None = None,
) -> DynamicsTrajectory:
    """Turn boundary snapshots into per-window series.

    This is the single code path both engines share: the per-window counts
    are consecutive snapshot differences, the gauges are the snapshot's
    end-of-window values, and every float operation happens here — so equal
    snapshots imply bit-identical trajectories.
    """
    k = len(snapshots)
    slots = np.zeros(k, dtype=np.int64)
    counts = {
        name: np.zeros(k, dtype=np.int64)
        for name in COUNT_FIELDS
        if name != "slots"
    }
    gauges = {name: np.full(k, math.nan) for name in GAUGE_FIELDS}
    prev_slots = prev_arrivals = prev_successes = 0
    prev_collisions = prev_jammed = 0
    for j, snap in enumerate(snapshots):
        width = snap.num_slots - prev_slots
        if width <= 0:
            raise ValueError("window snapshots must advance num_slots")
        slots[j] = width
        successes = snap.successes - prev_successes
        collisions = snap.collisions - prev_collisions
        jammed = snap.jammed - prev_jammed
        counts["arrivals"][j] = snap.arrivals - prev_arrivals
        counts["successes"][j] = successes
        counts["collisions"][j] = collisions
        counts["jammed"][j] = jammed
        counts["idle"][j] = width - successes - collisions - jammed
        counts["backlog"][j] = snap.backlog
        counts["cumulative_sends"][j] = snap.sends
        counts["cumulative_listens"][j] = snap.listens
        gauges["throughput"][j] = successes / width
        gauges["contention"][j] = snap.probability_sum
        if snap.window_count > 0:
            gauges["mean_window"][j] = snap.window_sum / snap.window_count
        if snap.backlog > 0:
            gauges["mean_send_probability"][j] = (
                snap.probability_sum / snap.backlog
            )
        if budget is not None:
            gauges["jammer_budget_remaining"][j] = budget - snap.jammed
        prev_slots = snap.num_slots
        prev_arrivals = snap.arrivals
        prev_successes = snap.successes
        prev_collisions = snap.collisions
        prev_jammed = snap.jammed
    if k and prev_slots != num_slots:
        raise ValueError(
            f"final snapshot covers {prev_slots} slots, execution ran "
            f"{num_slots}"
        )
    return DynamicsTrajectory(
        window=int(window), num_slots=int(num_slots), slots=slots,
        **counts, **gauges,
    )


class DynamicsAccumulator:
    """The scalar engine's windowed sampler: snapshots, no per-slot work.

    The engine calls :meth:`sample` at each window boundary (and once more
    from ``result()`` when the run stops mid-window); each call records the
    collector's cumulative counters plus the live gauges in O(backlog).
    """

    __slots__ = ("window", "budget", "_snapshots")

    def __init__(self, window: int, *, budget: float | None = None) -> None:
        if window <= 0:
            raise ValueError("dynamics window must be positive")
        self.window = int(window)
        self.budget = budget
        self._snapshots: list[WindowSnapshot] = []

    def sample(
        self,
        *,
        num_slots: int,
        arrivals: int,
        successes: int,
        collisions: int,
        jammed: int,
        sends: int,
        listens: int,
        backlog: int,
        window_sum: float,
        window_count: int,
        probability_sum: float,
    ) -> None:
        self._snapshots.append(
            WindowSnapshot(
                num_slots=num_slots,
                arrivals=arrivals,
                successes=successes,
                collisions=collisions,
                jammed=jammed,
                sends=sends,
                listens=listens,
                backlog=backlog,
                window_sum=window_sum,
                window_count=window_count,
                probability_sum=probability_sum,
            )
        )

    def pending(self, num_slots: int) -> bool:
        """True when slots beyond the last snapshot still need a sample."""
        last = self._snapshots[-1].num_slots if self._snapshots else 0
        return num_slots > last

    def build(self, num_slots: int) -> DynamicsTrajectory:
        return build_trajectory(
            self.window, num_slots, self._snapshots, budget=self.budget
        )


def jammer_budget(obj: Any) -> float | None:
    """The adversary's (or jammer's) static jamming budget, if it has one.

    Accepts a composite adversary (``.jammer.budget``) or a bare jammer
    (``.budget``); anything without a numeric budget — unlimited jammers,
    scheduled per-phase budgets, backlog-coupled adversaries — yields
    ``None`` and the budget gauge stays NaN.
    """
    jammer = getattr(obj, "jammer", obj)
    budget = getattr(jammer, "budget", None)
    if isinstance(budget, bool) or not isinstance(budget, (int, float)):
        return None
    return float(budget)


def windowed_series(result: Any, window: int) -> dict[str, np.ndarray] | None:
    """Per-window series derived from a stored result, for trajectory diffs.

    Prefers the result's attached :class:`DynamicsTrajectory` when its
    window matches; otherwise derives the derivable subset (throughput,
    backlog, arrivals, successes) from the collector's cumulative per-slot
    series.  Returns ``None`` when neither is available.
    """
    dynamics = getattr(result, "dynamics", None)
    if dynamics is not None and dynamics.window == window:
        return {
            "throughput": dynamics.throughput.astype(np.float64),
            "backlog": dynamics.backlog.astype(np.float64),
            "arrivals": dynamics.arrivals.astype(np.float64),
            "successes": dynamics.successes.astype(np.float64),
        }
    collector = result.collector
    if not getattr(collector, "collect_series", False):
        return None
    backlog_series = collector.backlog_series
    n = len(backlog_series)
    if n == 0:
        return None
    ends = list(range(window - 1, n, window))
    if not ends or ends[-1] != n - 1:
        ends.append(n - 1)
    cumulative_successes = collector.cumulative_successes
    cumulative_arrivals = collector.cumulative_arrivals
    widths = np.diff([0] + [end + 1 for end in ends]).astype(np.float64)
    successes = np.diff(
        [0] + [cumulative_successes[end] for end in ends]
    ).astype(np.float64)
    arrivals = np.diff(
        [0] + [cumulative_arrivals[end] for end in ends]
    ).astype(np.float64)
    backlog = np.asarray(
        [backlog_series[end] for end in ends], dtype=np.float64
    )
    return {
        "throughput": successes / widths,
        "backlog": backlog,
        "arrivals": arrivals,
        "successes": successes,
    }
