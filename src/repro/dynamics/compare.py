"""Trajectory-level regression comparison between replicate sets.

End-of-run aggregates can agree while the *path* regressed — e.g. a
protocol change that collapses throughput only after a jammer's budget
runs out, paid back by an unusually strong opening.  The trajectory diff
compares two replicate sets window by window: a Welch test per window per
metric, with Benjamini–Hochberg control across all the windows so hundreds
of tests do not drown the few that matter.  Windows with degenerate
samples (fewer than two replicates, or zero variance) fall back to a
relative-tolerance mean comparison, mirroring ``repro.analysis.compare``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.analysis.statistics import benjamini_hochberg, welch_t_test
from repro.dynamics.trajectory import windowed_series

#: Metrics compared by default — both derivable from any stored result
#: with per-slot series, so the diff works on campaigns recorded without
#: ``--dynamics``.
DEFAULT_DIFF_METRICS = ("throughput", "backlog")

#: Target number of windows when deriving a comparison window from the
#: runs themselves (shortest run / 16, floored at 1).
TARGET_WINDOWS = 16


@dataclass(frozen=True)
class WindowFlag:
    """One flagged per-window comparison."""

    metric: str
    window_index: int
    first_slot: int
    last_slot: int
    left_mean: float
    right_mean: float
    p_value: float | None  # None for tolerance-fallback flags

    def render(self) -> str:
        basis = (
            f"p={self.p_value:.3g}"
            if self.p_value is not None
            else "degenerate, tolerance"
        )
        return (
            f"{self.metric} window {self.window_index} "
            f"[slots {self.first_slot}-{self.last_slot}]: "
            f"{self.left_mean:.6g} vs {self.right_mean:.6g} ({basis})"
        )


@dataclass
class TrajectoryDiff:
    """The outcome of one trajectory-level comparison."""

    window: int
    num_windows: int
    metrics: tuple[str, ...]
    alpha: float
    relative_tolerance: float
    tested: int
    left_replicates: int
    right_replicates: int
    flagged: list[WindowFlag] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.flagged

    def render(self) -> str:
        status = "PASS" if self.passed else "REGRESSION"
        lines = [
            f"trajectories ({self.left_replicates} vs "
            f"{self.right_replicates} replicates, window={self.window}, "
            f"{self.num_windows} windows, {self.tested} comparisons, "
            f"FDR alpha={self.alpha}): {status}"
        ]
        for note in self.notes:
            lines.append(f"  note: {note}")
        for flag in self.flagged:
            lines.append(f"  FLAG {flag.render()}")
        return "\n".join(lines)


def derive_window(results: Sequence[Any]) -> int:
    """A comparison window sized so the shortest run spans ~16 windows."""
    slot_counts = [result.num_slots for result in results if result.num_slots]
    if not slot_counts:
        return 1
    return max(1, min(slot_counts) // TARGET_WINDOWS)


def compare_trajectory_sets(
    left: Sequence[Any],
    right: Sequence[Any],
    *,
    window: int | None = None,
    metrics: Sequence[str] = DEFAULT_DIFF_METRICS,
    alpha: float = 0.01,
    relative_tolerance: float = 0.15,
) -> TrajectoryDiff:
    """Compare two sets of replicate results window by window.

    ``left``/``right`` are :class:`~repro.sim.results.SimulationResult`
    replicates of the same configuration (modulo the change under test).
    """
    if not left or not right:
        raise ValueError("both sides need at least one replicate result")
    if window is None:
        window = derive_window(list(left) + list(right))
    if window < 1:
        raise ValueError("window must be positive")
    left_series = [windowed_series(result, window) for result in left]
    right_series = [windowed_series(result, window) for result in right]
    left_series = [series for series in left_series if series is not None]
    right_series = [series for series in right_series if series is not None]
    diff = TrajectoryDiff(
        window=window,
        num_windows=0,
        metrics=tuple(metrics),
        alpha=alpha,
        relative_tolerance=relative_tolerance,
        tested=0,
        left_replicates=len(left_series),
        right_replicates=len(right_series),
    )
    if not left_series or not right_series:
        diff.notes.append(
            "no windowed series available (results stored without per-slot "
            "series); trajectory comparison skipped"
        )
        return diff
    num_windows = min(
        min(series[metrics[0]].shape[0] for series in left_series),
        min(series[metrics[0]].shape[0] for series in right_series),
    )
    diff.num_windows = num_windows
    if num_windows == 0:
        return diff

    tests: list[tuple[str, int, float, float, float]] = []
    for metric in metrics:
        left_matrix = np.stack(
            [series[metric][:num_windows] for series in left_series]
        )
        right_matrix = np.stack(
            [series[metric][:num_windows] for series in right_series]
        )
        for j in range(num_windows):
            left_sample = left_matrix[:, j].tolist()
            right_sample = right_matrix[:, j].tolist()
            left_mean = float(np.mean(left_sample))
            right_mean = float(np.mean(right_sample))
            try:
                _, _, p_value = welch_t_test(left_sample, right_sample)
            except ValueError:
                # Degenerate window: too few replicates or zero variance.
                # Equal means pass; a relative gap beyond tolerance flags.
                scale = max(abs(left_mean), abs(right_mean))
                if scale > 0.0 and (
                    abs(left_mean - right_mean) > relative_tolerance * scale
                ):
                    diff.flagged.append(
                        _flag(metric, j, window, left_mean, right_mean, None)
                    )
                continue
            tests.append((metric, j, left_mean, right_mean, p_value))
    diff.tested = len(tests)
    rejected = benjamini_hochberg([test[4] for test in tests], alpha)
    for (metric, j, left_mean, right_mean, p_value), reject in zip(
        tests, rejected
    ):
        if reject:
            diff.flagged.append(
                _flag(metric, j, window, left_mean, right_mean, p_value)
            )
    diff.flagged.sort(key=lambda flag: (flag.metric, flag.window_index))
    return diff


def _flag(
    metric: str,
    window_index: int,
    window: int,
    left_mean: float,
    right_mean: float,
    p_value: float | None,
) -> WindowFlag:
    return WindowFlag(
        metric=metric,
        window_index=window_index,
        first_slot=window_index * window,
        last_slot=(window_index + 1) * window - 1,
        left_mean=left_mean,
        right_mean=right_mean,
        p_value=p_value,
    )
