"""ASCII rendering and JSON/CSV export of dynamics trajectories."""

from __future__ import annotations

import io
import json
import math

import numpy as np

from repro.dynamics.trajectory import (
    ARRAY_FIELDS,
    COUNT_FIELDS,
    DynamicsTrajectory,
)

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"

#: Series shown in the sparkline table, in display order.  ``slots`` and
#: the cumulative counters stay export-only (their sparklines are flat
#: ramps that convey nothing).
_DISPLAY_FIELDS = (
    "throughput",
    "backlog",
    "arrivals",
    "successes",
    "collisions",
    "jammed",
    "idle",
    "contention",
    "mean_window",
    "mean_send_probability",
    "jammer_budget_remaining",
    "cumulative_sends",
    "cumulative_listens",
)


def sparkline(values: np.ndarray, width: int = 60) -> str:
    """One-line block-character sketch of a series (NaN renders as ``·``)."""
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        return ""
    if data.size > width:
        # Downsample by taking window means so the line stays one screen.
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array(
            [
                np.nanmean(data[a:b]) if b > a and not np.all(np.isnan(data[a:b]))
                else math.nan
                for a, b in zip(edges[:-1], edges[1:])
            ]
        )
    finite = data[np.isfinite(data)]
    if finite.size == 0:
        return "·" * data.size
    low = float(finite.min())
    high = float(finite.max())
    span = high - low
    chars = []
    for value in data.tolist():
        if not math.isfinite(value):
            chars.append("·")
            continue
        if span == 0.0:
            level = 0
        else:
            level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def _stat(value: float) -> str:
    if not math.isfinite(value):
        return "nan"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_trajectory(
    trajectory: DynamicsTrajectory, *, label: str | None = None
) -> str:
    """Per-metric sparkline table with first/min/mean/max/last columns."""
    lines = []
    header = (
        f"window={trajectory.window} slots={trajectory.num_slots} "
        f"windows={trajectory.num_windows}"
    )
    if label:
        header = f"{label}: {header}"
    lines.append(header)
    name_width = max(len(name) for name in _DISPLAY_FIELDS)
    for name in _DISPLAY_FIELDS:
        values = np.asarray(getattr(trajectory, name), dtype=np.float64)
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            stats = "(n/a)"
        else:
            stats = (
                f"min={_stat(float(finite.min()))} "
                f"mean={_stat(float(finite.mean()))} "
                f"max={_stat(float(finite.max()))} "
                f"last={_stat(float(values[-1]))}"
            )
        lines.append(f"  {name:<{name_width}}  {sparkline(values)}  {stats}")
    return "\n".join(lines)


def trajectory_to_json(trajectory: DynamicsTrajectory) -> str:
    return json.dumps(trajectory.to_dict(), indent=2)


def trajectory_to_csv(trajectory: DynamicsTrajectory) -> str:
    """One row per window; NaN gauges export as empty cells."""
    buffer = io.StringIO()
    columns = ("window_index", "first_slot", "last_slot") + ARRAY_FIELDS
    buffer.write(",".join(columns) + "\n")
    bounds = trajectory.window_bounds()
    for j in range(trajectory.num_windows):
        first_slot, last_slot = bounds[j]
        cells = [str(j), str(first_slot), str(last_slot)]
        for name in ARRAY_FIELDS:
            value = getattr(trajectory, name)[j]
            if name in COUNT_FIELDS:
                cells.append(str(int(value)))
            elif math.isnan(float(value)):
                cells.append("")
            else:
                cells.append(repr(float(value)))
        buffer.write(",".join(cells) + "\n")
    return buffer.getvalue()
