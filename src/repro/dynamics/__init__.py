"""Windowed simulation-dynamics streams (`python -m repro dynamics ...`).

The paper's claims are about *trajectories* — window growth under jamming,
backlog draining after a budget runs out — not just end-of-run aggregates.
This package samples simulation state every W slots into compact numpy
series on both engines, attaches them to results, persists them as
fingerprint-inert artifacts in the results store, and diffs them between
campaigns with per-window Welch tests under Benjamini–Hochberg control.
"""

from repro.dynamics.compare import (
    DEFAULT_DIFF_METRICS,
    TrajectoryDiff,
    WindowFlag,
    compare_trajectory_sets,
    derive_window,
)
from repro.dynamics.render import (
    render_trajectory,
    sparkline,
    trajectory_to_csv,
    trajectory_to_json,
)
from repro.dynamics.trajectory import (
    ARRAY_FIELDS,
    COUNT_FIELDS,
    DEFAULT_WINDOW,
    GAUGE_FIELDS,
    DynamicsAccumulator,
    DynamicsTrajectory,
    WindowSnapshot,
    build_trajectory,
    jammer_budget,
    windowed_series,
)

__all__ = [
    "ARRAY_FIELDS",
    "COUNT_FIELDS",
    "DEFAULT_DIFF_METRICS",
    "DEFAULT_WINDOW",
    "GAUGE_FIELDS",
    "DynamicsAccumulator",
    "DynamicsTrajectory",
    "TrajectoryDiff",
    "WindowFlag",
    "WindowSnapshot",
    "build_trajectory",
    "compare_trajectory_sets",
    "derive_window",
    "jammer_budget",
    "render_trajectory",
    "sparkline",
    "trajectory_to_csv",
    "trajectory_to_json",
    "windowed_series",
]
