"""Execution backends: serial and process-pool job runners.

A *job* is any object exposing ``build_config() -> SimulationConfig``.  The
two concrete job types are :class:`ConfigJob` (wraps an already-built
configuration; used by the thin ``replicate``/``SweepRunner`` wrappers) and
:class:`~repro.experiments.plan.RunSpec` (fully declarative and picklable;
used by the sweep layer and required for process pools and caching).

Every backend honours the same contract:

* results are returned in job order, regardless of completion order;
* each job builds its configuration (and therefore its adversary) freshly,
  so no mutable state leaks between replicates;
* the results are identical to what :class:`SerialBackend` produces for the
  same jobs — parallelism must never change the science.
"""

from __future__ import annotations

import abc
import os
import pickle
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Protocol, Sequence

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.results import SimulationResult


class RunJob(Protocol):
    """Anything that can build a simulation configuration on demand."""

    def build_config(self) -> SimulationConfig: ...


@dataclass(frozen=True)
class ConfigJob:
    """A job wrapping an already-built configuration.

    The configuration's adversary is constructed by the caller, so a
    ``ConfigJob`` must be run exactly once — its adversary carries mutable
    state.  Declarative callers should prefer
    :class:`~repro.experiments.plan.RunSpec`, which builds a fresh adversary
    per execution and has a stable cache key.
    """

    config: SimulationConfig

    def build_config(self) -> SimulationConfig:
        return self.config


def execute_job(job: RunJob) -> SimulationResult:
    """Run one job to completion.

    Module-level (rather than a backend method) so process pools can pickle
    it by reference and ship only the job to the worker.
    """
    return Simulator(job.build_config()).run()


class ExecutionBackend(abc.ABC):
    """Runs a batch of independent simulation jobs."""

    #: Short machine-readable backend name (used by the CLI and reports).
    name: str = "abstract"

    @abc.abstractmethod
    def run(self, jobs: Sequence[RunJob]) -> list[SimulationResult]:
        """Execute every job and return their results in job order."""

    def result_layout(self, job: RunJob) -> str | None:
        """Identity namespace of the result this backend produces for ``job``.

        ``"scalar"`` is the reference layout: serial and process-pool
        executions are bit-identical, so their results are interchangeable
        under one cache key.  A backend whose result for a job is *not* a
        deterministic function of the job alone (e.g. the vector backend,
        whose coin layout depends on the batch it groups the job into)
        returns ``None``, which tells the result cache the job has no
        stable identity and must never be cached or served from cache.
        """
        return "scalar"

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly snapshot of the backend configuration."""
        return {"backend": self.name}

    def close(self) -> None:
        """Release any resources the backend holds (no-op by default)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """One job at a time, in-process.  The reference backend."""

    name = "serial"

    def run(self, jobs: Sequence[RunJob]) -> list[SimulationResult]:
        return [execute_job(job) for job in jobs]


class ProcessPoolBackend(ExecutionBackend):
    """Runs jobs across a multiprocessing pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunksize:
        Jobs handed to a worker per task.  The default of 1 gives the best
        load balance, which matters because replicate runtimes vary widely
        (a drained batch run ends early, a jammed one does not).
    start_method:
        ``multiprocessing`` start method (``None`` uses the platform
        default).  All methods require jobs and results to be picklable.
    """

    name = "processes"

    def __init__(
        self,
        workers: int | None = None,
        chunksize: int = 1,
        start_method: str | None = None,
    ) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        if chunksize <= 0:
            raise ValueError("chunksize must be positive")
        self.workers = workers or os.cpu_count() or 1
        self.chunksize = chunksize
        self.start_method = start_method

    def run(self, jobs: Sequence[RunJob]) -> list[SimulationResult]:
        jobs = list(jobs)
        if not jobs:
            return []
        # Always execute through the pool (even for one job or one worker),
        # so result metadata reporting this backend is never describing a
        # silent serial fallback.
        self._check_picklable(jobs)
        context = get_context(self.start_method)
        with context.Pool(processes=min(self.workers, len(jobs))) as pool:
            # Pool.map preserves input order, which is what makes the
            # backend deterministic regardless of completion order.
            return pool.map(execute_job, jobs, chunksize=self.chunksize)

    @staticmethod
    def _check_picklable(jobs: Sequence[RunJob]) -> None:
        try:
            pickle.dumps(list(jobs))
        except Exception as exc:
            raise TypeError(
                "ProcessPoolBackend requires picklable jobs; closures and "
                "lambdas cannot cross process boundaries — express the sweep "
                "declaratively with repro.experiments.plan.RunSpec/factory, "
                "or use SerialBackend"
            ) from exc

    def describe(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "workers": self.workers,
            "chunksize": self.chunksize,
            "start_method": self.start_method,
        }
