"""Execution backends: serial and process-pool job runners.

A *job* is any object exposing ``build_config() -> SimulationConfig``.  The
two concrete job types are :class:`ConfigJob` (wraps an already-built
configuration; used by the thin ``replicate``/``SweepRunner`` wrappers) and
:class:`~repro.experiments.plan.RunSpec` (fully declarative and picklable;
used by the sweep layer and required for process pools and caching).

Every backend honours the same contract:

* results are returned in job order, regardless of completion order;
* each job builds its configuration (and therefore its adversary) freshly,
  so no mutable state leaks between replicates;
* the results are identical to what :class:`SerialBackend` produces for the
  same jobs — parallelism must never change the science.

Telemetry (:mod:`repro.telemetry`) rides along without touching that
contract: backends emit build/simulate phase spans and post-run counters
when a session is active, and cost one no-op ``current()`` lookup when it
is not.  Pool workers run with telemetry disabled (a session is
process-local); the parent reconstructs per-job spans from the monotonic
timestamps workers return, which on Linux are comparable across processes
(``CLOCK_MONOTONIC`` is system-wide), giving queue-wait vs run time and
worker-pid attribution for free.
"""

from __future__ import annotations

import abc
import os
import pickle
import time
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Protocol, Sequence

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.results import SimulationResult
from repro.telemetry import current as current_telemetry


class RunJob(Protocol):
    """Anything that can build a simulation configuration on demand."""

    def build_config(self) -> SimulationConfig: ...


@dataclass(frozen=True)
class ConfigJob:
    """A job wrapping an already-built configuration.

    The configuration's adversary is constructed by the caller, so a
    ``ConfigJob`` must be run exactly once — its adversary carries mutable
    state.  Declarative callers should prefer
    :class:`~repro.experiments.plan.RunSpec`, which builds a fresh adversary
    per execution and has a stable cache key.
    """

    config: SimulationConfig

    def build_config(self) -> SimulationConfig:
        return self.config


def job_identity(job: RunJob) -> str:
    """A human-nameable identity for one job in a batch.

    Used by worker error wrapping and telemetry attribution, so a failing
    or slow spec inside a 200-job sweep can be pointed at directly.
    Prefers the spec's stable content hash (when it has one) plus the
    protocol class and seed; degrades to the job type for opaque jobs.
    """
    parts: list[str] = []
    protocol = getattr(job, "protocol", None)
    if protocol is not None:
        parts.append(type(protocol).__name__)
    key_method = getattr(job, "cache_key", None)
    if callable(key_method):
        try:
            key = key_method()
        except Exception:
            key = None
        if key:
            parts.append(f"spec={key[:12]}")
    seed = getattr(job, "seed", None)
    if seed is not None:
        parts.append(f"seed={seed}")
    if not parts:
        parts.append(type(job).__name__)
    return " ".join(parts)


class WorkerJobError(RuntimeError):
    """A job failed inside a pool worker, re-raised with its identity.

    ``multiprocessing`` pickles worker exceptions back to the parent but
    drops any notion of *which* job raised — this wrapper carries the job
    index and spec identity across the process boundary.  The original
    traceback stays in the worker; its type and message are embedded here
    (and in ``cause_type``/``cause_message``) because chained exceptions
    (``__cause__``) do not survive pickling.
    """

    def __init__(
        self, job_index: int, job_identity: str, cause_type: str, cause_message: str
    ) -> None:
        super().__init__(
            f"job {job_index} ({job_identity}) failed in pool worker: "
            f"{cause_type}: {cause_message}"
        )
        self.job_index = job_index
        self.job_identity = job_identity
        self.cause_type = cause_type
        self.cause_message = cause_message

    def __reduce__(self):
        # Default Exception reduction re-calls __init__ with self.args (the
        # formatted message), which has the wrong arity — rebuild from the
        # structured fields instead so the error pickles across the pool.
        return (
            WorkerJobError,
            (self.job_index, self.job_identity, self.cause_type, self.cause_message),
        )


def _scalar_run_counters(tele: Any, result: SimulationResult, backend: str) -> None:
    """Hot-loop totals for one scalar execution, read *after* the run.

    Everything here is derived from the finished result — the simulator's
    per-slot loop is untouched, which is what keeps the disabled (and even
    the enabled) overhead off the hot path.
    """
    tele.counter("slots_simulated", result.num_slots, backend=backend)
    tele.counter("packets_processed", len(result.packets), backend=backend)
    if result.trace is not None:
        tele.counter("trace_materialisations", 1, backend=backend)
    if result.potential is not None:
        tele.counter("potential_materialisations", 1, backend=backend)


def execute_job(job: RunJob) -> SimulationResult:
    """Run one job to completion.

    Module-level (rather than a backend method) so process pools can pickle
    it by reference and ship only the job to the worker.  When a telemetry
    session is active in this process, the build and simulate phases are
    timed as spans; the disabled path adds one no-op lookup.
    """
    tele = current_telemetry()
    if not tele.enabled:
        return Simulator(job.build_config()).run()
    with tele.span("build", kind="phase", backend="serial"):
        config = job.build_config()
    with tele.span("simulate", kind="phase", backend="serial"):
        result = Simulator(config).run()
    _scalar_run_counters(tele, result, "serial")
    return result


def _execute_pool_job(
    indexed_job: tuple[int, RunJob],
) -> tuple[SimulationResult, int, float, float, dict[str, Any]]:
    """Worker-side job execution: timed, attributed, and error-wrapped.

    Returns ``(result, worker_pid, started, ended, resources)`` with
    monotonic timestamps, so the parent can reconstruct queue-wait vs run
    time.  ``resources`` is a job-boundary snapshot of the worker's
    RSS/CPU/fds (telemetry sessions are process-local, so workers hand
    the sample back for the parent to emit; reading ``/proc`` twice per
    job costs microseconds against millisecond-scale jobs).  Failures
    re-raise as :class:`WorkerJobError` carrying the job index and spec
    identity (a bare worker exception is unattributable in a large
    sweep).
    """
    from repro.observe.resources import sample_process

    index, job = indexed_job
    started = time.monotonic()
    try:
        config = job.build_config()
        result = Simulator(config).run()
    except Exception as exc:
        raise WorkerJobError(
            index, job_identity(job), type(exc).__name__, str(exc)
        ) from exc
    return result, os.getpid(), started, time.monotonic(), sample_process()


class ExecutionBackend(abc.ABC):
    """Runs a batch of independent simulation jobs."""

    #: Short machine-readable backend name (used by the CLI and reports).
    name: str = "abstract"

    @abc.abstractmethod
    def run(self, jobs: Sequence[RunJob]) -> list[SimulationResult]:
        """Execute every job and return their results in job order."""

    def result_layout(self, job: RunJob) -> str | None:
        """Identity namespace of the result this backend produces for ``job``.

        ``"scalar"`` is the reference layout: serial and process-pool
        executions are bit-identical, so their results are interchangeable
        under one cache key.  A backend whose result for a job is *not* a
        deterministic function of the job alone (e.g. the vector backend,
        whose coin layout depends on the batch it groups the job into)
        returns ``None``, which tells the result cache the job has no
        stable identity and must never be cached or served from cache.
        """
        return "scalar"

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly snapshot of the backend configuration."""
        return {"backend": self.name}

    def close(self) -> None:
        """Release any resources the backend holds (no-op by default)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class DynamicsBackend(ExecutionBackend):
    """Decorator backend that switches on windowed dynamics sampling.

    Rewrites every job it is handed to carry ``dynamics_window`` before
    delegating to the wrapped backend.  This is how ``--dynamics`` reaches
    sweeps whose plans are built elsewhere (the paper experiments build
    their own plans internally); because ``dynamics_window`` is excluded
    from spec cache keys and stripped from stored artifacts, the rewrite
    is invisible to caching and result identity.
    """

    def __init__(self, inner: ExecutionBackend, window: int) -> None:
        if window <= 0:
            raise ValueError("dynamics window must be positive")
        self._inner = inner
        self.window = window
        self.name = inner.name

    def _with_dynamics(self, job: RunJob) -> RunJob:
        import dataclasses

        if getattr(job, "dynamics_window", None) == self.window:
            return job
        if dataclasses.is_dataclass(job) and any(
            field.name == "dynamics_window" for field in dataclasses.fields(job)
        ):
            return dataclasses.replace(job, dynamics_window=self.window)
        config = getattr(job, "config", None)
        if isinstance(config, SimulationConfig):
            return ConfigJob(dataclasses.replace(config, dynamics_window=self.window))
        return job

    def run(self, jobs: Sequence[RunJob]) -> list[SimulationResult]:
        return self._inner.run([self._with_dynamics(job) for job in jobs])

    def result_layout(self, job: RunJob) -> str | None:
        return self._inner.result_layout(self._with_dynamics(job))

    def describe(self) -> dict[str, Any]:
        description = self._inner.describe()
        description["dynamics_window"] = self.window
        return description

    def close(self) -> None:
        self._inner.close()


class SerialBackend(ExecutionBackend):
    """One job at a time, in-process.  The reference backend."""

    name = "serial"

    def run(self, jobs: Sequence[RunJob]) -> list[SimulationResult]:
        tele = current_telemetry()
        if not tele.enabled:
            return [execute_job(job) for job in jobs]
        results: list[SimulationResult] = []
        total = len(jobs)
        for index, job in enumerate(jobs):
            results.append(execute_job(job))
            tele.progress("serial jobs", index + 1, total, backend=self.name)
        return results


class ProcessPoolBackend(ExecutionBackend):
    """Runs jobs across a multiprocessing pool.

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.
    chunksize:
        Jobs handed to a worker per task.  The default of 1 gives the best
        load balance, which matters because replicate runtimes vary widely
        (a drained batch run ends early, a jammed one does not).
    start_method:
        ``multiprocessing`` start method (``None`` uses the platform
        default).  All methods require jobs and results to be picklable.
    """

    name = "processes"

    def __init__(
        self,
        workers: int | None = None,
        chunksize: int = 1,
        start_method: str | None = None,
    ) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        if chunksize <= 0:
            raise ValueError("chunksize must be positive")
        self.workers = workers or os.cpu_count() or 1
        self.chunksize = chunksize
        self.start_method = start_method

    def run(self, jobs: Sequence[RunJob]) -> list[SimulationResult]:
        jobs = list(jobs)
        if not jobs:
            return []
        # Always execute through the pool (even for one job or one worker),
        # so result metadata reporting this backend is never describing a
        # silent serial fallback.
        self._check_picklable(jobs)
        tele = current_telemetry()
        context = get_context(self.start_method)
        submitted = time.monotonic()
        with context.Pool(processes=min(self.workers, len(jobs))) as pool:
            # Pool.map preserves input order, which is what makes the
            # backend deterministic regardless of completion order.
            outcomes = pool.map(
                _execute_pool_job, list(enumerate(jobs)), chunksize=self.chunksize
            )
        results: list[SimulationResult] = []
        worker_resources: dict[int, dict[str, Any]] = {}
        for index, (result, worker_pid, started, ended, resources) in enumerate(
            outcomes
        ):
            results.append(result)
            if resources:
                # Last job-boundary snapshot per pid wins: latest is the
                # high-water mark for monotonic quantities (CPU time) and
                # a late reading for RSS/fds.
                worker_resources[worker_pid] = resources
            if tele.enabled:
                # Workers time themselves on CLOCK_MONOTONIC, which is
                # system-wide on Linux, so queue-wait (submit → worker
                # start) and run time are directly comparable.
                tele.span_record(
                    "simulate",
                    ended - started,
                    kind="phase",
                    backend=self.name,
                    job=index,
                    worker_pid=worker_pid,
                    queue_wait=round(max(0.0, started - submitted), 6),
                )
        if tele.enabled:
            for worker_pid in sorted(worker_resources):
                tele.event(
                    "resource_sample",
                    pid=worker_pid,
                    source="worker",
                    **worker_resources[worker_pid],
                )
        if tele.enabled:
            for result in results:
                _scalar_run_counters(tele, result, self.name)
            tele.progress("pool jobs", len(jobs), len(jobs), backend=self.name)
        return results

    @staticmethod
    def _check_picklable(jobs: Sequence[RunJob]) -> None:
        try:
            pickle.dumps(list(jobs))
        except Exception as exc:
            raise TypeError(
                "ProcessPoolBackend requires picklable jobs; closures and "
                "lambdas cannot cross process boundaries — express the sweep "
                "declaratively with repro.experiments.plan.RunSpec/factory, "
                "or use SerialBackend"
            ) from exc

    def describe(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "workers": self.workers,
            "chunksize": self.chunksize,
            "start_method": self.start_method,
        }
