"""Pluggable execution backends for running batches of simulations.

The experiment layer describes *what* to run (a sequence of jobs, each of
which can build a :class:`~repro.sim.config.SimulationConfig`); this package
decides *how* to run it:

* :class:`~repro.exec.backends.SerialBackend` — in-process, one job at a
  time (the reference implementation every other backend must match
  bit-for-bit);
* :class:`~repro.exec.backends.ProcessPoolBackend` — a multiprocessing pool
  over jobs with deterministic result ordering, for multi-core sweeps;
* :class:`~repro.exec.cache.ResultCacheBackend` — a wrapper that memoises
  results on disk, keyed by a stable hash of the job specification;
* :class:`~repro.exec.vector_backend.VectorBackend` — batches qualifying
  spec groups through the lockstep numpy engine
  (:mod:`repro.sim.vector`) and falls back serially for the rest.
  Vectorized results are statistically equivalent to serial results, not
  bit-identical (different random-stream layout).

Replicates of an experiment sweep are independent executions (separate
seeds, separate adversaries), so they are embarrassingly parallel; backends
exploit exactly that and nothing else, which is why every backend is
required to return results in job order and to produce results identical to
the serial backend.
"""

from repro.exec.backends import (
    ConfigJob,
    DynamicsBackend,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    execute_job,
)
from repro.exec.cache import ResultCacheBackend
from repro.exec.vector_backend import VectorBackend

BACKEND_NAMES = ("serial", "processes", "vector")


def make_backend(
    name: str = "serial",
    *,
    workers: int | None = None,
    cache_dir: str | None = None,
    dynamics_window: int | None = None,
) -> ExecutionBackend:
    """Build a backend from CLI-style options.

    ``name`` selects the execution strategy; ``cache_dir``, when given,
    wraps the chosen backend in a :class:`ResultCacheBackend`;
    ``dynamics_window`` wraps the result in a :class:`DynamicsBackend`
    so every job records a windowed dynamics trajectory.
    """
    if name == "serial":
        backend: ExecutionBackend = SerialBackend()
    elif name == "processes":
        backend = ProcessPoolBackend(workers=workers)
    elif name == "vector":
        backend = VectorBackend()
    else:
        raise ValueError(f"unknown backend {name!r}; expected one of {BACKEND_NAMES}")
    if cache_dir is not None:
        backend = ResultCacheBackend(cache_dir, inner=backend)
    if dynamics_window is not None:
        backend = DynamicsBackend(backend, dynamics_window)
    return backend


__all__ = [
    "BACKEND_NAMES",
    "ConfigJob",
    "DynamicsBackend",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "ResultCacheBackend",
    "SerialBackend",
    "VectorBackend",
    "execute_job",
    "make_backend",
]
