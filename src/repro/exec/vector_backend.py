"""The vector execution backend.

:class:`VectorBackend` accepts an arbitrary batch of jobs, groups the specs
that can vectorize by everything-but-the-seed, **stacks compatible groups
into mega-batches** (one ragged lockstep launch per protocol/arrival/jammer
kernel family, parameters promoted to per-row arrays), runs each mega-batch
through one :class:`~repro.sim.vector.VectorSimulator` call, and
transparently delegates every remaining job to a fallback backend (serial
by default).  Results always come back in job order, so the backend is a
drop-in replacement anywhere a backend is accepted.

Contract differences from the other backends:

* fallback results are *identical* to what the fallback backend produces on
  its own (it is literally the same code path);
* vectorized results are **statistically equivalent** to serial results,
  not bit-identical — the vector engine draws per-replication Philox
  streams instead of per-packet ``random.Random`` streams.  Repeated
  ``VectorBackend`` runs of the same batch are bit-identical, and
  mega-batched execution is bit-identical to per-group vector execution
  (each group keeps its own coin geometry inside the stacked batch), so
  mega-batching changes wall-clock only — never results, and never the
  ``batch_signature`` storage identities the campaign store files
  vectorized results under.  See ``repro.analysis.equivalence`` for the
  checking harness.

Only jobs that declare their vectorizability (``vector_support()``, i.e.
:class:`~repro.experiments.plan.RunSpec`) are eligible; opaque jobs such as
:class:`~repro.exec.backends.ConfigJob` always take the fallback path.
"""

from __future__ import annotations

import functools
from typing import Any, Sequence

from repro.exec.backends import ExecutionBackend, RunJob, SerialBackend
from repro.sim.results import SimulationResult
from repro.telemetry import current as current_telemetry


@functools.lru_cache(maxsize=4096)
def _cached_group_key(job: Any) -> Any | None:
    """Hashable everything-but-the-seed identity, or ``None`` to fall back.

    ``vector_support`` builds the spec's adversary to introspect it, and
    both the result cache (via ``result_layout``) and the backend's own
    grouping probe every job — memoising by the (frozen, hashable) spec
    avoids rebuilding the same adversary several times per job per run.
    """
    if job.vector_support() is not None:
        return None
    return (
        job.protocol,
        job.adversary,
        job.max_slots,
        job.stop_when_drained,
        job.collect_trace,
        job.collect_potential,
        getattr(job, "dynamics_window", 0),
    )


def _qualname(instance: Any) -> str:
    cls = type(instance)
    return f"{cls.__module__}.{cls.__qualname__}"


@functools.lru_cache(maxsize=4096)
def _cached_mega_key(job: Any) -> Any | None:
    """The kernel-family identity that decides mega-batch compatibility.

    Two vector groups stack into one lockstep mega-batch exactly when they
    share the protocol class, the arrival-process class, the jammer class,
    and the engine options — parameters may differ (they are promoted to
    per-row arrays by the kernels).  Scheduled components only merge when
    the whole schedule is identical, so their canonical identity (the
    same ``scheduled_identity`` the engine's ``from_spec_groups``
    validation compares) joins the key.  ``None`` when the job cannot
    vectorize at all, or when it vectorizes but carries a named mega-batch
    exclusion (``mega_batch_exclusion``) — trace/potential outputs and
    backlog-coupled adversaries run in their own lockstep batch.
    """
    from repro.sim.vector.support import mega_batch_exclusion, scheduled_identity

    if job.vector_support() is not None:
        return None
    if mega_batch_exclusion(job) is not None:
        return None
    config = job.build_config()
    adversary = config.adversary
    components = tuple(
        (_qualname(component), scheduled_identity(component))
        for component in (adversary.arrival_process, adversary.jammer)
    )
    return (
        _qualname(job.protocol),
        components,
        job.max_slots,
        job.stop_when_drained,
        getattr(job, "dynamics_window", 0),
    )


def vector_group_key(job: RunJob) -> Any | None:
    """Public everything-but-the-seed grouping identity of one job.

    ``None`` means the job takes the serial fallback.  This is the key the
    backend groups by, exposed so the planning layer
    (:meth:`~repro.experiments.plan.SweepPlan.vector_summary`) can count
    lockstep groups without running anything.
    """
    if not callable(getattr(job, "vector_support", None)):
        return None
    try:
        # The lru_cache hashes the job, which also guarantees the derived
        # key tuple is hashable.
        return _cached_group_key(job)
    except (AttributeError, TypeError):
        return None


def vector_mega_key(job: RunJob) -> Any | None:
    """Public mega-batch compatibility identity of one job (or ``None``)."""
    try:
        return _cached_mega_key(job)
    except (AttributeError, TypeError):
        return None


class VectorBackend(ExecutionBackend):
    """Vectorizes qualifying spec groups; falls back serially otherwise.

    Parameters
    ----------
    fallback:
        Backend used for jobs the vector engine cannot run (defaults to
        :class:`SerialBackend`).
    mega_batch:
        When True (the default), compatible replication groups are stacked
        into one lockstep launch per kernel family; per-group execution
        (``mega_batch=False``) produces bit-identical results with one
        kernel launch per group — the benchmark baseline.

    The counters ``vectorized_jobs``, ``fallback_jobs``, ``vector_groups``,
    and ``mega_batches`` accumulate across :meth:`run` calls (like the
    result cache's hit/miss counters) and are included in :meth:`describe`,
    so run reports show how much of a sweep actually vectorized and how
    many kernel launches it cost.
    """

    name = "vector"

    def __init__(
        self,
        fallback: ExecutionBackend | None = None,
        *,
        mega_batch: bool = True,
    ) -> None:
        self.fallback = fallback or SerialBackend()
        self.mega_batch = mega_batch
        self.vectorized_jobs = 0
        self.fallback_jobs = 0
        self.vector_groups = 0
        self.mega_batches = 0

    def run(self, jobs: Sequence[RunJob]) -> list[SimulationResult]:
        tele = current_telemetry()
        jobs = list(jobs)
        results: list[SimulationResult | None] = [None] * len(jobs)
        groups: dict[Any, list[int]] = {}
        fallback_indices: list[int] = []
        # Grouping probes every job's vector support — on a cold process
        # that also pays the engine/kernel modules' import cost (the
        # deferred import below), so it is timed as build work rather
        # than left outside the phase accounting.
        with tele.span("build", kind="phase", backend=self.name, op="group"):
            from repro.sim.vector import VectorSimulator
            for index, job in enumerate(jobs):
                key = self._group_key(job)
                if key is None:
                    fallback_indices.append(index)
                    if tele.enabled:
                        # Name the fallback at the decision point — a silent
                        # serial detour in a big sweep is exactly what the
                        # telemetry layer exists to surface.
                        support = getattr(job, "vector_support", None)
                        reason = support() if callable(support) else "opaque job"
                        cache_key = getattr(job, "cache_key", None)
                        tele.event(
                            "vector_fallback",
                            reason=str(reason or "ungroupable"),
                            job=index,
                            # Spec-hash prefix so `telemetry summarize` can
                            # name *which* configurations fell back, not
                            # just how many.
                            spec=(
                                cache_key()[:10]
                                if callable(cache_key)
                                else None
                            ),
                        )
                else:
                    groups.setdefault(key, []).append(index)
            # Stack compatible groups into mega-batches: one ragged lockstep
            # launch per kernel family instead of one launch per configuration.
            batches: dict[Any, list[list[int]]] = {}
            for key, indices in groups.items():
                mega_key = (
                    self._mega_key(jobs[indices[0]]) if self.mega_batch else None
                )
                batches.setdefault(
                    mega_key if mega_key is not None else key, []
                ).append(indices)
        done_batches = 0
        for index_groups in batches.values():
            flat = [index for indices in index_groups for index in indices]
            if tele.enabled:
                tele.event(
                    "vector_batch",
                    groups=len(index_groups),
                    jobs=len(flat),
                    mega=len(index_groups) > 1,
                )
            with tele.span(
                "build", kind="phase", backend=self.name, jobs=len(flat)
            ):
                if len(index_groups) == 1:
                    batch = VectorSimulator.from_specs(
                        [jobs[index] for index in index_groups[0]]
                    )
                else:
                    batch = VectorSimulator.from_spec_groups(
                        [[jobs[index] for index in indices] for indices in index_groups]
                    )
            for index, result in zip(flat, batch.run()):
                results[index] = result
            done_batches += 1
            if tele.enabled:
                tele.progress("vector batches", done_batches, len(batches))
        if fallback_indices:
            fresh = self.fallback.run([jobs[index] for index in fallback_indices])
            for index, result in zip(fallback_indices, fresh):
                results[index] = result
        self.vectorized_jobs += len(jobs) - len(fallback_indices)
        self.fallback_jobs += len(fallback_indices)
        self.vector_groups += len(groups)
        self.mega_batches += len(batches)
        return results  # type: ignore[return-value]

    def result_layout(self, job: RunJob) -> str | None:
        """Vectorized jobs have no stable per-job result identity.

        A vectorized job's coins depend on the batch it is grouped into
        (the coin-block geometry is a function of the replication count),
        so the result cache must not file it under the job's own key —
        and a scalar-layout cache entry must never be served to it.
        Fallback jobs inherit the fallback backend's layout.
        """
        if self._group_key(job) is not None:
            return None
        return self.fallback.result_layout(job)

    _group_key = staticmethod(vector_group_key)
    _mega_key = staticmethod(vector_mega_key)

    def describe(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "vectorized_jobs": self.vectorized_jobs,
            "fallback_jobs": self.fallback_jobs,
            "vector_groups": self.vector_groups,
            "mega_batches": self.mega_batches,
            "mega_batch": self.mega_batch,
            "fallback": self.fallback.describe(),
        }
