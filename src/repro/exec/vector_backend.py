"""The vector execution backend.

:class:`VectorBackend` accepts an arbitrary batch of jobs, groups the specs
that can vectorize by everything-but-the-seed, runs each group through one
:class:`~repro.sim.vector.VectorSimulator` call (all replications in
lockstep), and transparently delegates every remaining job to a fallback
backend (serial by default).  Results always come back in job order, so the
backend is a drop-in replacement anywhere a backend is accepted.

Contract differences from the other backends:

* fallback results are *identical* to what the fallback backend produces on
  its own (it is literally the same code path);
* vectorized results are **statistically equivalent** to serial results,
  not bit-identical — the vector engine draws per-replication Philox
  streams instead of per-packet ``random.Random`` streams.  Repeated
  ``VectorBackend`` runs of the same batch are bit-identical.  See
  ``repro.analysis.equivalence`` for the checking harness.

Only jobs that declare their vectorizability (``vector_support()``, i.e.
:class:`~repro.experiments.plan.RunSpec`) are eligible; opaque jobs such as
:class:`~repro.exec.backends.ConfigJob` always take the fallback path.
"""

from __future__ import annotations

import functools
from typing import Any, Sequence

from repro.exec.backends import ExecutionBackend, RunJob, SerialBackend
from repro.sim.results import SimulationResult


@functools.lru_cache(maxsize=4096)
def _cached_group_key(job: Any) -> Any | None:
    """Hashable everything-but-the-seed identity, or ``None`` to fall back.

    ``vector_support`` builds the spec's adversary to introspect it, and
    both the result cache (via ``result_layout``) and the backend's own
    grouping probe every job — memoising by the (frozen, hashable) spec
    avoids rebuilding the same adversary several times per job per run.
    """
    if job.vector_support() is not None:
        return None
    return (job.protocol, job.adversary, job.max_slots, job.stop_when_drained)


class VectorBackend(ExecutionBackend):
    """Vectorizes qualifying spec groups; falls back serially otherwise.

    Parameters
    ----------
    fallback:
        Backend used for jobs the vector engine cannot run (defaults to
        :class:`SerialBackend`).

    The counters ``vectorized_jobs``, ``fallback_jobs``, and
    ``vector_groups`` accumulate across :meth:`run` calls (like the result
    cache's hit/miss counters) and are included in :meth:`describe`, so run
    reports show how much of a sweep actually vectorized.
    """

    name = "vector"

    def __init__(self, fallback: ExecutionBackend | None = None) -> None:
        self.fallback = fallback or SerialBackend()
        self.vectorized_jobs = 0
        self.fallback_jobs = 0
        self.vector_groups = 0

    def run(self, jobs: Sequence[RunJob]) -> list[SimulationResult]:
        from repro.sim.vector import VectorSimulator

        jobs = list(jobs)
        results: list[SimulationResult | None] = [None] * len(jobs)
        groups: dict[Any, list[int]] = {}
        fallback_indices: list[int] = []
        for index, job in enumerate(jobs):
            key = self._group_key(job)
            if key is None:
                fallback_indices.append(index)
            else:
                groups.setdefault(key, []).append(index)
        for indices in groups.values():
            batch = VectorSimulator.from_specs([jobs[index] for index in indices])
            for index, result in zip(indices, batch.run()):
                results[index] = result
        if fallback_indices:
            fresh = self.fallback.run([jobs[index] for index in fallback_indices])
            for index, result in zip(fallback_indices, fresh):
                results[index] = result
        self.vectorized_jobs += len(jobs) - len(fallback_indices)
        self.fallback_jobs += len(fallback_indices)
        self.vector_groups += len(groups)
        return results  # type: ignore[return-value]

    def result_layout(self, job: RunJob) -> str | None:
        """Vectorized jobs have no stable per-job result identity.

        A vectorized job's coins depend on the batch it is grouped into
        (the coin-block geometry is a function of the replication count),
        so the result cache must not file it under the job's own key —
        and a scalar-layout cache entry must never be served to it.
        Fallback jobs inherit the fallback backend's layout.
        """
        if self._group_key(job) is not None:
            return None
        return self.fallback.result_layout(job)

    @staticmethod
    def _group_key(job: RunJob) -> Any | None:
        if not callable(getattr(job, "vector_support", None)):
            return None
        try:
            # The lru_cache hashes the job, which also guarantees the
            # derived key tuple is hashable.
            return _cached_group_key(job)
        except (AttributeError, TypeError):
            return None

    def describe(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "vectorized_jobs": self.vectorized_jobs,
            "fallback_jobs": self.fallback_jobs,
            "vector_groups": self.vector_groups,
            "fallback": self.fallback.describe(),
        }
