"""On-disk memoisation of simulation results, persisted in the results store.

Simulations are deterministic functions of their specification, so a result
can be reused whenever the exact same specification is run again — which
happens constantly while iterating on experiment post-processing, report
rendering, or verdict thresholds.  :class:`ResultCacheBackend` wraps any
execution backend and short-circuits jobs whose results are already stored.

Persistence lives in a :class:`~repro.store.ResultsStore` rooted at
``cache_dir`` (a SQLite registry plus content-addressed artifacts), so
cached results carry provenance (spec hash, code version, metrics), are
queryable and prunable (``python -m repro cache stats|prune``), and share
one durable layer with campaigns.  The hit/miss contract is unchanged from
the old loose-pickle cache: a corrupt or unreadable artifact counts as a
miss, is re-run, and is replaced by a fresh entry.

Only jobs that expose a stable ``cache_key()`` (notably
:class:`~repro.experiments.plan.RunSpec`) participate; jobs without one, or
whose key is ``None``, are always delegated to the inner backend and never
stored, because there is no safe identity to file them under.  The same
logic extends to the *result layout*: entries are filed per layout
(``ExecutionBackend.result_layout``), so a vector-engine result is never
served to a serial run or vice versa, and jobs whose result depends on
batch composition (vectorized jobs) are not cached at all.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Sequence

from repro.exec.backends import ExecutionBackend, RunJob, SerialBackend
from repro.sim.results import SimulationResult
from repro.telemetry import current as current_telemetry


class ResultCacheBackend(ExecutionBackend):
    """Caches results of an inner backend in a results store at ``cache_dir``.

    The store is opened lazily (so merely constructing the backend never
    touches disk) and writes are atomic/idempotent (see
    :class:`~repro.store.ResultsStore`), so a crashed or interrupted sweep
    never leaves a truncated entry behind.  The ``hits``/``misses``
    counters accumulate across :meth:`run` calls and are included in
    :meth:`describe`, so run reports show how much of a sweep was served
    from cache.
    """

    name = "cached"

    def __init__(
        self, cache_dir: str | os.PathLike[str], inner: ExecutionBackend | None = None
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.inner = inner or SerialBackend()
        self.hits = 0
        self.misses = 0
        self._store = None

    @property
    def store(self):
        """The backing :class:`~repro.store.ResultsStore` (opened on demand)."""
        if self._store is None:
            from repro.store import ResultsStore

            self._store = ResultsStore(self.cache_dir)
            self._migrate_legacy_entries(self._store)
        return self._store

    def _migrate_legacy_entries(self, store) -> None:
        """Adopt loose ``<spec_hash>.pkl`` entries from the pre-store cache.

        Earlier releases pickled each scalar result directly under
        ``cache_dir``.  Those files are still valid results, so they are
        moved into the store (keeping sweeps over them warm) instead of
        becoming dead disk that ``cache prune`` could never reclaim.
        Unreadable legacy files are deleted — under the old scheme they
        were misses destined to be overwritten anyway — but a *readable*
        entry is only unlinked once its store write succeeded, so a
        transient store failure (locked database, full disk) leaves it
        in place for the next attempt.
        """
        import pickle
        import re

        for path in self.cache_dir.glob("*.pkl"):
            if not re.fullmatch(r"[0-9a-f]{64}", path.stem):
                continue
            try:
                with path.open("rb") as handle:
                    result = pickle.load(handle)
            except Exception:
                path.unlink(missing_ok=True)
                continue
            try:
                store.put_run(path.stem, result.seed, "scalar", result)
            except Exception:
                continue
            path.unlink(missing_ok=True)

    def run(self, jobs: Sequence[RunJob]) -> list[SimulationResult]:
        tele = current_telemetry()
        jobs = list(jobs)
        results: list[SimulationResult | None] = [None] * len(jobs)
        keys: list[tuple[str, int, str] | None] = []
        missing: list[int] = []
        with tele.span("commit", kind="phase", backend=self.name, op="lookup"):
            for index, job in enumerate(jobs):
                key = self._key_of(job)
                keys.append(key)
                cached = self.store.get_result(*key) if key is not None else None
                if cached is not None:
                    self.hits += 1
                    results[index] = cached
                else:
                    self.misses += 1
                    missing.append(index)
        if tele.enabled:
            tele.event(
                "cache_lookup",
                jobs=len(jobs),
                hits=len(jobs) - len(missing),
                misses=len(missing),
            )
        if missing:
            fresh = self.inner.run([jobs[index] for index in missing])
            with tele.span(
                "commit", kind="phase", backend=self.name, op="store", jobs=len(missing)
            ):
                for index, result in zip(missing, fresh):
                    results[index] = result
                    key = keys[index]
                    if key is not None:
                        # put_run is idempotent: a pre-existing row (e.g. one
                        # whose artifact bytes were corrupted on disk — the
                        # miss we just recovered from) keeps its provenance
                        # while the artifact write heals the damaged file.
                        self.store.put_run(*key, result)
        return results  # type: ignore[return-value]

    def result_layout(self, job: RunJob) -> str | None:
        return self.inner.result_layout(job)

    def close(self) -> None:
        """Close the backing store's connection (and the inner backend)."""
        if self._store is not None:
            self._store.close()
            self._store = None
        self.inner.close()

    def describe(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "cache_dir": str(self.cache_dir),
            "hits": self.hits,
            "misses": self.misses,
            "inner": self.inner.describe(),
        }

    # -- Internals -------------------------------------------------------------

    def _key_of(self, job: RunJob) -> tuple[str, int, str] | None:
        key_method = getattr(job, "cache_key", None)
        if not callable(key_method):
            return None
        # The store row identifies (spec, seed, result layout): results from
        # the reference "scalar" layout are shared between serial and
        # process-pool runs (they are bit-identical), other layouts are
        # namespaced by the layout string, and a job with no stable result
        # identity under the inner backend (layout None — e.g. a vectorized
        # job, whose coins depend on its batch) is never cached or served
        # from cache.
        layout = self.inner.result_layout(job)
        if layout is None:
            return None
        key = key_method()
        if key is None:
            return None
        seed = getattr(job, "seed", 0)
        return key, int(seed), layout
