"""On-disk memoisation of simulation results.

Simulations are deterministic functions of their specification, so a result
can be reused whenever the exact same specification is run again — which
happens constantly while iterating on experiment post-processing, report
rendering, or verdict thresholds.  :class:`ResultCacheBackend` wraps any
execution backend and short-circuits jobs whose results are already stored.

Only jobs that expose a stable ``cache_key()`` (notably
:class:`~repro.experiments.plan.RunSpec`) participate; jobs without one, or
whose key is ``None``, are always delegated to the inner backend and never
stored, because there is no safe identity to file them under.  The same
logic extends to the *result layout*: entries are filed per layout
(``ExecutionBackend.result_layout``), so a vector-engine result is never
served to a serial run or vice versa, and jobs whose result depends on
batch composition (vectorized jobs) are not cached at all.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Sequence

from repro.exec.backends import ExecutionBackend, RunJob, SerialBackend
from repro.sim.results import SimulationResult


class ResultCacheBackend(ExecutionBackend):
    """Caches results of an inner backend under ``cache_dir``.

    Each result is pickled to ``<cache_dir>/<cache_key>.pkl``.  Writes are
    atomic (write to a temporary file, then rename) so a crashed or
    interrupted sweep never leaves a truncated entry behind.  A corrupt or
    unreadable entry counts as a miss, is re-run, and is overwritten with a
    fresh result.  The ``hits``/``misses`` counters accumulate across
    :meth:`run` calls and are included in :meth:`describe`, so run reports
    show how much of a sweep was served from cache.
    """

    name = "cached"

    def __init__(
        self, cache_dir: str | os.PathLike[str], inner: ExecutionBackend | None = None
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.inner = inner or SerialBackend()
        self.hits = 0
        self.misses = 0

    def run(self, jobs: Sequence[RunJob]) -> list[SimulationResult]:
        jobs = list(jobs)
        results: list[SimulationResult | None] = [None] * len(jobs)
        keys: list[str | None] = []
        missing: list[int] = []
        for index, job in enumerate(jobs):
            key = self._key_of(job)
            keys.append(key)
            cached = self._load(key) if key is not None else None
            if cached is not None:
                self.hits += 1
                results[index] = cached
            else:
                self.misses += 1
                missing.append(index)
        if missing:
            fresh = self.inner.run([jobs[index] for index in missing])
            for index, result in zip(missing, fresh):
                results[index] = result
                if keys[index] is not None:
                    self._store(keys[index], result)
        return results  # type: ignore[return-value]

    def result_layout(self, job: RunJob) -> str | None:
        return self.inner.result_layout(job)

    def describe(self) -> dict[str, Any]:
        return {
            "backend": self.name,
            "cache_dir": str(self.cache_dir),
            "hits": self.hits,
            "misses": self.misses,
            "inner": self.inner.describe(),
        }

    # -- Internals -------------------------------------------------------------

    def _key_of(self, job: RunJob) -> str | None:
        key_method = getattr(job, "cache_key", None)
        if not callable(key_method):
            return None
        # The cache key identifies (spec, result layout): results from the
        # reference "scalar" layout keep the bare spec hash (so serial and
        # process-pool runs share entries, as they are bit-identical),
        # other layouts are namespaced, and a job with no stable result
        # identity under the inner backend (layout None — e.g. a
        # vectorized job, whose coins depend on its batch) is never cached
        # or served from cache.
        layout = self.inner.result_layout(job)
        if layout is None:
            return None
        key = key_method()
        if key is None:
            return None
        return key if layout == "scalar" else f"{layout}-{key}"

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    def _load(self, key: str) -> SimulationResult | None:
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # A stale, corrupt, or unreadable entry is a miss, not an error:
            # unpickling arbitrary bytes (or results written by an older
            # code version whose classes moved) can raise nearly anything.
            return None

    def _store(self, key: str, result: SimulationResult) -> None:
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        temporary = path.with_suffix(f".tmp.{os.getpid()}")
        with temporary.open("wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        temporary.replace(path)
