"""Statistics and model fitting on top of the raw metrics.

The paper's claims are asymptotic ("Θ(1) throughput", "polylog(N+J) channel
accesses"); finite-size simulations can only exhibit shapes.  This subpackage
provides the tools the experiments use to turn measurements into
shape-verdicts:

* :mod:`repro.analysis.statistics` — means, confidence intervals, quantiles
  and bootstrap resampling over replicated runs;
* :mod:`repro.analysis.fitting` — least-squares fits of constant, log-power,
  power-law, and linear scaling models with model selection, used to decide
  whether a measured curve grows polylogarithmically or polynomially;
* :mod:`repro.analysis.tables` — plain-text table rendering for experiment
  reports (no plotting dependencies);
* :mod:`repro.analysis.equivalence` — statistical-agreement checking
  between execution backends (CI overlap on replicate means, two-sample KS
  on pooled per-packet distributions), used to validate that the vector
  engine reproduces the scalar engine's distributions.
"""

from repro.analysis.equivalence import (
    EquivalenceReport,
    KsResult,
    MetricComparison,
    compare_result_sets,
    design_effect,
    ks_2sample,
    verify_vector_equivalence,
)
from repro.analysis.fitting import (
    FitResult,
    fit_constant,
    fit_linear,
    fit_log_power,
    fit_power_law,
    select_scaling_model,
)
from repro.analysis.statistics import (
    ConfidenceInterval,
    bootstrap_mean_interval,
    describe,
    mean_confidence_interval,
    quantile,
)
from repro.analysis.tables import format_table, render_rows

__all__ = [
    "ConfidenceInterval",
    "EquivalenceReport",
    "FitResult",
    "KsResult",
    "MetricComparison",
    "compare_result_sets",
    "design_effect",
    "ks_2sample",
    "verify_vector_equivalence",
    "bootstrap_mean_interval",
    "describe",
    "fit_constant",
    "fit_linear",
    "fit_log_power",
    "fit_power_law",
    "format_table",
    "mean_confidence_interval",
    "quantile",
    "render_rows",
    "select_scaling_model",
]
