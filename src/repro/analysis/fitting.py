"""Scaling-model fits.

The energy experiments need to distinguish "grows polylogarithmically in N"
from "grows polynomially in N".  Rather than estimating asymptotic exponents
(hopeless at laptop scale), each candidate model is fit by least squares and
the models are compared by residual error on held-in data:

* constant:    y = a
* log-power:   y = a · ln(x)^k        (k fit over a small grid)
* power law:   y = a · x^b            (fit in log–log space)
* linear:      y = a + b·x

``select_scaling_model`` returns the best model by mean squared error with a
mild complexity penalty, and the experiments report both the winner and the
fitted exponents, which is how EXPERIMENTS.md phrases its verdicts
("accesses/packet fit ln^3.1(N), far below the linear fit").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one scaling model."""

    model: str
    parameters: dict[str, float]
    mse: float
    r_squared: float
    predict: Callable[[float], float]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v:.3g}" for k, v in self.parameters.items())
        return f"{self.model}({params}) mse={self.mse:.4g} R^2={self.r_squared:.3f}"


def _validate(xs: Sequence[float], ys: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a model")
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if np.any(x <= 0.0):
        raise ValueError("x values must be positive (they are problem sizes)")
    return x, y


def _metrics(y: np.ndarray, predicted: np.ndarray) -> tuple[float, float]:
    residual = y - predicted
    mse = float(np.mean(residual**2))
    total = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 - float(np.sum(residual**2)) / total if total > 0.0 else 1.0
    return mse, r_squared


def fit_constant(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y = a``."""
    _, y = _validate(xs, ys)
    a = float(np.mean(y))
    mse, r_squared = _metrics(y, np.full_like(y, a))
    return FitResult(
        model="constant",
        parameters={"a": a},
        mse=mse,
        r_squared=r_squared,
        predict=lambda _x, _a=a: _a,
    )


def fit_linear(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y = a + b·x``."""
    x, y = _validate(xs, ys)
    b, a = np.polyfit(x, y, 1)
    predicted = a + b * x
    mse, r_squared = _metrics(y, predicted)
    return FitResult(
        model="linear",
        parameters={"a": float(a), "b": float(b)},
        mse=mse,
        r_squared=r_squared,
        predict=lambda _x, _a=float(a), _b=float(b): _a + _b * _x,
    )


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> FitResult:
    """Fit ``y = a · x^b`` by linear regression in log–log space."""
    x, y = _validate(xs, ys)
    if np.any(y <= 0.0):
        raise ValueError("power-law fits require positive y values")
    b, log_a = np.polyfit(np.log(x), np.log(y), 1)
    a = float(np.exp(log_a))
    predicted = a * x ** float(b)
    mse, r_squared = _metrics(y, predicted)
    return FitResult(
        model="power",
        parameters={"a": a, "b": float(b)},
        mse=mse,
        r_squared=r_squared,
        predict=lambda _x, _a=a, _b=float(b): _a * _x**_b,
    )


def fit_log_power(
    xs: Sequence[float],
    ys: Sequence[float],
    exponents: Sequence[float] = (1.0, 2.0, 3.0, 4.0, 5.0),
) -> FitResult:
    """Fit ``y = a · ln(x)^k`` over a grid of exponents ``k``.

    For each candidate ``k`` the scale ``a`` has a closed-form least-squares
    solution; the best ``(a, k)`` pair by mean squared error wins.  Problem
    sizes of 1 (where ``ln(x) = 0``) are rejected because the model cannot
    represent them.
    """
    x, y = _validate(xs, ys)
    if np.any(x <= 1.0):
        raise ValueError("log-power fits require x values greater than 1")
    best: FitResult | None = None
    for k in exponents:
        basis = np.log(x) ** k
        denom = float(np.dot(basis, basis))
        if denom == 0.0:
            continue
        a = float(np.dot(basis, y) / denom)
        predicted = a * basis
        mse, r_squared = _metrics(y, predicted)
        candidate = FitResult(
            model="log-power",
            parameters={"a": a, "k": float(k)},
            mse=mse,
            r_squared=r_squared,
            predict=lambda _x, _a=a, _k=float(k): _a * math.log(_x) ** _k,
        )
        if best is None or candidate.mse < best.mse:
            best = candidate
    if best is None:
        raise ValueError("no admissible exponent in the grid")
    return best


def select_scaling_model(
    xs: Sequence[float],
    ys: Sequence[float],
    complexity_penalty: float = 1.05,
) -> FitResult:
    """Pick the best scaling model for ``(xs, ys)``.

    Models are compared by mean squared error; multi-parameter models
    (power, linear) must beat simpler ones (constant, log-power) by the
    multiplicative ``complexity_penalty`` to win, which keeps the verdict
    stable when two models fit almost equally well.
    """
    if complexity_penalty < 1.0:
        raise ValueError("complexity_penalty must be at least 1")
    simple = [fit_constant(xs, ys)]
    try:
        simple.append(fit_log_power(xs, ys))
    except ValueError:
        pass
    complex_models = [fit_linear(xs, ys)]
    try:
        complex_models.append(fit_power_law(xs, ys))
    except ValueError:
        pass
    best_simple = min(simple, key=lambda fit: fit.mse)
    best_complex = min(complex_models, key=lambda fit: fit.mse)
    if best_complex.mse * complexity_penalty < best_simple.mse:
        return best_complex
    return best_simple
