"""Statistical-equivalence checking between execution backends.

The vector engine is *not* bit-identical to the scalar engine: both simulate
the same Markov chain, but the scalar engine hands every packet its own
``random.Random`` stream while the vector engine draws per-replication
Philox coin matrices.  Asserting equality therefore has to be statistical:
two sets of replicated runs of the same configuration should look like two
samples from one distribution.

Two complementary checks are applied per metric:

* **replicate-level agreement** — the replicate means of a headline metric
  (throughput, mean channel accesses, mean latency) are compared with a
  Welch two-sample t-test (Welch–Satterthwaite df) at a deliberately
  small ``mean_alpha``; a
  relative tolerance covers the degenerate cases (zero variance, fewer
  than two replicates) where the test is undefined.  The small alpha
  matters because drain-time-driven metrics are heavy-tailed, so at
  10–20 replicates even the t-approximation under-covers and a loose
  threshold would reject genuinely equivalent engine pairs;
* **distribution-level agreement** — per-packet distributions (latency,
  channel accesses) pooled across replicates are compared with a two-sample
  Kolmogorov–Smirnov test; the sides agree when the asymptotic p-value
  clears ``alpha``.  Packets within one replicate are *not* independent —
  a burst of jamming early in a run shifts every packet of that run
  together — so the p-value is computed at a Kish-deflated effective
  sample size ``n / (1 + (m̄ - 1)·ICC)``, where the intraclass
  correlation is estimated per side with the one-way ANOVA estimator.
  For weakly-coupled configurations the ICC is ≈0 and the correction is a
  no-op; for feedback-coupled adversaries (reactive/adaptive jamming)
  the clustering is strong and the naive pooled test would reject
  genuinely equivalent engine pairs.

Repeated *vector* runs of the same batch must be bit-identical — that
stronger property is checked directly by the test suite, not here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.statistics import welch_t_test
from repro.sim.results import SimulationResult


# ---------------------------------------------------------------------------
# Two-sample Kolmogorov–Smirnov test (no scipy dependency)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class KsResult:
    """Two-sample KS statistic with its asymptotic p-value."""

    statistic: float
    p_value: float
    n1: int
    n2: int


def ks_2sample(
    sample1: Sequence[float],
    sample2: Sequence[float],
    *,
    n_eff1: float | None = None,
    n_eff2: float | None = None,
) -> KsResult:
    """Two-sample KS test with the classical asymptotic p-value.

    The p-value uses the Kolmogorov distribution with the standard
    small-sample correction (Numerical Recipes); it is accurate enough for
    the pooled per-packet samples (hundreds to thousands of points) this
    harness compares.

    ``n_eff1``/``n_eff2`` override the sample sizes used for the p-value
    (the D statistic always uses the full samples).  Callers with
    clustered samples pass Kish-deflated effective sizes here — see
    :func:`design_effect` — because the asymptotic p-value assumes
    independent draws and is anti-conservative under within-cluster
    correlation.
    """
    if not sample1 or not sample2:
        raise ValueError("both samples must be non-empty")
    xs = sorted(sample1)
    ys = sorted(sample2)
    n1, n2 = len(xs), len(ys)
    i = j = 0
    statistic = 0.0
    while i < n1 and j < n2:
        x, y = xs[i], ys[j]
        smallest = min(x, y)
        while i < n1 and xs[i] <= smallest:
            i += 1
        while j < n2 and ys[j] <= smallest:
            j += 1
        statistic = max(statistic, abs(i / n1 - j / n2))
    m1 = float(n1) if n_eff1 is None else min(float(n1), max(1.0, n_eff1))
    m2 = float(n2) if n_eff2 is None else min(float(n2), max(1.0, n_eff2))
    effective = math.sqrt(m1 * m2 / (m1 + m2))
    lam = (effective + 0.12 + 0.11 / effective) * statistic
    p_value = _kolmogorov_sf(lam)
    return KsResult(statistic=statistic, p_value=p_value, n1=n1, n2=n2)


def design_effect(groups: Sequence[Sequence[float]]) -> float:
    """Kish design effect ``1 + (m̄ - 1)·ICC`` of clustered samples.

    ``groups`` holds one inner sequence per cluster (here: the per-packet
    values of one replicate).  The intraclass correlation is the one-way
    ANOVA estimator ``(MSB - MSW) / (MSB + (n0 - 1)·MSW)`` clamped to
    ``[0, 1]``; degenerate inputs (fewer than two clusters, singleton
    clusters only, zero variance) fall back to a design effect of 1, which
    reduces the corrected KS test to the classical one.
    """
    sizes = [len(group) for group in groups if group]
    k = len(sizes)
    total = sum(sizes)
    if k < 2 or total <= k:
        return 1.0
    grand_mean = sum(value for group in groups for value in group) / total
    ss_between = 0.0
    ss_within = 0.0
    for group in groups:
        if not group:
            continue
        group_mean = sum(group) / len(group)
        ss_between += len(group) * (group_mean - grand_mean) ** 2
        ss_within += sum((value - group_mean) ** 2 for value in group)
    ms_between = ss_between / (k - 1)
    ms_within = ss_within / (total - k)
    if ms_between <= 0.0 and ms_within <= 0.0:
        return 1.0
    n0 = (total - sum(size * size for size in sizes) / total) / (k - 1)
    denominator = ms_between + (n0 - 1.0) * ms_within
    if denominator <= 0.0:
        return 1.0
    icc = (ms_between - ms_within) / denominator
    icc = min(1.0, max(0.0, icc))
    mean_size = total / k
    return 1.0 + (mean_size - 1.0) * icc


def _kolmogorov_sf(lam: float) -> float:
    """Survival function of the Kolmogorov distribution, ``Q_KS(λ)``."""
    if lam <= 0.0:
        return 1.0
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * lam * lam)
        total += term
        if abs(term) < 1e-12:
            break
    return min(1.0, max(0.0, total))


# ---------------------------------------------------------------------------
# Metric extraction
# ---------------------------------------------------------------------------


def _replicate_throughput(result: SimulationResult) -> float:
    return result.throughput


def _replicate_mean_accesses(result: SimulationResult) -> float:
    return result.energy_statistics().mean_accesses


def _replicate_mean_latency(result: SimulationResult) -> float:
    return result.latency_statistics().mean_latency


#: Per-replication headline metrics compared via CI overlap.
REPLICATE_METRICS: dict[str, Callable[[SimulationResult], float]] = {
    "throughput": _replicate_throughput,
    "mean_accesses": _replicate_mean_accesses,
    "mean_latency": _replicate_mean_latency,
}


def _pooled_latencies(results: Sequence[SimulationResult]) -> list[list[float]]:
    return [
        [float(p.latency) for p in result.packets if p.latency is not None]
        for result in results
    ]


def _pooled_accesses(results: Sequence[SimulationResult]) -> list[list[float]]:
    return [[float(p.channel_accesses) for p in result.packets] for result in results]


#: Per-packet distributions grouped by replicate, compared via the KS test
#: at a design-effect-corrected effective sample size.
POOLED_METRICS: dict[str, Callable[[Sequence[SimulationResult]], list[list[float]]]] = {
    "latency_distribution": _pooled_latencies,
    "accesses_distribution": _pooled_accesses,
}


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricComparison:
    """Outcome of comparing one metric between the two sides."""

    metric: str
    method: str  # "ci-overlap" or "ks"
    passed: bool
    detail: str


@dataclass
class EquivalenceReport:
    """All metric comparisons between two result sets."""

    comparisons: list[MetricComparison] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(comparison.passed for comparison in self.comparisons)

    def failures(self) -> list[MetricComparison]:
        return [c for c in self.comparisons if not c.passed]

    def render(self) -> str:
        lines = ["equivalence: " + ("PASS" if self.passed else "FAIL")]
        for c in self.comparisons:
            status = "ok " if c.passed else "FAIL"
            lines.append(f"  [{status}] {c.metric} ({c.method}): {c.detail}")
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def compare_result_sets(
    scalar_results: Sequence[SimulationResult],
    vector_results: Sequence[SimulationResult],
    *,
    alpha: float = 0.001,
    mean_alpha: float = 0.002,
    relative_tolerance: float = 0.15,
    labels: tuple[str, str] = ("scalar", "vector"),
) -> EquivalenceReport:
    """Check that two replicated result sets agree statistically.

    ``scalar_results`` and ``vector_results`` should be replicated runs of
    the *same* configuration (any seeds).  ``alpha`` is the KS rejection
    level and ``mean_alpha`` the Welch-test rejection level — both
    deliberately small, because at these sample sizes loose thresholds
    reject genuinely equivalent engine pairs far more often than they
    catch real defects (a systematic kernel bug produces p-values orders
    of magnitude below any sane threshold).  ``relative_tolerance`` is the
    fallback agreement criterion for replicate means when the Welch test
    is undefined (zero variance, fewer than two replicates).

    ``labels`` names the two sides in rendered details; ``campaign diff``
    reuses this machinery to compare two stored campaigns, where
    "scalar"/"vector" would be misleading.
    """
    if not scalar_results or not vector_results:
        raise ValueError("both result sets must be non-empty")
    report = EquivalenceReport()

    for metric, extract in REPLICATE_METRICS.items():
        try:
            left = [extract(result) for result in scalar_results]
            right = [extract(result) for result in vector_results]
        except ValueError as exc:
            report.notes.append(f"{metric}: skipped ({exc})")
            continue
        report.comparisons.append(
            _compare_means(metric, left, right, mean_alpha, relative_tolerance, labels)
        )

    for metric, pool in POOLED_METRICS.items():
        left_groups = pool(scalar_results)
        right_groups = pool(vector_results)
        left = [value for group in left_groups for value in group]
        right = [value for group in right_groups for value in group]
        if not left or not right:
            report.notes.append(f"{metric}: skipped (no samples)")
            continue
        deff_left = design_effect(left_groups)
        deff_right = design_effect(right_groups)
        ks = ks_2sample(
            left,
            right,
            n_eff1=len(left) / deff_left,
            n_eff2=len(right) / deff_right,
        )
        report.comparisons.append(
            MetricComparison(
                metric=metric,
                method="ks",
                passed=ks.p_value > alpha,
                detail=(
                    f"D={ks.statistic:.4f}, p={ks.p_value:.4f} "
                    f"(n={ks.n1}/{ks.n2}, "
                    f"deff={deff_left:.1f}/{deff_right:.1f}, alpha={alpha})"
                ),
            )
        )
    return report


def _compare_means(
    metric: str,
    left: list[float],
    right: list[float],
    mean_alpha: float,
    relative_tolerance: float,
    labels: tuple[str, str] = ("scalar", "vector"),
) -> MetricComparison:
    left_label, right_label = labels
    n1, n2 = len(left), len(right)
    left_mean = sum(left) / n1
    right_mean = sum(right) / n2
    scale = max(abs(left_mean), abs(right_mean), 1e-12)
    relative_difference = abs(left_mean - right_mean) / scale
    if n1 >= 2 and n2 >= 2:
        try:
            # Welch's t with Welch–Satterthwaite df, not a normal z: at the
            # replicate counts campaigns and the harness actually run
            # (2–24 per side), the normal approximation overstates
            # significance by orders of magnitude and flags genuinely
            # equivalent result sets.
            t, df, p_value = welch_t_test(left, right)
        except ValueError:
            # Degenerate (zero-variance) metric: the test statistic is
            # undefined and exact equality would be too strict across
            # random-stream layouts — fall back to the relative tolerance.
            passed = relative_difference <= relative_tolerance
            detail = (
                f"{left_label} {left_mean:.4f} vs {right_label} {right_mean:.4f} "
                f"(zero variance; relative diff {relative_difference:.3f}, "
                f"tolerance {relative_tolerance})"
            )
        else:
            passed = p_value > mean_alpha
            detail = (
                f"{left_label} {left_mean:.4f} vs {right_label} {right_mean:.4f} "
                f"(t={t:.2f}, df={df:.1f}, p={p_value:.4f}, alpha={mean_alpha}, "
                f"n={n1}/{n2})"
            )
    else:
        passed = relative_difference <= relative_tolerance
        detail = (
            f"{left_label} {left_mean:.4f} vs {right_label} {right_mean:.4f} "
            f"(relative diff {relative_difference:.3f}, "
            f"tolerance {relative_tolerance})"
        )
    return MetricComparison(
        metric=metric, method="welch-t", passed=passed, detail=detail
    )


# ---------------------------------------------------------------------------
# Convenience: run both backends on the same specs and compare
# ---------------------------------------------------------------------------


def verify_vector_equivalence(
    specs: Sequence,
    *,
    alpha: float = 0.001,
    mean_alpha: float = 0.002,
    relative_tolerance: float = 0.15,
) -> EquivalenceReport:
    """Run ``specs`` through both engines and compare the results.

    ``specs`` must all be replications of one vectorizable configuration
    (same protocol/adversary/options, varying seed) — the shape produced by
    one :class:`~repro.experiments.plan.SweepPlan` group.  The serial side
    is the reference scalar engine; the vector side runs the same seeds
    through one lockstep batch.  Also asserts the vector side's stronger
    determinism contract: a second vector run must be bit-identical.
    """
    from repro.exec.backends import SerialBackend
    from repro.sim.vector import VectorSimulator

    specs = list(specs)
    for spec in specs:
        reason = spec.vector_support()
        if reason is not None:
            raise ValueError(f"spec cannot vectorize: {reason}")
    scalar_results = SerialBackend().run(specs)
    vector_results = VectorSimulator.from_specs(specs).run()
    report = compare_result_sets(
        scalar_results,
        vector_results,
        alpha=alpha,
        mean_alpha=mean_alpha,
        relative_tolerance=relative_tolerance,
    )
    repeat = VectorSimulator.from_specs(specs).run()
    deterministic = all(
        first.collector.backlog_series == second.collector.backlog_series
        and [(p.packet_id, p.departure_slot, p.sends) for p in first.packets]
        == [(p.packet_id, p.departure_slot, p.sends) for p in second.packets]
        for first, second in zip(vector_results, repeat)
    )
    report.comparisons.append(
        MetricComparison(
            metric="vector_determinism",
            method="bit-identical-repeat",
            passed=deterministic,
            detail=f"{len(specs)} replications re-run and compared exactly",
        )
    )
    return report


def verify_plan_equivalence(
    plan,
    *,
    alpha: float = 0.001,
    mean_alpha: float = 0.002,
    relative_tolerance: float = 0.15,
) -> dict[int, "EquivalenceReport"]:
    """Check every vectorizable group of a sweep plan through both engines.

    ``plan`` is a :class:`~repro.experiments.plan.SweepPlan` (for example
    one compiled from a scenario by :func:`repro.scenarios.runner.build_plan`).
    Each group is one configuration replicated over seeds — exactly the
    shape :func:`verify_vector_equivalence` wants — so the plan's
    vectorizable groups map to one report each, keyed by group id.
    Non-vectorizable groups are skipped (they have no vector side to
    compare).
    """
    specs = plan.specs
    fallback_groups = plan.vector_summary()["fallback_groups"]
    reports: dict[int, EquivalenceReport] = {}
    for group in plan.groups:
        if group.group_id in fallback_groups:
            continue
        reports[group.group_id] = verify_vector_equivalence(
            [specs[index] for index in group.spec_indices],
            alpha=alpha,
            mean_alpha=mean_alpha,
            relative_tolerance=relative_tolerance,
        )
    return reports
