"""Plain-text table rendering for experiment reports.

The benchmarks and examples print the rows the paper's claims are judged on;
keeping the renderer dependency-free (no pandas, no rich) means it works in
any environment the simulations do.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def _format_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    precision: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    if not headers:
        raise ValueError("headers must not be empty")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row length {len(row)} does not match header length {len(headers)}"
            )
    text_rows = [[_format_cell(cell, precision) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_rows(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 4,
) -> str:
    """Render a list of dict-rows, optionally restricted to ``columns``."""
    if not rows:
        raise ValueError("no rows to render")
    if columns is None:
        columns = list(rows[0].keys())
    table_rows = [[row.get(column, "") for column in columns] for row in rows]
    return format_table(list(columns), table_rows, precision=precision)
