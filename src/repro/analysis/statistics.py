"""Descriptive statistics and confidence intervals over replicated runs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Sequence


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a symmetric-coverage interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.low <= self.estimate <= self.high:
            raise ValueError("interval must bracket the estimate")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def describe(values: Sequence[float]) -> dict[str, float]:
    """Mean, standard deviation, min, max, and median of a sample."""
    if not values:
        raise ValueError("cannot describe an empty sample")
    ordered = sorted(values)
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    median = (
        ordered[n // 2]
        if n % 2 == 1
        else (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
    )
    return {
        "n": float(n),
        "mean": mean,
        "std": math.sqrt(variance),
        "min": float(ordered[0]),
        "max": float(ordered[-1]),
        "median": float(median),
    }


# Two-sided critical values of the standard normal for common confidences;
# the replicate counts used by experiments (5–20 seeds) make the normal
# approximation adequate and avoid a scipy dependency in the core path.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Normal-approximation confidence interval for the mean of a sample."""
    if len(values) < 2:
        raise ValueError("need at least two values for a confidence interval")
    if confidence not in _Z_VALUES:
        raise ValueError(f"supported confidences: {sorted(_Z_VALUES)}")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = _Z_VALUES[confidence] * math.sqrt(variance / n)
    return ConfidenceInterval(
        estimate=mean, low=mean - half_width, high=mean + half_width,
        confidence=confidence,
    )


def bootstrap_mean_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap confidence interval for the mean.

    Used when the per-run metric is skewed (maximum channel accesses, maximum
    backlog) and the normal approximation of
    :func:`mean_confidence_interval` is unreliable.
    """
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if resamples < 10:
        raise ValueError("need at least 10 resamples")
    rng = Random(seed)
    n = len(values)
    point = sum(values) / n
    means = []
    for _ in range(resamples):
        resample = [values[rng.randrange(n)] for _ in range(n)]
        means.append(sum(resample) / n)
    means.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, min(resamples - 1, int(alpha * resamples)))
    high_index = max(0, min(resamples - 1, int((1.0 - alpha) * resamples) - 1))
    low = min(means[low_index], point)
    high = max(means[high_index], point)
    return ConfidenceInterval(
        estimate=point, low=low, high=high, confidence=confidence
    )
