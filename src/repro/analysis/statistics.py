"""Descriptive statistics and confidence intervals over replicated runs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Sequence


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Numerical Recipes)."""
    max_iterations = 300
    epsilon = 3e-12
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < epsilon:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)``, the regularized incomplete beta function.

    Scipy-free (continued-fraction) implementation, accurate to ~1e-10
    over the parameter ranges the t-distribution needs.
    """
    if a <= 0.0 or b <= 0.0:
        raise ValueError("a and b must be positive")
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_sf(t: float, df: float) -> float:
    """One-sided survival function ``P(T > t)`` of Student's t.

    Exists so Welch comparisons at small replicate counts (df of 1–10,
    where the normal approximation overstates significance by orders of
    magnitude) get honest p-values without a scipy dependency.
    """
    if df <= 0.0:
        raise ValueError("df must be positive")
    if t == 0.0:
        return 0.5
    x = df / (df + t * t)
    tail = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x)
    return tail if t > 0.0 else 1.0 - tail


def welch_t_test(
    left: Sequence[float], right: Sequence[float]
) -> tuple[float, float, float]:
    """Welch's unequal-variance t-test on two samples.

    Returns ``(t, df, p)`` with the Welch–Satterthwaite degrees of
    freedom and the two-sided p-value.  Requires at least two values per
    side and non-degenerate variance; callers handle those cases with a
    tolerance fallback.
    """
    n1, n2 = len(left), len(right)
    if n1 < 2 or n2 < 2:
        raise ValueError("welch_t_test needs at least two values per side")
    mean1 = sum(left) / n1
    mean2 = sum(right) / n2
    var1 = sum((x - mean1) ** 2 for x in left) / (n1 - 1)
    var2 = sum((x - mean2) ** 2 for x in right) / (n2 - 1)
    se1, se2 = var1 / n1, var2 / n2
    standard_error = math.sqrt(se1 + se2)
    if standard_error == 0.0:
        raise ValueError("welch_t_test is undefined for zero variance")
    t = (mean1 - mean2) / standard_error
    df = (se1 + se2) ** 2 / (
        (se1**2 / (n1 - 1) if se1 else 0.0) + (se2**2 / (n2 - 1) if se2 else 0.0)
    )
    p_value = 2.0 * student_t_sf(abs(t), df)
    return t, df, min(1.0, p_value)


def benjamini_hochberg(
    p_values: Sequence[float], alpha: float = 0.05
) -> list[bool]:
    """Benjamini–Hochberg FDR control: which hypotheses are rejected.

    Returns one boolean per input p-value (in input order).  Used by the
    trajectory diff, where one comparison per window per metric would make
    a plain per-test ``alpha`` either far too loose (many false flags over
    hundreds of windows) or, Bonferroni-corrected, far too strict to catch
    a regression confined to a few windows.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    m = len(p_values)
    if m == 0:
        return []
    for p in p_values:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p-values must lie in [0, 1], got {p!r}")
    order = sorted(range(m), key=lambda index: p_values[index])
    threshold = 0.0
    for rank, index in enumerate(order, start=1):
        if p_values[index] <= rank * alpha / m:
            threshold = p_values[index]
    return [p <= threshold for p in p_values] if threshold else [False] * m


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a symmetric-coverage interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.low <= self.estimate <= self.high:
            raise ValueError("interval must bracket the estimate")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile of a sample by linear interpolation.

    Matches numpy's default (``method="linear"``) so quantiles computed
    here and in vectorized code agree.  Shared by the telemetry
    summarizer's p50/p95 span columns and the observe histogram's
    p50/p95/p99 export, so one definition of "p95" exists in the repo.
    """
    if not values:
        raise ValueError("cannot take a quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    if lower == upper:
        return float(ordered[lower])
    weight = position - lower
    return float(ordered[lower] * (1.0 - weight) + ordered[upper] * weight)


def describe(values: Sequence[float]) -> dict[str, float]:
    """Mean, standard deviation, min, max, and median of a sample."""
    if not values:
        raise ValueError("cannot describe an empty sample")
    ordered = sorted(values)
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    median = (
        ordered[n // 2]
        if n % 2 == 1
        else (ordered[n // 2 - 1] + ordered[n // 2]) / 2.0
    )
    return {
        "n": float(n),
        "mean": mean,
        "std": math.sqrt(variance),
        "min": float(ordered[0]),
        "max": float(ordered[-1]),
        "median": float(median),
    }


# Two-sided critical values of the standard normal for common confidences;
# the replicate counts used by experiments (5–20 seeds) make the normal
# approximation adequate and avoid a scipy dependency in the core path.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Normal-approximation confidence interval for the mean of a sample."""
    if len(values) < 2:
        raise ValueError("need at least two values for a confidence interval")
    if confidence not in _Z_VALUES:
        raise ValueError(f"supported confidences: {sorted(_Z_VALUES)}")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half_width = _Z_VALUES[confidence] * math.sqrt(variance / n)
    return ConfidenceInterval(
        estimate=mean, low=mean - half_width, high=mean + half_width,
        confidence=confidence,
    )


def bootstrap_mean_interval(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap confidence interval for the mean.

    Used when the per-run metric is skewed (maximum channel accesses, maximum
    backlog) and the normal approximation of
    :func:`mean_confidence_interval` is unreliable.
    """
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if resamples < 10:
        raise ValueError("need at least 10 resamples")
    rng = Random(seed)
    n = len(values)
    point = sum(values) / n
    means = []
    for _ in range(resamples):
        resample = [values[rng.randrange(n)] for _ in range(n)]
        means.append(sum(resample) / n)
    means.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, min(resamples - 1, int(alpha * resamples)))
    high_index = max(0, min(resamples - 1, int((1.0 - alpha) * resamples) - 1))
    low = min(means[low_index], point)
    high = max(means[high_index], point)
    return ConfidenceInterval(
        estimate=point, low=low, high=high, confidence=confidence
    )
