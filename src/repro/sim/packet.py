"""Packet runtime state.

The :class:`Packet` wraps a protocol's per-packet state with the bookkeeping
the engine and the metrics need: when the packet arrived, how many channel
accesses (sends and listens) it has made, and when it departed.  Channel
accesses are the paper's energy measure (Theorem 1.6 onward): each slot in
which the packet sends or listens costs exactly one access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.protocols.base import PacketState


@dataclass
class Packet:
    """A packet in the system (or one that has already departed)."""

    packet_id: int
    arrival_slot: int
    state: PacketState
    rng: Random = field(repr=False)
    sends: int = 0
    listens: int = 0
    departure_slot: int | None = None

    @property
    def channel_accesses(self) -> int:
        """Total channel accesses (each send or listen costs one)."""
        return self.sends + self.listens

    @property
    def departed(self) -> bool:
        return self.departure_slot is not None

    @property
    def latency(self) -> int | None:
        """Slots from arrival to success, inclusive; ``None`` if still active."""
        if self.departure_slot is None:
            return None
        return self.departure_slot - self.arrival_slot + 1

    def record_send(self) -> None:
        self.sends += 1

    def record_listen(self) -> None:
        self.listens += 1

    def mark_departed(self, slot: int) -> None:
        if self.departure_slot is not None:
            raise ValueError(f"packet {self.packet_id} already departed")
        if slot < self.arrival_slot:
            raise ValueError("departure cannot precede arrival")
        self.departure_slot = slot
