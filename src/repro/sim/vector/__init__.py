"""Vectorized batch simulation.

One :class:`VectorSimulator` runs every replication of one ``(protocol,
adversary)`` configuration in lockstep over ``(replications × packets)``
numpy arrays, turning a batch of scalar executions into a single pass of
array operations per slot.  :mod:`repro.sim.vector.support` decides which
configurations qualify; everything else runs on the scalar
:class:`~repro.sim.engine.Simulator` (the
:class:`~repro.exec.vector_backend.VectorBackend` handles that fallback
transparently).

Vector results agree with scalar results statistically, not bit-for-bit:
the engines draw from differently shaped random streams (per-replication
Philox here, per-packet ``random.Random`` there).  Repeated vector runs of
the same batch are bit-identical.  ``repro.analysis.equivalence`` provides
the statistical-agreement harness.
"""

from repro.sim.vector.engine import VectorSimulator
from repro.sim.vector.support import (
    VECTOR_ARRIVALS,
    VECTOR_JAMMERS,
    VECTOR_PROTOCOLS,
    adversary_support,
    config_support,
    protocol_support,
    vector_support,
)

__all__ = [
    "VECTOR_ARRIVALS",
    "VECTOR_JAMMERS",
    "VECTOR_PROTOCOLS",
    "VectorSimulator",
    "adversary_support",
    "config_support",
    "protocol_support",
    "vector_support",
]
