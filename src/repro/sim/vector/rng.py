"""Per-replication Philox streams for the vector engine.

Each replication in a batch owns two counter-based Philox streams — one for
its packets' coins, one for its adversary's coins — keyed off the
replication's own master seed via the same SHA-256 derivation the scalar
engine uses (:func:`repro.sim.rng.derive_seed`).  Keying per replication
keeps replications statistically independent and makes a batch's output a
deterministic function of its seed list: running the same batch twice is
bit-identical.

The scalar engine hands every *packet* its own ``random.Random``; the vector
engine instead draws one ``(replications × packets)`` coin matrix per slot
from the per-replication streams.  The two layouts produce different (but
identically distributed) coin sequences, which is exactly why vector results
match scalar results statistically rather than bit-for-bit.

Coins are drawn in blocks of slots (amortising the per-replication Python
loop to one generator call per block) and the block size is a deterministic
function of the batch geometry, so the coin consumed at ``(replication,
slot, packet)`` never depends on timing or chunk boundaries chosen at run
time.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sim.rng import derive_seed

#: Upper bound on the per-block coin buffer, in float64 entries (~16 MiB).
_MAX_BLOCK_ENTRIES = 2_000_000


def block_slots(num_replications: int, capacity: int) -> int:
    """Slots of packet coins to buffer per refill (deterministic in shape)."""
    per_slot = max(1, num_replications * max(1, capacity))
    return max(1, min(256, _MAX_BLOCK_ENTRIES // per_slot))


class VectorStreams:
    """The per-replication random streams of one vector batch."""

    def __init__(self, seeds: Sequence[int]) -> None:
        self.seeds = [int(seed) for seed in seeds]
        self.packet_generators = [
            np.random.Generator(np.random.Philox(key=derive_seed(seed, "vector", "packets")))
            for seed in self.seeds
        ]
        self.adversary_generators = [
            np.random.Generator(
                np.random.Philox(key=derive_seed(seed, "vector", "adversary"))
            )
            for seed in self.seeds
        ]

    def __len__(self) -> int:
        return len(self.seeds)

    def slice(self, start: int, stop: int) -> "StreamView":
        """A view of the replication range ``[start, stop)``.

        The view *shares* the underlying generator objects, which is what
        mega-batched execution relies on: a segment consuming coins through
        its view advances exactly the same generators, in exactly the same
        per-replication order, as a standalone batch of that segment would —
        the property that keeps mega-batched results bit-identical to
        per-group vector runs.
        """
        return StreamView(
            self.seeds[start:stop],
            self.packet_generators[start:stop],
            self.adversary_generators[start:stop],
        )


class StreamView:
    """A contiguous slice of a :class:`VectorStreams` (shared generators)."""

    __slots__ = ("seeds", "packet_generators", "adversary_generators")

    def __init__(
        self,
        seeds: list[int],
        packet_generators: list[np.random.Generator],
        adversary_generators: list[np.random.Generator],
    ) -> None:
        self.seeds = seeds
        self.packet_generators = packet_generators
        self.adversary_generators = adversary_generators

    def __len__(self) -> int:
        return len(self.seeds)


class CoinBlocks:
    """Blocked ``(R, P)`` per-slot uniforms from per-replication streams.

    ``coins(slot)`` returns the coin matrix for ``slot``; consecutive slots
    read consecutive rows of a pre-drawn ``(R, block, P)`` buffer.  When the
    packet capacity grows, the remainder of the current block is discarded
    and a fresh block is drawn at the new width — deterministic, because
    capacity growth itself is a deterministic function of the seeds.
    """

    def __init__(self, streams: "VectorStreams | StreamView", capacity: int) -> None:
        self._streams = streams
        self._capacity = max(1, capacity)
        self._block: np.ndarray | None = None
        self._block_start = 0
        self._block_len = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def resize(self, capacity: int) -> None:
        """Grow the packet dimension; discards the rest of the current block."""
        if capacity <= self._capacity:
            return
        self._capacity = capacity
        self._block = None

    def coins(self, slot: int, running: np.ndarray | None = None) -> np.ndarray:
        """The ``(R, capacity)`` uniform coin matrix for ``slot``.

        ``running`` masks replications whose execution already ended; their
        streams stop being consumed (and their rows hold stale coins no one
        reads).  Because finish times are a deterministic function of the
        seeds, skipping them keeps runs bit-reproducible.
        """
        if self._block is None or not (
            self._block_start <= slot < self._block_start + self._block_len
        ):
            self._refill(slot, running)
        assert self._block is not None
        return self._block[:, slot - self._block_start, :]

    def _refill(self, start_slot: int, running: np.ndarray | None) -> None:
        replications = len(self._streams)
        block = block_slots(replications, self._capacity)
        if self._block is None or self._block.shape[2] != self._capacity:
            self._block = np.empty(
                (replications, block, self._capacity), dtype=np.float64
            )
        for index, generator in enumerate(self._streams.packet_generators):
            if running is None or running[index]:
                self._block[index] = generator.random((block, self._capacity))
        self._block_start = start_slot
        self._block_len = block
