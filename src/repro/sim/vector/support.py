"""Which configurations the vector engine can run.

The vector engine covers every built-in protocol tier: the send-only
protocols whose per-packet state reduces to a handful of scalars, *and* the
sensing tier (LOW-SENSING BACKOFF, its decoupled A1 variant, Sawtooth, and
full-sensing multiplicative weights), whose ternary-feedback updates are
computed from the engine's per-replication feedback arrays.  Adversaries
qualify when they compose an oblivious arrival process (whose whole
schedule can be precomputed as an array) with a jammer whose per-slot
decision depends on at most the slot index, a budget counter, and the
backlog — all of which the engine tracks as arrays.

Feedback-coupled components vectorize too, via the engine's lockstep
feedback loop: reactive jammers see the current slot's per-replication
sender arrays, contention-reading adaptive jammers are fed a
per-replication contention row each slot, and coupled adversaries whose
injections and jams both read the live backlog
(:class:`~repro.adversary.adaptive.BacklogCouplingAdversary`) drive their
decisions from the engine's backlog counter.  Execution traces and
potential tracking are vectorized *outputs* — per-slot event arrays
materialized into trace records and potential samples on demand — not
blockers.  :func:`vector_support` answers "can this spec vectorize?" with
``None`` (yes) or a human-readable reason (no), and the
:class:`~repro.exec.vector_backend.VectorBackend` uses that answer to fall
back transparently; :func:`mega_batch_exclusion` names the configurations
that vectorize but must run in their own lockstep batch.

This module deliberately avoids importing numpy, so capability checks stay
importable (and cheap) even where the vector engine itself is never used.

Eligibility is decided by an **exact type** match against the registries
below *and* the declared ``vectorizable`` capability flag.  The flag
documents intent on the class; the exact-type match protects against
subclasses that override behaviour the kernels do not model.

Piecewise schedules (:class:`~repro.adversary.scheduled.ScheduledArrivals`
and :class:`~repro.adversary.scheduled.ScheduledJamming`) are vetted
phase-by-phase: a schedule stays on the fast path exactly when every phase
component would on its own — piecewise-constant compositions of
vectorizable components vectorize, and the reported reason names the first
offending phase otherwise.
"""

from __future__ import annotations

from typing import Any

from repro.adversary.arrivals import (
    AdversarialQueueingArrivals,
    BatchArrivals,
    NoArrivals,
    PeriodicBurstArrivals,
    PoissonArrivals,
)
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import (
    AdaptiveContentionJammer,
    BernoulliJamming,
    BudgetedRandomJamming,
    BurstJamming,
    NoJamming,
    PeriodicJamming,
    ReactiveSuccessJammer,
    ReactiveTargetedJammer,
)
from repro.adversary.adaptive import BacklogCouplingAdversary
from repro.adversary.scheduled import ScheduledArrivals, ScheduledJamming
from repro.core.low_sensing import DecoupledLowSensingBackoff, LowSensingBackoff
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.fixed_probability import FixedProbabilityProtocol, SlottedAloha
from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights
from repro.protocols.polynomial_backoff import PolynomialBackoff
from repro.protocols.sawtooth import SawtoothBackoff

#: Protocol classes with a vector kernel (exact type match).
VECTOR_PROTOCOLS = (
    FixedProbabilityProtocol,
    SlottedAloha,
    BinaryExponentialBackoff,
    PolynomialBackoff,
    # The sensing tier: per-packet listen/send decisions and ternary-feedback
    # state updates, computed in lockstep from per-replication feedback rows.
    LowSensingBackoff,
    DecoupledLowSensingBackoff,
    SawtoothBackoff,
    FullSensingMultiplicativeWeights,
)

#: Arrival-process classes with a vector schedule kernel (exact type match).
VECTOR_ARRIVALS = (
    NoArrivals,
    BatchArrivals,
    PoissonArrivals,
    PeriodicBurstArrivals,
    AdversarialQueueingArrivals,
)

#: Jammer classes with a vector kernel (exact type match).
VECTOR_JAMMERS = (
    NoJamming,
    BernoulliJamming,
    PeriodicJamming,
    BurstJamming,
    BudgetedRandomJamming,
    # Feedback-coupled jammers: served by the engine's lockstep feedback
    # loop (per-slot contention rows and current-slot sender arrays).
    AdaptiveContentionJammer,
    ReactiveTargetedJammer,
    ReactiveSuccessJammer,
)


def _eligible(instance: Any, registry: tuple[type, ...]) -> bool:
    return type(instance) in registry and bool(getattr(instance, "vectorizable", False))


def scheduled_identity(component: Any) -> str | None:
    """Canonical identity of a scheduled component, ``None`` otherwise.

    Mega-batches only merge groups whose schedules are *identical*; both
    the backend's compatibility key and the engine's
    ``from_spec_groups`` validation compare this exact string, so the
    merge decision and the engine's acceptance can never disagree.
    """
    import json

    if isinstance(component, (ScheduledArrivals, ScheduledJamming)):
        return json.dumps(component.describe(), sort_keys=True)
    return None


def protocol_support(protocol: Any) -> str | None:
    """``None`` if the protocol has a vector kernel, else the reason not."""
    if _eligible(protocol, VECTOR_PROTOCOLS):
        return None
    return f"protocol {type(protocol).__name__} has no vector kernel"


def arrival_process_support(process: Any) -> str | None:
    """``None`` if the arrival process has a vector schedule, else the reason.

    Schedules recurse phase-by-phase, so the reason for a non-vectorizable
    schedule names the offending phase (and, for nested schedules, the
    whole phase path).
    """
    if type(process) is ScheduledArrivals:
        for index, phase in enumerate(process.schedule.phases):
            reason = arrival_process_support(phase.component)
            if reason is not None:
                return f"arrival schedule phase {index}: {reason}"
        return None
    if _eligible(process, VECTOR_ARRIVALS):
        return None
    return f"arrival process {type(process).__name__} has no vector schedule"


def jammer_support(jammer: Any) -> str | None:
    """``None`` if the jammer has a vector kernel, else the reason not."""
    if type(jammer) is ScheduledJamming:
        if jammer.reactive:
            return "jamming schedule contains a reactive phase"
        for index, phase in enumerate(jammer.schedule.phases):
            reason = jammer_support(phase.component)
            if reason is not None:
                return f"jamming schedule phase {index}: {reason}"
        return None
    if _eligible(jammer, VECTOR_JAMMERS):
        return None
    return f"jammer {type(jammer).__name__} has no vector kernel"


def adversary_support(adversary: Any) -> str | None:
    """``None`` if the adversary decomposes into vectorizable parts."""
    if _eligible(adversary, (BacklogCouplingAdversary,)):
        # The coupled adversary fills both component roles; the engine's
        # lockstep backlog counter serves its per-slot reads.
        return None
    if not isinstance(adversary, CompositeAdversary):
        return (
            f"adversary {type(adversary).__name__} is not a CompositeAdversary "
            "(custom adversaries run on the scalar engine)"
        )
    reason = arrival_process_support(adversary.arrival_process)
    if reason is not None:
        return reason
    return jammer_support(adversary.jammer)


def config_support(config: Any) -> str | None:
    """``None`` if a built :class:`SimulationConfig` can vectorize."""
    reason = protocol_support(config.protocol)
    if reason is not None:
        return reason
    return adversary_support(config.adversary)


def vector_support(spec: Any) -> str | None:
    """``None`` if a :class:`~repro.experiments.plan.RunSpec` can vectorize.

    Builds the spec's configuration (and therefore a fresh adversary) to
    introspect the concrete arrival/jammer types; the built objects are
    discarded, so this never leaks state into the actual run.
    """
    reason = protocol_support(getattr(spec, "protocol", None))
    if reason is not None:
        return reason
    try:
        config = spec.build_config()
    except Exception as exc:  # pragma: no cover - defensive
        return f"spec could not build its configuration: {exc}"
    return adversary_support(config.adversary)


def mega_batch_exclusion(spec: Any) -> str | None:
    """Why a vectorizable spec must run in its own lockstep batch.

    ``None`` means the spec's group may stack into a mega-batch with other
    compatible groups.  A named reason means the group still vectorizes —
    it just gets its own kernel launch — mirroring the validation in
    :meth:`~repro.sim.vector.engine.VectorSimulator.from_spec_groups`.
    """
    if getattr(spec, "collect_trace", False) or getattr(
        spec, "collect_potential", False
    ):
        return (
            "trace and potential outputs are materialized per lockstep "
            "batch; such groups cannot mega-batch"
        )
    try:
        config = spec.build_config() if hasattr(spec, "build_config") else spec
    except Exception:  # pragma: no cover - defensive
        return None
    if isinstance(config.adversary, BacklogCouplingAdversary):
        return (
            "backlog-coupled adversaries read the live backlog each slot; "
            "such groups cannot mega-batch"
        )
    return None
