"""Batched arrival schedules and jamming kernels.

Oblivious arrival processes never observe the system, so their entire
schedule is a function of the slot index (and, for Poisson traffic, private
coins): the vector engine precomputes it one *chunk* of slots at a time as a
``(replications × chunk)`` count matrix.

Jammers are one step less oblivious: budgeted strategies carry a spent
counter and :class:`~repro.adversary.jamming.BernoulliJamming` may gate on
whether any packet is active.  Both reduce to per-slot ``(replications,)``
array operations against state the engine already tracks (budget counters,
the pre-injection backlog), mirroring the scalar semantics exactly: the
decision for slot ``t`` sees the state at the end of slot ``t − 1``, and a
budget unit is spent only when a jam actually happens.

State-coupled adversaries close a **lockstep feedback loop** with the
engine instead of precomputing anything:

* **adaptive** jammers (:class:`AdaptiveContentionJammerVector`) receive the
  pre-injection contention row vector each slot via :meth:`set_contention`;
* **reactive** jammers see the slot's sender matrix through
  :meth:`reactive_jam`, called after packet decisions but before channel
  resolution — exactly the scalar engine's step 3;
* **backlog-coupled** arrivals (:class:`BacklogCouplingArrivalsVector`)
  compute per-slot injections from the live pre-injection backlog array
  (``coupled = True`` tells the engine to skip the chunked precompute).

All three read only ``(R,)`` state the engine already owns, so the per-slot
cost stays a fixed number of array operations.
"""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np

from repro.adversary.adaptive import BacklogCouplingAdversary
from repro.adversary.arrivals import (
    AdversarialQueueingArrivals,
    ArrivalProcess,
    BatchArrivals,
    NoArrivals,
    PeriodicBurstArrivals,
    PoissonArrivals,
)
from repro.adversary.jamming import (
    AdaptiveContentionJammer,
    BernoulliJamming,
    BudgetedRandomJamming,
    BurstJamming,
    Jammer,
    NoJamming,
    PeriodicJamming,
    ReactiveSuccessJammer,
    ReactiveTargetedJammer,
)
from repro.adversary.scheduled import ScheduledArrivals, ScheduledJamming
from repro.sim.vector.rng import VectorStreams

#: Slots of adversary schedule precomputed per chunk.
CHUNK_SLOTS = 512


# ---------------------------------------------------------------------------
# Arrival schedules
# ---------------------------------------------------------------------------


class VectorArrivals(abc.ABC):
    """Chunked arrival schedule for one batch."""

    #: True for schedules whose injections read the live backlog: the engine
    #: then calls :meth:`arrivals_now` each slot instead of :meth:`chunk`.
    coupled: bool = False

    def __init__(self, replications: int) -> None:
        self.replications = replications

    @abc.abstractmethod
    def chunk(self, start: int, count: int, streams: VectorStreams) -> np.ndarray:
        """Arrival counts for slots ``start .. start+count-1`` as ``(R, count)``."""

    def arrivals_now(
        self, slot: int, backlog_pre: np.ndarray, running: np.ndarray
    ) -> np.ndarray:
        """Per-slot arrival counts for coupled schedules (``coupled = True``)."""
        raise NotImplementedError

    @abc.abstractmethod
    def exhausted(self, slot: int) -> bool:
        """True when no packet can arrive at ``slot`` or later (all reps)."""

    def exhausted_rows(self, slot: int) -> np.ndarray | None:
        """Per-replication exhaustion mask, or ``None`` when uniform.

        Oblivious schedules exhaust at the same slot in every replication,
        so they return ``None`` and the engine uses :meth:`exhausted`;
        coupled schedules exhaust per row (each replication spends its
        packet budget on its own trajectory).
        """
        return None

    def capacity_bound(self) -> int | None:
        """Upper bound on total arrivals per replication, if known."""
        return None


class NoArrivalsVector(VectorArrivals):
    def __init__(self, process: NoArrivals, replications: int) -> None:
        super().__init__(replications)

    def chunk(self, start: int, count: int, streams: VectorStreams) -> np.ndarray:
        return np.zeros((self.replications, count), dtype=np.int64)

    def exhausted(self, slot: int) -> bool:
        return True

    def capacity_bound(self) -> int:
        return 0


class BatchArrivalsVector(VectorArrivals):
    def __init__(self, process: BatchArrivals, replications: int) -> None:
        super().__init__(replications)
        self._n = process.n
        self._slot = process.slot

    def chunk(self, start: int, count: int, streams: VectorStreams) -> np.ndarray:
        counts = np.zeros((self.replications, count), dtype=np.int64)
        if start <= self._slot < start + count:
            counts[:, self._slot - start] = self._n
        return counts

    def exhausted(self, slot: int) -> bool:
        return slot > self._slot

    def capacity_bound(self) -> int:
        return self._n


class PeriodicBurstArrivalsVector(VectorArrivals):
    def __init__(self, process: PeriodicBurstArrivals, replications: int) -> None:
        super().__init__(replications)
        self._process = process

    def chunk(self, start: int, count: int, streams: VectorStreams) -> np.ndarray:
        process = self._process
        slots = np.arange(start, start + count)
        offsets = slots - process.start
        burst = (offsets >= 0) & (offsets % process.period == 0)
        if process.num_bursts is not None:
            burst &= (offsets // process.period) < process.num_bursts
        row = np.where(burst, process.burst_size, 0).astype(np.int64)
        return np.broadcast_to(row, (self.replications, count)).copy()

    def exhausted(self, slot: int) -> bool:
        return self._process.exhausted(slot)

    def capacity_bound(self) -> int | None:
        return self._process.total_planned()


class PoissonArrivalsVector(VectorArrivals):
    def __init__(self, process: PoissonArrivals, replications: int) -> None:
        super().__init__(replications)
        self._rate = process.rate
        self._horizon = process.horizon

    def chunk(self, start: int, count: int, streams: VectorStreams) -> np.ndarray:
        counts = np.empty((self.replications, count), dtype=np.int64)
        for index, generator in enumerate(streams.adversary_generators):
            counts[index] = generator.poisson(self._rate, count)
        if self._horizon is not None and start + count > self._horizon:
            cutoff = max(0, self._horizon - start)
            counts[:, cutoff:] = 0
        if self._rate == 0.0:
            counts[:] = 0
        return counts

    def exhausted(self, slot: int) -> bool:
        return self._horizon is not None and slot >= self._horizon


class ScheduledArrivalsVector(VectorArrivals):
    """Piecewise schedule of arrival kernels, stitched along phase edges.

    Each phase owns the kernel of its component; a chunk that spans a
    phase boundary is assembled from per-phase sub-chunks queried at
    *phase-local* slots, mirroring the scalar adapter's local-clock
    semantics.  Chunk geometry is deterministic (the engine's fixed
    ``CHUNK_SLOTS`` grid), so the randomness consumed per phase is a
    deterministic function of the batch seeds.
    """

    def __init__(self, process: ScheduledArrivals, replications: int) -> None:
        super().__init__(replications)
        self._process = process
        self._schedule = process.schedule
        self._kernels = [
            make_arrivals_kernel(phase.component, replications)
            for phase in self._schedule.phases
        ]

    def chunk(self, start: int, count: int, streams: VectorStreams) -> np.ndarray:
        counts = np.zeros((self.replications, count), dtype=np.int64)
        for index, local_start, offset, length in self._schedule.segments(start, count):
            counts[:, offset : offset + length] = self._kernels[index].chunk(
                local_start, length, streams
            )
        return counts

    def exhausted(self, slot: int) -> bool:
        return self._process.exhausted(slot)

    def capacity_bound(self) -> int | None:
        return self._process.total_planned()


class AdversarialQueueingArrivalsVector(VectorArrivals):
    """(λ, S)-bounded adversarial-queuing schedule, chunked per window.

    ``front`` and ``uniform`` placements are deterministic, so one window
    plan (mirroring the scalar ``_plan_window`` exactly, including the
    ``int(k * stride)`` remainder spreading) broadcasts across rows.
    ``random`` placement draws each window's plan lazily per replication
    from the adversary generators — a different RNG than the scalar
    ``random.Random``, which is within the vector engine's statistical
    contract.  Windows can span chunk boundaries, so drawn plans are cached
    until the chunk grid moves past them.
    """

    def __init__(
        self, process: AdversarialQueueingArrivals, replications: int
    ) -> None:
        super().__init__(replications)
        self._process = process
        self._granularity = process.granularity
        self._budget = process.arrivals_per_window
        self._placement = process.placement
        self._horizon = process.horizon
        self._row_plan: np.ndarray | None = None
        self._plans: dict[int, np.ndarray] = {}
        if process.placement != "random":
            self._row_plan = self._deterministic_plan()

    def _deterministic_plan(self) -> np.ndarray:
        plan = np.zeros(self._granularity, dtype=np.int64)
        budget = self._budget
        if budget <= 0:
            return plan
        if self._placement == "front":
            plan[0] = budget
        else:  # uniform
            base, remainder = divmod(budget, self._granularity)
            plan[:] = base
            stride = self._granularity / remainder if remainder else 0.0
            for k in range(remainder):
                plan[int(k * stride)] += 1
        return plan

    def _window_plan(self, window: int, streams: VectorStreams) -> np.ndarray:
        plans = self._plans
        counts = plans.get(window)
        if counts is None:
            counts = np.zeros((self.replications, self._granularity), dtype=np.int64)
            for index, generator in enumerate(streams.adversary_generators):
                hits = generator.integers(0, self._granularity, size=self._budget)
                np.add.at(counts[index], hits, 1)
            plans[window] = counts
        return counts

    def chunk(self, start: int, count: int, streams: VectorStreams) -> np.ndarray:
        counts = np.zeros((self.replications, count), dtype=np.int64)
        if self._budget > 0:
            granularity = self._granularity
            first = start // granularity
            last = (start + count - 1) // granularity
            for window in range(first, last + 1):
                window_start = window * granularity
                low = max(start, window_start)
                high = min(start + count, window_start + granularity)
                if self._row_plan is not None:
                    segment = self._row_plan[low - window_start : high - window_start]
                else:
                    plan = self._window_plan(window, streams)
                    segment = plan[:, low - window_start : high - window_start]
                counts[:, low - start : high - start] = segment
            for stale in [w for w in self._plans if w < first]:
                del self._plans[stale]
        if self._horizon is not None and start + count > self._horizon:
            counts[:, max(0, self._horizon - start) :] = 0
        return counts

    def exhausted(self, slot: int) -> bool:
        return self._process.exhausted(slot)

    def capacity_bound(self) -> int | None:
        return self._process.total_planned()


class BacklogCouplingArrivalsVector(VectorArrivals):
    """Injection half of :class:`BacklogCouplingAdversary`: top up the backlog.

    Each slot injects ``min(target_backlog − backlog, remaining budget)``
    packets per replication (clipped at zero), reading the same
    pre-injection backlog array the jamming half sees — the coupling that
    makes the schedule impossible to precompute.  Exhaustion is per row:
    every replication spends its ``total_packets`` budget on its own
    backlog trajectory.
    """

    coupled = True

    def __init__(self, adversary: BacklogCouplingAdversary, replications: int) -> None:
        super().__init__(replications)
        self._target = int(adversary.target_backlog)
        self._total = int(adversary.total_packets)
        self._injected = np.zeros(replications, dtype=np.int64)

    def chunk(self, start: int, count: int, streams: VectorStreams) -> np.ndarray:
        raise RuntimeError(
            "backlog-coupled arrivals are computed per slot (arrivals_now)"
        )

    def arrivals_now(
        self, slot: int, backlog_pre: np.ndarray, running: np.ndarray
    ) -> np.ndarray:
        counts = np.minimum(self._target - backlog_pre, self._total - self._injected)
        np.clip(counts, 0, None, out=counts)
        counts[~running] = 0
        self._injected += counts
        return counts

    def exhausted(self, slot: int) -> bool:
        return bool(np.all(self._injected >= self._total))

    def exhausted_rows(self, slot: int) -> np.ndarray:
        return self._injected >= self._total

    def capacity_bound(self) -> int:
        return self._total


# ---------------------------------------------------------------------------
# Jamming kernels
# ---------------------------------------------------------------------------


JammerRows = Sequence[tuple[Jammer, int]]


def _jammer_rows(pairs: JammerRows) -> int:
    return sum(count for _, count in pairs)


def _jam_param(pairs: JammerRows, getter, none_as=None):
    """Promote a per-jammer parameter to a per-row ``(R,)`` array.

    Returns the plain (scalar) value when it is uniform across rows, so the
    single-config kernels keep their scalar early-outs; per-row arrays
    otherwise.  Both layouts produce identical per-row decisions, which is
    what keeps mega-batched jamming bit-identical to per-group runs.
    """
    values = []
    for jammer, _ in pairs:
        value = getter(jammer)
        values.append(none_as if value is None else value)
    if all(value == values[0] for value in values):
        return values[0]
    return np.repeat(
        np.asarray(values), [count for _, count in pairs]
    )


class VectorJammer(abc.ABC):
    """Per-slot jamming decisions for one batch, with budget bookkeeping.

    Built from ``(jammer, rows)`` pairs so a mega-batch can stack
    configurations of one jammer family with different parameters (promoted
    to per-row arrays); the single-pair case is the classic one-config
    batch.
    """

    #: True when :meth:`jam` can never return a jammed slot (lets the
    #: engine skip the jam masks entirely on the common unjammed path).
    never_jams: bool = False

    #: True when the kernel decides after seeing the slot's senders: the
    #: engine calls :meth:`reactive_jam` once the send masks are known.
    reactive: bool = False

    #: True when jam decisions read the pre-injection contention C(t): the
    #: engine calls :meth:`set_contention` each slot before :meth:`jam`.
    needs_contention: bool = False

    #: Sentinel for "no budget" rows when budgets are promoted per row.
    _NO_BUDGET = np.iinfo(np.int64).max

    def __init__(self, pairs: JammerRows) -> None:
        replications = _jammer_rows(pairs)
        self.replications = replications
        budget = _jam_param(
            pairs, lambda j: getattr(j, "budget", None), none_as=self._NO_BUDGET
        )
        if not isinstance(budget, np.ndarray) and budget == self._NO_BUDGET:
            budget = None
        self._budget = budget
        self._used = np.zeros(replications, dtype=np.int64)
        self._false = np.zeros(replications, dtype=bool)

    def begin_chunk(
        self,
        start: int,
        count: int,
        streams: VectorStreams,
        running: np.ndarray | None = None,
    ) -> None:
        """Draw whatever randomness the next ``count`` slots need.

        ``running`` masks replications whose execution already ended;
        their draws are skipped (nothing ever reads them — finish times
        are a deterministic function of the seeds, so skipping keeps runs
        bit-reproducible, exactly like the packet coin blocks).
        """

    @abc.abstractmethod
    def jam(self, slot: int, backlog_pre: np.ndarray, running: np.ndarray) -> np.ndarray:
        """Jamming decisions ``(R,)`` for ``slot``; spends the budget.

        ``backlog_pre`` is the backlog *before* this slot's injections (the
        state an adaptive jammer sees); ``running`` masks replications whose
        execution already ended, which therefore make no decisions at all.
        """

    def set_contention(self, contention: np.ndarray) -> None:
        """Receive the pre-injection contention per replication (``(R,)``).

        Only called when ``needs_contention``; the values are what a scalar
        adversary's ``SystemView.contention`` would report — the sum of the
        active packets' sending probabilities before this slot's injections.
        """

    def reactive_jam(
        self,
        slot: int,
        send: np.ndarray,
        num_senders: np.ndarray,
        backlog_pre: np.ndarray,
        running: np.ndarray,
        arrival_slot: np.ndarray,
        jammed: np.ndarray,
    ) -> np.ndarray:
        """Reactive decisions after the slot's senders are known.

        ``send`` is the raw ``(R, P)`` sender matrix (winners not yet
        removed), ``num_senders`` its per-row counts, and ``jammed`` the
        adaptive decisions already made; the return value replaces
        ``jammed``.  Only called when ``reactive``.
        """
        return jammed

    def jams_used(self) -> np.ndarray:
        return self._used.copy()

    def _apply_budget(self, decisions: np.ndarray) -> np.ndarray:
        if self._budget is not None:
            decisions &= self._used < self._budget
        self._used += decisions
        return decisions


class NoJammingVector(VectorJammer):
    never_jams = True

    def jam(self, slot: int, backlog_pre: np.ndarray, running: np.ndarray) -> np.ndarray:
        return self._false


class PeriodicJammingVector(VectorJammer):
    def __init__(self, pairs: JammerRows) -> None:
        super().__init__(pairs)
        self._period = _jam_param(pairs, lambda j: j.period)
        self._offset = _jam_param(pairs, lambda j: j.offset)

    def jam(self, slot: int, backlog_pre: np.ndarray, running: np.ndarray) -> np.ndarray:
        if not isinstance(self._period, np.ndarray) and not isinstance(
            self._offset, np.ndarray
        ):
            if slot < self._offset or (slot - self._offset) % self._period != 0:
                return self._false
            return self._apply_budget(running.copy())
        offset = slot - self._offset
        on_slot = (offset >= 0) & (offset % self._period == 0)
        if not on_slot.any():
            return self._false
        return self._apply_budget(running & on_slot)


class BurstJammingVector(VectorJammer):
    def __init__(self, pairs: JammerRows) -> None:
        super().__init__(pairs)
        # period=None (one-shot burst) promotes to 0 in the per-row layout.
        self._start = _jam_param(pairs, lambda j: j.start)
        self._length = _jam_param(pairs, lambda j: j.length)
        self._period = _jam_param(pairs, lambda j: j.period, none_as=0)

    def jam(self, slot: int, backlog_pre: np.ndarray, running: np.ndarray) -> np.ndarray:
        uniform = not any(
            isinstance(param, np.ndarray)
            for param in (self._start, self._length, self._period)
        )
        if uniform:
            if slot < self._start:
                return self._false
            offset = slot - self._start
            in_burst = (
                (offset % self._period) < self._length
                if self._period
                else offset < self._length
            )
            if not in_burst:
                return self._false
            return self._apply_budget(running.copy())
        offset = slot - self._start
        period = np.asarray(self._period)
        repeating = (offset % np.where(period > 0, period, 1)) < self._length
        one_shot = offset < self._length
        in_burst = (offset >= 0) & np.where(period > 0, repeating, one_shot)
        if not in_burst.any():
            return self._false
        return self._apply_budget(running & in_burst)


class BernoulliJammingVector(VectorJammer):
    def __init__(self, pairs: JammerRows) -> None:
        super().__init__(pairs)
        self._probability = _jam_param(pairs, lambda j: j.probability)
        self._only_active = _jam_param(pairs, lambda j: j.only_active)
        self._chunk_start = 0
        self._uniforms: np.ndarray | None = None

    def begin_chunk(
        self,
        start: int,
        count: int,
        streams: VectorStreams,
        running: np.ndarray | None = None,
    ) -> None:
        if self._uniforms is None or self._uniforms.shape[1] != count:
            self._uniforms = np.empty((self.replications, count), dtype=np.float64)
        for index, generator in enumerate(streams.adversary_generators):
            if running is None or running[index]:
                self._uniforms[index] = generator.random(count)
        self._chunk_start = start

    def jam(self, slot: int, backlog_pre: np.ndarray, running: np.ndarray) -> np.ndarray:
        assert self._uniforms is not None, "begin_chunk must precede jam"
        draws = self._uniforms[:, slot - self._chunk_start] < self._probability
        decisions = draws & running
        if isinstance(self._only_active, np.ndarray):
            decisions &= (backlog_pre > 0) | ~self._only_active
        elif self._only_active:
            decisions &= backlog_pre > 0
        return self._apply_budget(decisions)


class BudgetedRandomJammingVector(VectorJammer):
    """Spend a jamming budget uniformly at random before ``horizon``.

    Like :class:`BernoulliJammingVector`, uniforms are pre-drawn per chunk
    from the per-replication adversary generators (a different stream than
    the scalar ``random.Random`` — the statistical contract); the jam
    probability per row is ``budget / horizon``, gated on the horizon and
    the budget counter.
    """

    def __init__(self, pairs: JammerRows) -> None:
        super().__init__(pairs)
        self._horizon = _jam_param(pairs, lambda j: j.horizon)
        self._probability = _jam_param(pairs, lambda j: (j.budget or 0) / j.horizon)
        self._chunk_start = 0
        self._uniforms: np.ndarray | None = None

    def begin_chunk(
        self,
        start: int,
        count: int,
        streams: VectorStreams,
        running: np.ndarray | None = None,
    ) -> None:
        if self._uniforms is None or self._uniforms.shape[1] != count:
            self._uniforms = np.empty((self.replications, count), dtype=np.float64)
        for index, generator in enumerate(streams.adversary_generators):
            if running is None or running[index]:
                self._uniforms[index] = generator.random(count)
        self._chunk_start = start

    def jam(self, slot: int, backlog_pre: np.ndarray, running: np.ndarray) -> np.ndarray:
        if not isinstance(self._horizon, np.ndarray) and slot >= self._horizon:
            return self._false
        assert self._uniforms is not None, "begin_chunk must precede jam"
        draws = self._uniforms[:, slot - self._chunk_start] < self._probability
        decisions = draws & running
        if isinstance(self._horizon, np.ndarray):
            decisions &= slot < self._horizon
        return self._apply_budget(decisions)


class AdaptiveContentionJammerVector(VectorJammer):
    """Adaptive strategy: jam rows whose contention is in a target regime.

    The lockstep feedback loop hands the kernel each slot's pre-injection
    contention row vector (:meth:`set_contention`) — the same C(t) the
    scalar jammer reads from its ``SystemView`` — and the decision is an
    elementwise regime test gated on a non-empty backlog and the budget.
    """

    needs_contention = True

    _REGIME_CODES = {"low": 0, "good": 1, "high": 2, "any": 3}

    def __init__(self, pairs: JammerRows) -> None:
        super().__init__(pairs)
        self._c_low = _jam_param(pairs, lambda j: j.c_low)
        self._c_high = _jam_param(pairs, lambda j: j.c_high)
        regimes = [jammer.target_regime for jammer, _ in pairs]
        if all(regime == regimes[0] for regime in regimes):
            self._regime: str | np.ndarray = regimes[0]
        else:
            self._regime = np.repeat(
                np.asarray([self._REGIME_CODES[regime] for regime in regimes]),
                [count for _, count in pairs],
            )
        self._contention: np.ndarray | None = None

    def set_contention(self, contention: np.ndarray) -> None:
        self._contention = contention

    def jam(self, slot: int, backlog_pre: np.ndarray, running: np.ndarray) -> np.ndarray:
        contention = self._contention
        assert contention is not None, "set_contention must precede jam"
        regime = self._regime
        if isinstance(regime, str):
            if regime == "low":
                in_target = contention < self._c_low
            elif regime == "good":
                in_target = (self._c_low <= contention) & (contention <= self._c_high)
            elif regime == "high":
                in_target = contention > self._c_high
            else:  # any
                in_target = None
        else:
            in_target = np.choose(
                regime,
                [
                    contention < self._c_low,
                    (self._c_low <= contention) & (contention <= self._c_high),
                    contention > self._c_high,
                    np.ones(self.replications, dtype=bool),
                ],
            )
        decisions = running & (backlog_pre > 0)
        if in_target is not None:
            decisions &= in_target
        return self._apply_budget(decisions)


class ReactiveTargetedJammerVector(VectorJammer):
    """Reactive strategy: jam whenever the targeted packet transmits.

    The scalar jammer identifies its target from the pre-injection active
    set and then jams every slot the target sends; because packet ids are
    arrival-ordered column indices here, that reduces to the target column
    of the sender matrix, gated on ``arrival_slot < slot`` — a packet that
    arrives and would win in the same slot is never identified (the scalar
    jammer only sees it pre-injection), so its arrival-slot sends go
    unjammed, exactly as in the scalar engine.
    """

    reactive = True

    def __init__(self, pairs: JammerRows) -> None:
        super().__init__(pairs)
        self._target = _jam_param(pairs, lambda j: j.target_index)
        self._rows = np.arange(self.replications)

    def jam(self, slot: int, backlog_pre: np.ndarray, running: np.ndarray) -> np.ndarray:
        return self._false

    def reactive_jam(
        self,
        slot: int,
        send: np.ndarray,
        num_senders: np.ndarray,
        backlog_pre: np.ndarray,
        running: np.ndarray,
        arrival_slot: np.ndarray,
        jammed: np.ndarray,
    ) -> np.ndarray:
        capacity = send.shape[1]
        target = self._target
        if not isinstance(target, np.ndarray):
            if target >= capacity:
                return jammed
            target_sends = send[:, target]
            target_known = arrival_slot[:, target] < slot
        else:
            in_range = target < capacity
            safe = np.minimum(target, capacity - 1)
            target_sends = send[self._rows, safe] & in_range
            target_known = arrival_slot[self._rows, safe] < slot
        decisions = target_sends & target_known & running & ~jammed
        decisions = self._apply_budget(decisions)
        return jammed | decisions


class ReactiveSuccessJammerVector(VectorJammer):
    """Reactive strategy: jam every slot that would otherwise be a success."""

    reactive = True

    def jam(self, slot: int, backlog_pre: np.ndarray, running: np.ndarray) -> np.ndarray:
        return self._false

    def reactive_jam(
        self,
        slot: int,
        send: np.ndarray,
        num_senders: np.ndarray,
        backlog_pre: np.ndarray,
        running: np.ndarray,
        arrival_slot: np.ndarray,
        jammed: np.ndarray,
    ) -> np.ndarray:
        decisions = (num_senders == 1) & running & ~jammed
        decisions = self._apply_budget(decisions)
        return jammed | decisions


class BacklogCouplingJammingVector(VectorJammer):
    """Jamming half of :class:`BacklogCouplingAdversary`: jam at backlog 1.

    The budget lives on the adversary's ``jam_budget`` attribute (not
    ``budget``), so the base promotion is overridden; a zero budget across
    all rows degrades to a never-jamming kernel.
    """

    def __init__(self, pairs: JammerRows) -> None:
        super().__init__(pairs)
        budget = _jam_param(pairs, lambda j: j.jam_budget)
        self._budget = budget
        if not bool(np.any(np.asarray(budget))):
            self.never_jams = True

    def jam(self, slot: int, backlog_pre: np.ndarray, running: np.ndarray) -> np.ndarray:
        if self.never_jams:
            return self._false
        decisions = running & (backlog_pre == 1)
        return self._apply_budget(decisions)


class ScheduledJammingVector(VectorJammer):
    """Piecewise schedule of jamming kernels with per-phase budgets.

    Per-slot decisions dispatch to the active phase's kernel at the
    phase-local slot; randomness for chunks that span a phase boundary is
    pre-drawn per phase through :meth:`begin_chunk`, so each phase kernel
    sees exactly the (local) slot range it will be asked about.  Budget
    bookkeeping lives in the phase kernels (budgets are per phase, like
    the scalar adapter); ``jams_used`` sums them.

    Schedules never promote parameters per row (mega-batches only merge
    groups with *identical* schedules), so this kernel keeps the
    single-instance constructor.
    """

    def __init__(self, jammer: ScheduledJamming, replications: int) -> None:
        super().__init__([(jammer, replications)])
        self._schedule = jammer.schedule
        self._kernels = [
            make_jammer_kernel(phase.component, replications)
            for phase in self._schedule.phases
        ]
        self.never_jams = all(kernel.never_jams for kernel in self._kernels)

    def begin_chunk(
        self,
        start: int,
        count: int,
        streams: VectorStreams,
        running: np.ndarray | None = None,
    ) -> None:
        for index, local_start, _offset, length in self._schedule.segments(start, count):
            self._kernels[index].begin_chunk(local_start, length, streams, running)

    def jam(self, slot: int, backlog_pre: np.ndarray, running: np.ndarray) -> np.ndarray:
        located = self._schedule.phase_at(slot)
        if located is None:
            return self._false
        index, local_slot = located
        return self._kernels[index].jam(local_slot, backlog_pre, running)

    def jams_used(self) -> np.ndarray:
        used = np.zeros(self.replications, dtype=np.int64)
        for kernel in self._kernels:
            used += kernel.jams_used()
        return used


# ---------------------------------------------------------------------------
# Factories
# ---------------------------------------------------------------------------


def make_arrivals_kernel(process: Any, replications: int) -> VectorArrivals:
    if isinstance(process, ScheduledArrivals):
        return ScheduledArrivalsVector(process, replications)
    if isinstance(process, NoArrivals):
        return NoArrivalsVector(process, replications)
    if isinstance(process, BatchArrivals):
        return BatchArrivalsVector(process, replications)
    if isinstance(process, PoissonArrivals):
        return PoissonArrivalsVector(process, replications)
    if isinstance(process, PeriodicBurstArrivals):
        return PeriodicBurstArrivalsVector(process, replications)
    if isinstance(process, AdversarialQueueingArrivals):
        return AdversarialQueueingArrivalsVector(process, replications)
    if isinstance(process, BacklogCouplingAdversary):
        return BacklogCouplingArrivalsVector(process, replications)
    raise TypeError(f"no vector schedule for arrival process {type(process).__name__}")


def make_row_jammer_kernel(pairs: JammerRows) -> VectorJammer:
    """Build one jamming kernel covering every ``(jammer, rows)`` pair.

    All pairs must share one jammer family; parameters are promoted to
    per-row arrays.  Scheduled jamming never merges across distinct
    schedules (mega-batch compatibility requires identical schedules), so
    a scheduled kernel is always built from the first instance.
    """
    if not pairs:
        raise ValueError("at least one jammer row block is required")
    kinds = {type(jammer) for jammer, _ in pairs}
    if len(kinds) > 1:
        names = ", ".join(sorted(kind.__name__ for kind in kinds))
        raise TypeError(f"cannot stack different jammer types: {names}")
    jammer = pairs[0][0]
    if isinstance(jammer, ScheduledJamming):
        return ScheduledJammingVector(jammer, _jammer_rows(pairs))
    if isinstance(jammer, NoJamming):
        return NoJammingVector(pairs)
    if isinstance(jammer, PeriodicJamming):
        return PeriodicJammingVector(pairs)
    if isinstance(jammer, BurstJamming):
        return BurstJammingVector(pairs)
    if isinstance(jammer, BernoulliJamming):
        return BernoulliJammingVector(pairs)
    if isinstance(jammer, BudgetedRandomJamming):
        return BudgetedRandomJammingVector(pairs)
    if isinstance(jammer, AdaptiveContentionJammer):
        return AdaptiveContentionJammerVector(pairs)
    if isinstance(jammer, ReactiveTargetedJammer):
        return ReactiveTargetedJammerVector(pairs)
    if isinstance(jammer, ReactiveSuccessJammer):
        return ReactiveSuccessJammerVector(pairs)
    if isinstance(jammer, BacklogCouplingAdversary):
        return BacklogCouplingJammingVector(pairs)
    raise TypeError(f"no vector kernel for jammer {type(jammer).__name__}")


def make_jammer_kernel(jammer: Jammer, replications: int) -> VectorJammer:
    return make_row_jammer_kernel([(jammer, replications)])
