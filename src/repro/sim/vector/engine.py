"""The lockstep batch simulation engine.

:class:`VectorSimulator` runs *every replication of one configuration at
once*: packet protocol state, send decisions, channel resolution, ternary
feedback, and metric accumulation are all held as ``(replications ×
packets)`` numpy arrays, and one pass over the slot loop advances the whole
batch.  The per-slot cost is a fixed number of array operations, so the
interpreter overhead that dominates the scalar engine is paid once per slot
instead of once per packet per replication.

The engine reproduces the scalar engine's slot semantics exactly (same
decision order, same channel rules, same metric definitions, same
stop-when-drained condition) but draws its randomness from per-replication
Philox streams instead of per-packet ``random.Random`` streams.  Vector
results therefore agree with scalar results *statistically* — same Markov
chain, different coins — while repeated vector runs of the same batch are
bit-identical (see ``repro.analysis.equivalence`` for the checking
harness).

Outcome codes used internally: 0 empty, 1 success, 2 collision, 3 jammed.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.adversary.arrivals import ArrivalProcess
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import Jammer
from repro.metrics.collectors import MetricsCollector
from repro.protocols.base import BackoffProtocol
from repro.sim.results import PacketRecord, SimulationResult
from repro.sim.vector.adversaries import (
    CHUNK_SLOTS,
    make_arrivals_kernel,
    make_jammer_kernel,
)
from repro.sim.vector.protocols import make_protocol_kernel
from repro.sim.vector.rng import CoinBlocks, VectorStreams
from repro.sim.vector.support import adversary_support, protocol_support


class _SlotRecorder:
    """Growable ``(slots × replications)`` per-slot observation buffers."""

    def __init__(self, replications: int, initial_slots: int = 1024) -> None:
        self._replications = replications
        self._capacity = max(1, initial_slots)
        self.outcome = np.zeros((self._capacity, replications), dtype=np.int8)
        self.jammed = np.zeros((self._capacity, replications), dtype=bool)
        self.arrivals = np.zeros((self._capacity, replications), dtype=np.int32)
        self.active_before = np.zeros((self._capacity, replications), dtype=np.int32)
        self.active_after = np.zeros((self._capacity, replications), dtype=np.int32)
        self.num_senders = np.zeros((self._capacity, replications), dtype=np.int32)

    def _grow(self, needed: int) -> None:
        new_capacity = max(needed, self._capacity * 2)
        for name in (
            "outcome", "jammed", "arrivals", "active_before", "active_after", "num_senders"
        ):
            old = getattr(self, name)
            grown = np.zeros((new_capacity, self._replications), dtype=old.dtype)
            grown[: self._capacity] = old
            setattr(self, name, grown)
        self._capacity = new_capacity

    def record(
        self,
        slot: int,
        outcome: np.ndarray,
        jammed: np.ndarray,
        arrivals: np.ndarray,
        active_before: np.ndarray,
        active_after: np.ndarray,
        num_senders: np.ndarray,
    ) -> None:
        if slot >= self._capacity:
            self._grow(slot + 1)
        self.outcome[slot] = outcome
        self.jammed[slot] = jammed
        self.arrivals[slot] = arrivals
        self.active_before[slot] = active_before
        self.active_after[slot] = active_after
        self.num_senders[slot] = num_senders


class VectorSimulator:
    """Runs a batch of replications of one configuration in lockstep.

    Parameters
    ----------
    protocol, arrival_process, jammer:
        One supported configuration (see :mod:`repro.sim.vector.support`);
        the instances are read for their parameters only and never mutated.
    seeds:
        One master seed per replication.  Replications are independent; a
        batch's output is a deterministic function of this list.
    max_slots, stop_when_drained:
        Same meaning as on :class:`~repro.sim.config.SimulationConfig`.
    config_descriptions:
        Optional per-replication ``config_description`` dicts to embed in
        the results (defaults to a description assembled from the parts).
    """

    def __init__(
        self,
        protocol: BackoffProtocol,
        arrival_process: ArrivalProcess,
        jammer: Jammer,
        seeds: Sequence[int],
        *,
        max_slots: int = 200_000,
        stop_when_drained: bool = True,
        config_descriptions: Sequence[dict[str, Any]] | None = None,
    ) -> None:
        if not seeds:
            raise ValueError("at least one replication seed is required")
        if max_slots <= 0:
            raise ValueError("max_slots must be positive")
        reason = protocol_support(protocol)
        if reason is None:
            reason = adversary_support(CompositeAdversary(arrival_process, jammer))
        if reason is not None:
            raise ValueError(f"configuration cannot vectorize: {reason}")
        self._protocol = protocol
        self._arrival_process = arrival_process
        self._jammer = jammer
        self._seeds = [int(seed) for seed in seeds]
        self._max_slots = max_slots
        self._stop_when_drained = stop_when_drained
        if config_descriptions is not None:
            if len(config_descriptions) != len(self._seeds):
                raise ValueError("need one config description per seed")
            self._descriptions = list(config_descriptions)
        else:
            self._descriptions = [
                self._default_description(seed) for seed in self._seeds
            ]

    @classmethod
    def from_specs(cls, specs: Sequence[Any]) -> "VectorSimulator":
        """Build a batch from :class:`~repro.experiments.plan.RunSpec` items.

        All specs must share everything but the seed (which is exactly what
        :meth:`~repro.exec.vector_backend.VectorBackend` groups by).
        """
        if not specs:
            raise ValueError("at least one spec is required")
        configs = [spec.build_config() for spec in specs]
        first = configs[0]
        adversary = first.adversary
        if not isinstance(adversary, CompositeAdversary):
            raise ValueError("vector batches require a CompositeAdversary")
        for config in configs[1:]:
            if (
                config.protocol != first.protocol
                or config.adversary.describe() != first.adversary.describe()
                or config.max_slots != first.max_slots
                or config.stop_when_drained != first.stop_when_drained
                or config.collect_trace
                or config.collect_potential
            ):
                raise ValueError(
                    "a vector batch must replicate one configuration: all "
                    "specs must share the protocol, adversary, and engine "
                    "options, differing only in seed"
                )
        return cls(
            first.protocol,
            adversary.arrival_process,
            adversary.jammer,
            [config.seed for config in configs],
            max_slots=first.max_slots,
            stop_when_drained=first.stop_when_drained,
            config_descriptions=[config.describe() for config in configs],
        )

    def _default_description(self, seed: int) -> dict[str, Any]:
        adversary = CompositeAdversary(self._arrival_process, self._jammer)
        return {
            "protocol": self._protocol.describe(),
            "adversary": adversary.describe(),
            "seed": seed,
            "max_slots": self._max_slots,
            "stop_when_drained": self._stop_when_drained,
            "collect_trace": False,
            "collect_potential": False,
        }

    # -- Execution -----------------------------------------------------------

    def run(self) -> list[SimulationResult]:
        """Simulate every replication and return results in seed order."""
        replications = len(self._seeds)
        max_slots = self._max_slots
        streams = VectorStreams(self._seeds)
        arrivals = make_arrivals_kernel(self._arrival_process, replications)
        jammer = make_jammer_kernel(self._jammer, replications)

        bound = arrivals.capacity_bound()
        capacity = max(1, bound if bound is not None else 64)
        kernel = make_protocol_kernel(self._protocol, replications, capacity)
        coins = CoinBlocks(streams, capacity)

        active = np.zeros((replications, capacity), dtype=bool)
        arrival_slot = np.full((replications, capacity), -1, dtype=np.int64)
        departure_slot = np.full((replications, capacity), -1, dtype=np.int64)
        sends = np.zeros((replications, capacity), dtype=np.int64)
        cols = np.arange(capacity)

        injected = np.zeros(replications, dtype=np.int64)
        backlog = np.zeros(replications, dtype=np.int64)
        running = np.ones(replications, dtype=bool)
        num_slots = np.full(replications, max_slots, dtype=np.int64)
        recorder = _SlotRecorder(replications)

        stop_when_drained = self._stop_when_drained
        live = replications
        if stop_when_drained and arrivals.exhausted(0):
            # Nothing will ever arrive: every replication drains at slot 0.
            running[:] = False
            num_slots[:] = 0
            live = 0

        chunk_start = 0
        chunk_end = 0
        arrivals_chunk: np.ndarray | None = None
        slot_has_arrivals: list[bool] = []
        no_arrivals = np.zeros(replications, dtype=np.int64)
        send_buffer = np.empty((replications, capacity), dtype=bool)
        never_jams = jammer.never_jams

        slot = 0
        while slot < max_slots and live:
            if slot >= chunk_end:
                chunk_start = slot
                chunk_end = min(slot + CHUNK_SLOTS, max_slots)
                count = chunk_end - chunk_start
                arrivals_chunk = arrivals.chunk(chunk_start, count, streams)
                slot_has_arrivals = arrivals_chunk.any(axis=0).tolist()
                jammer.begin_chunk(chunk_start, count, streams)
            assert arrivals_chunk is not None

            backlog_pre = backlog
            if slot_has_arrivals[slot - chunk_start]:
                arriving = arrivals_chunk[:, slot - chunk_start] * running
                total_after = injected + arriving
                needed = int(total_after.max())
                if needed > capacity:
                    capacity = max(needed, capacity * 2)
                    grown = (
                        np.zeros((replications, capacity), dtype=bool),
                        np.full((replications, capacity), -1, dtype=np.int64),
                        np.full((replications, capacity), -1, dtype=np.int64),
                        np.zeros((replications, capacity), dtype=np.int64),
                    )
                    for old, new in zip(
                        (active, arrival_slot, departure_slot, sends), grown
                    ):
                        new[:, : old.shape[1]] = old
                    active, arrival_slot, departure_slot, sends = grown
                    cols = np.arange(capacity)
                    kernel.grow(capacity)
                    coins.resize(capacity)
                    send_buffer = np.empty((replications, capacity), dtype=bool)
                newly = (cols >= injected[:, None]) & (cols < total_after[:, None])
                active |= newly
                arrival_slot[newly] = slot
                kernel.init_packets(newly)
                injected = total_after
                backlog = backlog + arriving
            else:
                arriving = no_arrivals

            active_before = backlog
            jammed = jammer.jam(slot, backlog_pre, running)

            send = np.less(
                coins.coins(slot, running), kernel.probabilities, out=send_buffer
            )
            send &= active
            num_senders = np.count_nonzero(send, axis=1)
            total_senders = int(num_senders.sum())
            if never_jams:
                winners = running & (num_senders == 1)
            else:
                winners = running & ~jammed & (num_senders == 1)
            sends += send

            winner_rows = np.nonzero(winners)[0]
            if winner_rows.size:
                winner_cols = np.argmax(send[winner_rows], axis=1)
                active[winner_rows, winner_cols] = False
                departure_slot[winner_rows, winner_cols] = slot
                # The remaining senders are the losers of the slot.
                send[winner_rows, winner_cols] = False
            if total_senders > winner_rows.size:
                kernel.on_unsuccessful_send(send)
            backlog = backlog - winners

            outcome = (num_senders > 0).astype(np.int8)
            outcome += outcome
            outcome -= winners
            if not never_jams:
                outcome[jammed] = 3
            recorder.record(
                slot, outcome, jammed, arriving, active_before, backlog, num_senders
            )

            slot += 1
            if stop_when_drained and arrivals.exhausted(slot):
                finished = running & (backlog == 0)
                if finished.any():
                    num_slots[finished] = slot
                    running &= ~finished
                    live = int(np.count_nonzero(running))

        return self._finalize(
            recorder, num_slots, backlog, arrivals, injected,
            arrival_slot, departure_slot, sends,
        )

    # -- Finalisation --------------------------------------------------------

    def _finalize(
        self,
        recorder: _SlotRecorder,
        num_slots: np.ndarray,
        backlog: np.ndarray,
        arrivals: Any,
        injected: np.ndarray,
        arrival_slot: np.ndarray,
        departure_slot: np.ndarray,
        sends: np.ndarray,
    ) -> list[SimulationResult]:
        results = []
        for index, seed in enumerate(self._seeds):
            slots = int(num_slots[index])
            outcome = recorder.outcome[:slots, index]
            jammed = recorder.jammed[:slots, index]
            arriving = recorder.arrivals[:slots, index]
            active_before = recorder.active_before[:slots, index]
            active_after = recorder.active_after[:slots, index]
            num_senders = recorder.num_senders[:slots, index]
            was_active = active_before > 0

            collector = MetricsCollector(collect_series=True)
            collector.num_slots = slots
            collector.num_arrivals = int(arriving.sum())
            collector.num_successes = int((outcome == 1).sum())
            collector.num_collisions = int((outcome == 2).sum())
            collector.num_empty_active = int(((outcome == 0) & was_active).sum())
            collector.num_jammed = int(jammed.sum())
            collector.num_jammed_active = int((jammed & was_active).sum())
            collector.num_active_slots = int(was_active.sum())
            collector.total_sends = int(num_senders.sum())
            collector.total_listens = 0
            collector.backlog_series = active_after.tolist()
            collector.cumulative_arrivals = np.cumsum(arriving).tolist()
            collector.cumulative_successes = np.cumsum(outcome == 1).tolist()
            collector.cumulative_jammed_active = np.cumsum(jammed & was_active).tolist()
            collector.cumulative_active_slots = np.cumsum(was_active).tolist()

            packets = []
            for packet_id in range(int(injected[index])):
                departed_at = int(departure_slot[index, packet_id])
                packets.append(
                    PacketRecord(
                        packet_id=packet_id,
                        arrival_slot=int(arrival_slot[index, packet_id]),
                        departure_slot=None if departed_at < 0 else departed_at,
                        sends=int(sends[index, packet_id]),
                        listens=0,
                    )
                )

            results.append(
                SimulationResult(
                    config_description=self._descriptions[index],
                    protocol_name=self._protocol.name,
                    seed=seed,
                    num_slots=slots,
                    drained=bool(backlog[index] == 0) and arrivals.exhausted(slots),
                    collector=collector,
                    packets=packets,
                )
            )
        return results
