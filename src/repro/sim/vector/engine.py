"""The lockstep batch simulation engine.

:class:`VectorSimulator` runs *every replication of one configuration at
once*: packet protocol state, send decisions, channel resolution, ternary
feedback, and metric accumulation are all held as ``(replications ×
packets)`` numpy arrays, and one pass over the slot loop advances the whole
batch.  The per-slot cost is a fixed number of array operations, so the
interpreter overhead that dominates the scalar engine is paid once per slot
instead of once per packet per replication.

Two slot paths share the loop:

* **send-only protocols** compare one coin matrix against the kernel's
  probability matrix — nothing else ever feeds back into protocol state
  except an unsuccessful send;
* **sensing protocols** (LOW-SENSING BACKOFF, Sawtooth, full-sensing MW)
  additionally produce listener masks, and their state updates consume the
  engine's per-replication ternary feedback arrays — the ``(R,)`` idle /
  success / noise row masks derived from the sender counts and the jamming
  decisions, i.e. exactly what a scalar packet's ``FeedbackReport`` would
  say about its replication's channel.  Per-packet listen counters feed the
  energy metrics.

The engine also supports **mega-batches**: several configurations that
share one protocol/arrival/jammer kernel family (parameters promoted to
per-row arrays) stacked into a single ragged lockstep batch via
:meth:`VectorSimulator.from_spec_groups`.  Each configuration keeps its own
*segment* — its own coin-block geometry, capacity trajectory, and arrival
schedule — so every replication consumes exactly the random stream it would
consume in a standalone per-group batch, making mega-batched results
**bit-identical** to per-group vector execution (enforced by tests).  Only
the per-slot Python dispatch is shared, which is where the speedup lives.

The engine reproduces the scalar engine's slot semantics exactly (same
decision order, same channel rules, same metric definitions, same
stop-when-drained condition) but draws its randomness from per-replication
Philox streams instead of per-packet ``random.Random`` streams.  Vector
results therefore agree with scalar results *statistically* — same Markov
chain, different coins — while repeated vector runs of the same batch are
bit-identical (see ``repro.analysis.equivalence`` for the checking
harness).

Outcome codes used internally: 0 empty, 1 success, 2 collision, 3 jammed.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.telemetry import current as current_telemetry

from repro.adversary.adaptive import BacklogCouplingAdversary
from repro.adversary.arrivals import ArrivalProcess
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import Jammer
from repro.channel.feedback import SlotOutcome
from repro.channel.trace import ExecutionTrace, SlotRecord
from repro.core.potential import (
    PotentialCoefficients,
    PotentialSample,
    PotentialTracker,
)
from repro.metrics.collectors import MetricsCollector
from repro.protocols.base import BackoffProtocol
from repro.sim.results import PacketRecord, SimulationResult
from repro.sim.vector.adversaries import (
    CHUNK_SLOTS,
    make_arrivals_kernel,
    make_row_jammer_kernel,
)
from repro.sim.vector.protocols import make_protocol_row_kernel
from repro.sim.vector.rng import CoinBlocks, VectorStreams
from repro.sim.vector.support import (
    adversary_support,
    protocol_support,
    scheduled_identity,
)

#: Outcome-code → SlotOutcome lookup for trace materialisation.
_OUTCOMES = (
    SlotOutcome.EMPTY,
    SlotOutcome.SUCCESS,
    SlotOutcome.COLLISION,
    SlotOutcome.JAMMED,
)


def _sample_dynamics_gauges(
    j: int,
    kernel: Any,
    active: np.ndarray,
    listens: np.ndarray | None,
    dyn_prob_sum: np.ndarray,
    dyn_window_sum: np.ndarray,
    dyn_listens: np.ndarray,
    dyn_has_windows: bool,
) -> None:
    """Sample the live dynamics gauges into global-boundary row ``j``.

    Post-step state only; the cumulative sums reproduce the scalar
    engine's sequential ascending-id float additions bitwise (inactive
    cells add +0.0, a float no-op).  Rows that drained earlier read back
    their frozen end-of-run values — empty active mask, listens no longer
    growing — which is exactly what the scalar accumulator recorded for
    them.
    """
    probabilities = kernel.sending_probabilities()
    dyn_prob_sum[j] = np.where(active, probabilities, 0.0).cumsum(axis=1)[:, -1]
    if dyn_has_windows:
        windows = kernel.window_matrix()
        dyn_window_sum[j] = (
            np.where(active, windows, 0.0).cumsum(axis=1)[:, -1]
        )
    if listens is not None:
        dyn_listens[j] = listens.sum(axis=1)


class _WindowTermCache:
    """Memoised per-window potential terms, computed with ``math.log``.

    The scalar :class:`PotentialTracker` computes ``1 / math.log(w)`` and
    ``w / math.log(w) ** 2`` per window; ``np.log`` can differ from
    ``math.log`` by an ulp on rare inputs, so bit-for-bit parity requires
    routing every distinct window value through the exact same Python
    float operations.  Window values repeat massively across cells and
    slots (every cell walks the same discrete update lattice), so a sorted
    key array plus ``searchsorted`` amortises the Python-level ``math.log``
    calls to one per distinct value per run.
    """

    def __init__(self) -> None:
        self._terms: dict[float, tuple[float, float]] = {}
        self._keys = np.empty(0)
        self._inverse_log = np.empty(0)
        self._l = np.empty(0)

    def _ensure(self, values: np.ndarray) -> None:
        fresh = [
            value for value in np.unique(values).tolist() if value not in self._terms
        ]
        if not fresh:
            return
        for value in fresh:
            if value <= 1.0:
                # Same contract as the scalar PotentialSample.h_term.
                raise ValueError("potential tracking requires windows > 1")
            log = math.log(value)
            self._terms[value] = (1.0 / log, value / log**2)
        keys = sorted(self._terms)
        self._keys = np.array(keys)
        self._inverse_log = np.array([self._terms[key][0] for key in keys])
        self._l = np.array([self._terms[key][1] for key in keys])

    def inverse_log(self, values: np.ndarray) -> np.ndarray:
        """``1 / math.log(v)`` for each value (the H(t) contribution)."""
        self._ensure(values)
        return self._inverse_log[np.searchsorted(self._keys, values)]

    def l_term(self, values: np.ndarray) -> np.ndarray:
        """``v / math.log(v) ** 2`` for each value (the L(t) term)."""
        self._ensure(values)
        return self._l[np.searchsorted(self._keys, values)]


class _SlotRecorder:
    """Growable ``(slots × replications)`` per-slot observation buffers.

    The base buffers feed metric finalisation; the optional trace buffers
    (per-slot winner column and pre-injection contention) and potential
    buffers (H, L, Σ1/w, Φ) are only allocated when the batch collects the
    corresponding vectorized outputs.
    """

    _BASE_FIELDS = (
        ("outcome", np.int8, 0),
        ("jammed", bool, False),
        ("arrivals", np.int32, 0),
        ("active_before", np.int32, 0),
        ("active_after", np.int32, 0),
        ("num_senders", np.int32, 0),
    )
    _TRACE_FIELDS = (
        ("winner", np.int64, -1),
        ("contention", np.float64, 0.0),
    )
    _POTENTIAL_FIELDS = (
        ("h_term", np.float64, 0.0),
        ("l_term", np.float64, 0.0),
        ("inverse_window_sum", np.float64, 0.0),
        ("potential", np.float64, 0.0),
    )

    def __init__(
        self,
        replications: int,
        initial_slots: int = 1024,
        *,
        trace: bool = False,
        potential: bool = False,
    ) -> None:
        self._replications = replications
        self._capacity = max(1, initial_slots)
        self._fields = list(self._BASE_FIELDS)
        if trace:
            self._fields += list(self._TRACE_FIELDS)
        if potential:
            self._fields += list(self._POTENTIAL_FIELDS)
        for name, dtype, fill in self._fields:
            setattr(self, name, self._alloc(self._capacity, dtype, fill))

    def _alloc(self, capacity: int, dtype, fill) -> np.ndarray:
        buffer = np.full((capacity, self._replications), fill, dtype=dtype)
        return buffer

    def _grow(self, needed: int) -> None:
        new_capacity = max(needed, self._capacity * 2)
        for name, dtype, fill in self._fields:
            old = getattr(self, name)
            grown = self._alloc(new_capacity, dtype, fill)
            grown[: self._capacity] = old
            setattr(self, name, grown)
        self._capacity = new_capacity

    def record(
        self,
        slot: int,
        outcome: np.ndarray,
        jammed: np.ndarray,
        arrivals: np.ndarray,
        active_before: np.ndarray,
        active_after: np.ndarray,
        num_senders: np.ndarray,
    ) -> None:
        if slot >= self._capacity:
            self._grow(slot + 1)
        self.outcome[slot] = outcome
        self.jammed[slot] = jammed
        self.arrivals[slot] = arrivals
        self.active_before[slot] = active_before
        self.active_after[slot] = active_after
        self.num_senders[slot] = num_senders

    def record_trace(self, slot: int, winner: np.ndarray, contention: np.ndarray) -> None:
        self.winner[slot] = winner
        self.contention[slot] = contention

    def record_potential(
        self,
        slot: int,
        h_term: np.ndarray,
        l_term: np.ndarray,
        inverse_window_sum: np.ndarray,
        potential: np.ndarray,
    ) -> None:
        self.h_term[slot] = h_term
        self.l_term[slot] = l_term
        self.inverse_window_sum[slot] = inverse_window_sum
        self.potential[slot] = potential


class _GroupConfig:
    """One configuration replicated over seeds: a (mega-)batch building block."""

    __slots__ = ("protocol", "arrival_process", "jammer", "seeds", "descriptions")

    def __init__(
        self,
        protocol: BackoffProtocol,
        arrival_process: ArrivalProcess,
        jammer: Jammer,
        seeds: list[int],
        descriptions: list[dict[str, Any]],
    ) -> None:
        self.protocol = protocol
        self.arrival_process = arrival_process
        self.jammer = jammer
        self.seeds = seeds
        self.descriptions = descriptions


class _Segment:
    """One group's private execution geometry inside a (mega-)batch.

    The segment owns everything whose *randomness consumption* depends on
    the group rather than the whole batch: the arrival schedule kernel and
    the packet coin blocks, whose block geometry is a function of the
    group's replication count and capacity trajectory.  Keeping these per
    segment is what makes a mega-batch bit-identical to running each group
    in its own batch.
    """

    __slots__ = ("rows", "streams", "arrivals", "coins", "capacity", "exhausted", "live")

    def __init__(self, rows: slice, streams: Any, arrivals: Any, capacity: int) -> None:
        self.rows = rows
        self.streams = streams
        self.arrivals = arrivals
        self.coins = CoinBlocks(streams, capacity)
        self.capacity = capacity
        self.exhausted = False
        self.live = True


class VectorSimulator:
    """Runs a batch of replications of one configuration in lockstep.

    Parameters
    ----------
    protocol, arrival_process, jammer:
        One supported configuration (see :mod:`repro.sim.vector.support`);
        the instances are read for their parameters only and never mutated.
    seeds:
        One master seed per replication.  Replications are independent; a
        batch's output is a deterministic function of this list.
    max_slots, stop_when_drained:
        Same meaning as on :class:`~repro.sim.config.SimulationConfig`.
    config_descriptions:
        Optional per-replication ``config_description`` dicts to embed in
        the results (defaults to a description assembled from the parts).

    Mega-batches are built through :meth:`from_spec_groups`, which stacks
    several such configurations into one ragged lockstep batch.
    """

    def __init__(
        self,
        protocol: BackoffProtocol,
        arrival_process: ArrivalProcess,
        jammer: Jammer,
        seeds: Sequence[int],
        *,
        max_slots: int = 200_000,
        stop_when_drained: bool = True,
        collect_trace: bool = False,
        collect_potential: bool = False,
        potential_coefficients: PotentialCoefficients | None = None,
        config_descriptions: Sequence[dict[str, Any]] | None = None,
        dynamics_window: int = 0,
    ) -> None:
        if not seeds:
            raise ValueError("at least one replication seed is required")
        if max_slots <= 0:
            raise ValueError("max_slots must be positive")
        if dynamics_window < 0:
            raise ValueError("dynamics_window must be >= 0")
        reason = protocol_support(protocol)
        if reason is None:
            if arrival_process is jammer and isinstance(
                arrival_process, BacklogCouplingAdversary
            ):
                # A coupled adversary occupies both roles: its injection and
                # jamming kernels share the live backlog array.
                reason = adversary_support(arrival_process)
            else:
                reason = adversary_support(CompositeAdversary(arrival_process, jammer))
        if reason is not None:
            raise ValueError(f"configuration cannot vectorize: {reason}")
        seed_list = [int(seed) for seed in seeds]
        if config_descriptions is not None:
            if len(config_descriptions) != len(seed_list):
                raise ValueError("need one config description per seed")
            descriptions = list(config_descriptions)
        else:
            descriptions = [
                self._default_description(
                    protocol,
                    arrival_process,
                    jammer,
                    seed,
                    max_slots,
                    stop_when_drained,
                    collect_trace,
                    collect_potential,
                )
                for seed in seed_list
            ]
        self._groups = [
            _GroupConfig(protocol, arrival_process, jammer, seed_list, descriptions)
        ]
        self._max_slots = max_slots
        self._stop_when_drained = stop_when_drained
        self._collect_trace = collect_trace
        self._collect_potential = collect_potential
        self._potential_coefficients = (
            potential_coefficients
            if potential_coefficients is not None
            else PotentialCoefficients()
        )
        self._dynamics_window = dynamics_window

    # -- Construction ---------------------------------------------------------

    @classmethod
    def from_specs(cls, specs: Sequence[Any]) -> "VectorSimulator":
        """Build a batch from :class:`~repro.experiments.plan.RunSpec` items.

        All specs must share everything but the seed (which is exactly what
        :meth:`~repro.exec.vector_backend.VectorBackend` groups by).
        """
        group, options = cls._group_from_specs(specs)
        simulator = cls.__new__(cls)
        simulator._groups = [group]
        simulator._apply_options(options)
        return simulator

    def _apply_options(
        self,
        options: tuple[int, bool, bool, bool, PotentialCoefficients, int],
    ) -> None:
        (
            self._max_slots,
            self._stop_when_drained,
            self._collect_trace,
            self._collect_potential,
            self._potential_coefficients,
            self._dynamics_window,
        ) = options

    @classmethod
    def from_spec_groups(cls, spec_groups: Sequence[Sequence[Any]]) -> "VectorSimulator":
        """Stack several spec groups into one ragged lockstep mega-batch.

        Each inner sequence must be a valid :meth:`from_specs` group (one
        configuration replicated over seeds); across groups the protocol,
        arrival-process, and jammer classes must match exactly (parameters
        may differ — they are promoted to per-row arrays), scheduled
        components must be identical, and the engine options must agree.
        Results come back in input order and are bit-identical to running
        each group through its own :meth:`from_specs` batch.
        """
        if not spec_groups:
            raise ValueError("at least one spec group is required")
        built = [cls._group_from_specs(specs) for specs in spec_groups]
        groups = [group for group, _ in built]
        options = built[0][1]
        first = groups[0]
        if len(groups) > 1:
            if options[2] or options[3]:
                raise ValueError(
                    "trace and potential outputs are materialized per "
                    "lockstep batch; such groups cannot mega-batch"
                )
            if isinstance(first.arrival_process, BacklogCouplingAdversary):
                raise ValueError(
                    "backlog-coupled adversaries read the live backlog each "
                    "slot; such groups cannot mega-batch"
                )
        for group, group_options in built[1:]:
            if group_options != options:
                raise ValueError(
                    "mega-batched groups must share max_slots, "
                    "stop_when_drained, and collection options"
                )
            for mine, theirs, label in (
                (first.protocol, group.protocol, "protocol"),
                (first.arrival_process, group.arrival_process, "arrival process"),
                (first.jammer, group.jammer, "jammer"),
            ):
                if type(mine) is not type(theirs):
                    raise ValueError(
                        f"mega-batched groups must share one {label} class; "
                        f"got {type(mine).__name__} and {type(theirs).__name__}"
                    )
                if scheduled_identity(mine) != scheduled_identity(theirs):
                    raise ValueError(
                        f"mega-batched groups with a scheduled {label} must "
                        "share the schedule exactly"
                    )
        simulator = cls.__new__(cls)
        simulator._groups = groups
        simulator._apply_options(options)
        return simulator

    @classmethod
    def _group_from_specs(
        cls, specs: Sequence[Any]
    ) -> tuple[
        _GroupConfig, tuple[int, bool, bool, bool, PotentialCoefficients, int]
    ]:
        if not specs:
            raise ValueError("at least one spec is required")
        configs = [spec.build_config() for spec in specs]
        first = configs[0]
        adversary = first.adversary
        if isinstance(adversary, BacklogCouplingAdversary):
            # Coupled adversary: one instance fills both component roles.
            arrival_process: Any = adversary
            jammer: Any = adversary
        elif isinstance(adversary, CompositeAdversary):
            arrival_process = adversary.arrival_process
            jammer = adversary.jammer
        else:
            raise ValueError(
                "vector batches require a CompositeAdversary or a "
                "BacklogCouplingAdversary"
            )
        for config in configs[1:]:
            if (
                config.protocol != first.protocol
                or config.adversary.describe() != first.adversary.describe()
                or config.max_slots != first.max_slots
                or config.stop_when_drained != first.stop_when_drained
                or config.collect_trace != first.collect_trace
                or config.collect_potential != first.collect_potential
                or config.potential_coefficients != first.potential_coefficients
                or config.dynamics_window != first.dynamics_window
            ):
                raise ValueError(
                    "a vector batch must replicate one configuration: all "
                    "specs must share the protocol, adversary, and engine "
                    "options, differing only in seed"
                )
        reason = protocol_support(first.protocol)
        if reason is None:
            reason = adversary_support(adversary)
        if reason is not None:
            raise ValueError(f"configuration cannot vectorize: {reason}")
        group = _GroupConfig(
            first.protocol,
            arrival_process,
            jammer,
            [config.seed for config in configs],
            [config.describe() for config in configs],
        )
        options = (
            first.max_slots,
            first.stop_when_drained,
            first.collect_trace,
            first.collect_potential,
            first.potential_coefficients,
            first.dynamics_window,
        )
        return group, options

    @staticmethod
    def _default_description(
        protocol: BackoffProtocol,
        arrival_process: ArrivalProcess,
        jammer: Jammer,
        seed: int,
        max_slots: int,
        stop_when_drained: bool,
        collect_trace: bool = False,
        collect_potential: bool = False,
    ) -> dict[str, Any]:
        if arrival_process is jammer:
            adversary: Any = arrival_process
        else:
            adversary = CompositeAdversary(arrival_process, jammer)
        return {
            "protocol": protocol.describe(),
            "adversary": adversary.describe(),
            "seed": seed,
            "max_slots": max_slots,
            "stop_when_drained": stop_when_drained,
            "collect_trace": collect_trace,
            "collect_potential": collect_potential,
        }

    # -- Introspection --------------------------------------------------------

    @property
    def num_groups(self) -> int:
        """How many configurations this batch stacks (1 unless mega-batched)."""
        return len(self._groups)

    @property
    def _seeds(self) -> list[int]:
        return [seed for group in self._groups for seed in group.seeds]

    # -- Execution -----------------------------------------------------------

    def run(self) -> list[SimulationResult]:
        """Simulate every replication and return results in input order.

        The lockstep loop (:meth:`_simulate`) and result materialisation
        (:meth:`_finalize`) are timed as separate telemetry phases when a
        session is active, and the hot-loop counters (kernel invocations,
        slots simulated, feedback iterations, trace/potential
        materialisations) are all derived from post-loop state — nothing
        is sampled inside the per-slot path.
        """
        tele = current_telemetry()
        if not tele.enabled:
            finalize_args, _ = self._simulate()
            return self._finalize(*finalize_args)
        replications = len(self._seeds)
        with tele.span(
            "simulate",
            kind="phase",
            backend="vector",
            replications=replications,
            groups=self.num_groups,
        ):
            finalize_args, stats = self._simulate()
        with tele.span(
            "finalize", kind="phase", backend="vector", replications=replications
        ):
            results = self._finalize(*finalize_args)
        tele.counter("replications", replications, backend="vector")
        for name, value in stats.items():
            if value:
                tele.counter(name, value, backend="vector")
        return results

    def _simulate(self):
        """Run the lockstep loop; return (finalize args, post-loop stats)."""
        groups = self._groups
        max_slots = self._max_slots
        stop_when_drained = self._stop_when_drained
        seeds = self._seeds
        replications = len(seeds)
        streams = VectorStreams(seeds)

        segments: list[_Segment] = []
        start = 0
        for group in groups:
            stop = start + len(group.seeds)
            view = streams.slice(start, stop)
            arrivals = make_arrivals_kernel(group.arrival_process, len(group.seeds))
            bound = arrivals.capacity_bound()
            seg_capacity = max(1, bound if bound is not None else 64)
            segments.append(_Segment(slice(start, stop), view, arrivals, seg_capacity))
            start = stop
        multi = len(segments) > 1
        seg_starts = np.array([seg.rows.start for seg in segments], dtype=np.intp)

        capacity = max(seg.capacity for seg in segments)
        kernel = make_protocol_row_kernel(
            [(group.protocol, len(group.seeds)) for group in groups], capacity
        )
        jammer = make_row_jammer_kernel(
            [(group.jammer, len(group.seeds)) for group in groups]
        )
        sensing = kernel.sensing
        track_listens = kernel.listens
        reactive = jammer.reactive
        needs_contention = jammer.needs_contention
        collect_trace = self._collect_trace
        collect_potential = self._collect_potential
        # The lockstep feedback loop: pre-injection contention is computed
        # when an adaptive jammer (or the trace) consumes it, mirroring the
        # scalar engine's _track_contention gating.
        want_contention = needs_contention or collect_trace
        if any(seg.arrivals.coupled for seg in segments):
            if multi:
                raise ValueError(
                    "backlog-coupled adversaries cannot share a mega-batch"
                )
            coupled_arrivals = segments[0].arrivals
        else:
            coupled_arrivals = None

        active = np.zeros((replications, capacity), dtype=bool)
        arrival_slot = np.full((replications, capacity), -1, dtype=np.int64)
        departure_slot = np.full((replications, capacity), -1, dtype=np.int64)
        sends = np.zeros((replications, capacity), dtype=np.int64)
        listens = np.zeros((replications, capacity), dtype=np.int64) if track_listens else None
        cols = np.arange(capacity)

        injected = np.zeros(replications, dtype=np.int64)
        backlog = np.zeros(replications, dtype=np.int64)
        running = np.ones(replications, dtype=bool)
        num_slots = np.full(replications, max_slots, dtype=np.int64)
        recorder = _SlotRecorder(
            replications, trace=collect_trace, potential=collect_potential
        )

        # Vectorized trace output: per-slot sender/listener index pairs
        # (materialised into SlotRecords at finalisation).
        trace_senders: list[tuple[np.ndarray, np.ndarray]] = []
        trace_listeners: list[tuple[np.ndarray, np.ndarray]] = []
        # Vectorized potential accumulator state.
        has_windows = False
        if collect_potential:
            term_cache = _WindowTermCache()
            coeffs = self._potential_coefficients
            zero_row = np.zeros(replications)
            has_windows = kernel.window_matrix() is not None

        # Windowed dynamics gauge buffers: one row per global window
        # boundary, sampled post-step at boundary slots only — the per-slot
        # kernel path is untouched.  Counts are recovered from the recorder
        # at finalisation; only live gauges (probability sum, window sum,
        # cumulative listens) need boundary snapshots.  A drained row's
        # kernel state is frozen (empty active mask, no injections), so a
        # later global boundary reads exactly the values the row had when
        # it finished — no per-row boundary bookkeeping is needed.
        dynamics_window = self._dynamics_window
        dyn_prob_sum = dyn_window_sum = dyn_listens = None
        dyn_has_windows = False
        if dynamics_window:
            dyn_count = -(-max_slots // dynamics_window)
            dyn_prob_sum = np.zeros((dyn_count, replications))
            dyn_window_sum = np.zeros((dyn_count, replications))
            dyn_listens = np.zeros((dyn_count, replications), dtype=np.int64)
            dyn_has_windows = kernel.window_matrix() is not None

        # Per-replication arrival-exhaustion mask; monotone per segment, so
        # each segment's (pure) exhausted() is queried only until it flips.
        exhausted_rows = np.zeros(replications, dtype=bool)
        any_exhausted = False
        live = replications
        if stop_when_drained:
            for seg in segments:
                if seg.arrivals.exhausted(0):
                    # Nothing will ever arrive in this segment: all of its
                    # replications drain at slot 0.
                    seg.exhausted = True
                    seg.live = False
                    exhausted_rows[seg.rows] = True
                    num_slots[seg.rows] = 0
                    running[seg.rows] = False
                    any_exhausted = True
            if any_exhausted:
                live = int(np.count_nonzero(running))

        chunk_start = 0
        chunk_end = 0
        arrivals_chunk: np.ndarray | None = None
        slot_has_arrivals: list[bool] = []
        no_arrivals = np.zeros(replications, dtype=np.int64)
        send_buffer = np.empty((replications, capacity), dtype=bool)
        listen_buffer = np.empty((replications, capacity), dtype=bool) if sensing else None
        coin_buffer = np.empty((replications, capacity), dtype=np.float64) if multi else None
        never_jams = jammer.never_jams

        slot = 0
        while slot < max_slots and live:
            if slot >= chunk_end:
                chunk_start = slot
                chunk_end = min(slot + CHUNK_SLOTS, max_slots)
                count = chunk_end - chunk_start
                if coupled_arrivals is None:
                    if multi:
                        arrivals_chunk = np.zeros((replications, count), dtype=np.int64)
                        for seg in segments:
                            if seg.live:
                                arrivals_chunk[seg.rows] = seg.arrivals.chunk(
                                    chunk_start, count, seg.streams
                                )
                    else:
                        arrivals_chunk = segments[0].arrivals.chunk(
                            chunk_start, count, segments[0].streams
                        )
                    slot_has_arrivals = arrivals_chunk.any(axis=0).tolist()
                jammer.begin_chunk(chunk_start, count, streams, running)

            backlog_pre = backlog
            if want_contention:
                # Pre-injection contention with the *current* protocol state
                # — exactly the scalar SystemView's C(t).  The cumulative sum
                # reproduces the scalar's sequential ascending-id additions
                # bitwise (inactive cells add +0.0, a float no-op).
                probabilities = kernel.sending_probabilities()
                contention_pre = (
                    np.where(active, probabilities, 0.0).cumsum(axis=1)[:, -1]
                )
                if needs_contention:
                    jammer.set_contention(contention_pre)
            if coupled_arrivals is not None:
                arriving = coupled_arrivals.arrivals_now(slot, backlog_pre, running)
                inject = bool(arriving.any())
            elif slot_has_arrivals[slot - chunk_start]:
                assert arrivals_chunk is not None
                arriving = arrivals_chunk[:, slot - chunk_start] * running
                inject = True
            else:
                arriving = no_arrivals
                inject = False
            if inject:
                total_after = injected + arriving
                grew = False
                if multi:
                    needed_per_seg = np.maximum.reduceat(total_after, seg_starts)
                    for index, seg in enumerate(segments):
                        needed = int(needed_per_seg[index])
                        if needed > seg.capacity:
                            # Each segment grows on its own trajectory — the
                            # same doubling a standalone batch of this group
                            # would apply — keeping its coin geometry intact.
                            seg.capacity = max(needed, seg.capacity * 2)
                            seg.coins.resize(seg.capacity)
                            grew = True
                else:
                    seg = segments[0]
                    needed = int(total_after.max())
                    if needed > seg.capacity:
                        seg.capacity = max(needed, seg.capacity * 2)
                        seg.coins.resize(seg.capacity)
                        grew = True
                if grew:
                    new_capacity = max(seg.capacity for seg in segments)
                    if new_capacity > capacity:
                        capacity = new_capacity
                        grown = (
                            np.zeros((replications, capacity), dtype=bool),
                            np.full((replications, capacity), -1, dtype=np.int64),
                            np.full((replications, capacity), -1, dtype=np.int64),
                            np.zeros((replications, capacity), dtype=np.int64),
                        )
                        for old, new in zip(
                            (active, arrival_slot, departure_slot, sends), grown
                        ):
                            new[:, : old.shape[1]] = old
                        active, arrival_slot, departure_slot, sends = grown
                        if listens is not None:
                            grown_listens = np.zeros(
                                (replications, capacity), dtype=np.int64
                            )
                            grown_listens[:, : listens.shape[1]] = listens
                            listens = grown_listens
                        cols = np.arange(capacity)
                        kernel.grow(capacity)
                        send_buffer = np.empty((replications, capacity), dtype=bool)
                        if sensing:
                            listen_buffer = np.empty(
                                (replications, capacity), dtype=bool
                            )
                        if multi:
                            coin_buffer = np.empty(
                                (replications, capacity), dtype=np.float64
                            )
                newly = (cols >= injected[:, None]) & (cols < total_after[:, None])
                active |= newly
                arrival_slot[newly] = slot
                kernel.init_packets(newly)
                injected = total_after
                backlog = backlog + arriving

            active_before = backlog
            jammed = jammer.jam(slot, backlog_pre, running)

            if multi:
                coins = coin_buffer
                assert coins is not None
                for seg in segments:
                    if seg.live:
                        coins[seg.rows, : seg.capacity] = seg.coins.coins(
                            slot, running[seg.rows]
                        )
            else:
                coins = segments[0].coins.coins(slot, running)

            if sensing:
                assert listen_buffer is not None
                kernel.decide(coins, send_buffer, listen_buffer)
                send = send_buffer
                send &= active
                listen = listen_buffer
                listen &= active
            else:
                send = np.less(coins, kernel.probabilities, out=send_buffer)
                send &= active
            num_senders = np.count_nonzero(send, axis=1)
            total_senders = int(num_senders.sum())
            if reactive:
                # Step 3 of the scalar slot order: the reactive jammer sees
                # this slot's senders before the channel resolves.
                jammed = jammer.reactive_jam(
                    slot, send, num_senders, backlog_pre, running, arrival_slot, jammed
                )
            if collect_trace:
                # Captured before winner removal, so the winner is included
                # among the senders — as in the scalar SlotRecord.
                trace_senders.append(np.nonzero(send))
                if sensing:
                    trace_listeners.append(np.nonzero(listen))
            if never_jams:
                winners = running & (num_senders == 1)
            else:
                winners = running & ~jammed & (num_senders == 1)
            sends += send
            if listens is not None:
                listens += listen

            winner_rows = np.nonzero(winners)[0]
            if winner_rows.size:
                winner_cols = np.argmax(send[winner_rows], axis=1)
                active[winner_rows, winner_cols] = False
                departure_slot[winner_rows, winner_cols] = slot
                # The remaining senders are the losers of the slot.
                send[winner_rows, winner_cols] = False
            if collect_trace:
                winner_column = np.full(replications, -1, dtype=np.int64)
                if winner_rows.size:
                    winner_column[winner_rows] = winner_cols
            if sensing:
                # Per-replication ternary feedback: what every accessor of
                # that replication's channel heard this slot.  Winners are
                # already removed (they depart without a state update).
                if never_jams:
                    empty_rows = num_senders == 0
                    noise_rows = num_senders > 1
                else:
                    empty_rows = ~jammed & (num_senders == 0)
                    noise_rows = jammed | (num_senders > 1)
                kernel.on_feedback(empty_rows, noise_rows, send, listen, active)
            elif total_senders > winner_rows.size:
                kernel.on_unsuccessful_send(send)
            backlog = backlog - winners

            outcome = (num_senders > 0).astype(np.int8)
            outcome += outcome
            outcome -= winners
            if not never_jams:
                outcome[jammed] = 3
            recorder.record(
                slot, outcome, jammed, arriving, active_before, backlog, num_senders
            )
            if collect_trace:
                recorder.record_trace(slot, winner_column, contention_pre)
            if collect_potential:
                # Scalar step 5: Φ is sampled after feedback updates and the
                # winner's departure, from post-slot windows and backlog.
                if not has_windows:
                    recorder.record_potential(slot, zero_row, zero_row, zero_row, zero_row)
                else:
                    windows = kernel.window_matrix()
                    inverse_log = np.zeros_like(windows)
                    values = windows[active]
                    if values.size:
                        inverse_log[active] = term_cache.inverse_log(values)
                    h_row = inverse_log.cumsum(axis=1)[:, -1]
                    inverse_sum = (
                        np.where(active, 1.0 / windows, 0.0).cumsum(axis=1)[:, -1]
                    )
                    occupied = backlog > 0
                    l_row = np.zeros(replications)
                    if occupied.any():
                        peak = np.where(active, windows, -np.inf).max(axis=1)
                        l_row[occupied] = term_cache.l_term(peak[occupied])
                    phi = np.where(
                        occupied,
                        coeffs.alpha1 * backlog
                        + coeffs.alpha2 * h_row
                        + coeffs.alpha3 * l_row,
                        0.0,
                    )
                    recorder.record_potential(slot, h_row, l_row, inverse_sum, phi)

            if dynamics_window and (slot + 1) % dynamics_window == 0:
                # Post-step, like the scalar accumulator: feedback applied,
                # winners departed.  The cumulative sums reproduce the scalar
                # engine's sequential ascending-id float additions bitwise.
                _sample_dynamics_gauges(
                    slot // dynamics_window, kernel, active, listens,
                    dyn_prob_sum, dyn_window_sum, dyn_listens, dyn_has_windows,
                )

            slot += 1
            if stop_when_drained:
                for seg in segments:
                    if seg.live and not seg.exhausted:
                        per_row = seg.arrivals.exhausted_rows(slot)
                        if per_row is None:
                            if seg.arrivals.exhausted(slot):
                                seg.exhausted = True
                                exhausted_rows[seg.rows] = True
                                any_exhausted = True
                        elif per_row.any():
                            exhausted_rows[seg.rows] = per_row
                            any_exhausted = True
                            if per_row.all():
                                seg.exhausted = True
                if any_exhausted:
                    finished = running & exhausted_rows & (backlog == 0)
                    if finished.any():
                        num_slots[finished] = slot
                        running &= ~finished
                        live = int(np.count_nonzero(running))
                        if multi:
                            for seg in segments:
                                if seg.live and not running[seg.rows].any():
                                    seg.live = False

        if dynamics_window and slot % dynamics_window:
            # The loop ended mid-window (max_slots not a multiple of the
            # window, or every row drained): one final partial-window sample.
            _sample_dynamics_gauges(
                slot // dynamics_window, kernel, active, listens,
                dyn_prob_sum, dyn_window_sum, dyn_listens, dyn_has_windows,
            )

        # Post-loop telemetry stats: `slot` is exactly how many lockstep
        # kernel rounds ran, and every round of a reactive/adaptive batch
        # is one feedback-loop iteration (senders/contention handed back
        # to the jammer kernels).
        stats = {
            "kernel_invocations": int(slot),
            "slots_simulated": int(num_slots.sum()),
            "feedback_iterations": int(slot) if (reactive or needs_contention) else 0,
            "mega_batch_segments": len(segments),
            "trace_materialisations": replications if collect_trace else 0,
            "potential_materialisations": replications if collect_potential else 0,
            "dynamics_materialisations": replications if dynamics_window else 0,
        }
        dynamics_buffers = (
            (dyn_prob_sum, dyn_window_sum, dyn_listens, dyn_has_windows)
            if dynamics_window
            else None
        )
        finalize_args = (
            recorder, num_slots, backlog, segments, injected,
            arrival_slot, departure_slot, sends, listens,
            trace_senders, trace_listeners, has_windows, dynamics_buffers,
        )
        return finalize_args, stats

    # -- Finalisation --------------------------------------------------------

    def _finalize(
        self,
        recorder: _SlotRecorder,
        num_slots: np.ndarray,
        backlog: np.ndarray,
        segments: list[_Segment],
        injected: np.ndarray,
        arrival_slot: np.ndarray,
        departure_slot: np.ndarray,
        sends: np.ndarray,
        listens: np.ndarray | None,
        trace_senders: list[tuple[np.ndarray, np.ndarray]],
        trace_listeners: list[tuple[np.ndarray, np.ndarray]],
        has_windows: bool,
        dynamics_buffers: tuple | None,
    ) -> list[SimulationResult]:
        descriptions = [
            description for group in self._groups for description in group.descriptions
        ]
        protocol_names = [
            group.protocol.name for group in self._groups for _ in group.seeds
        ]
        seeds = self._seeds
        if dynamics_buffers is not None:
            from repro.dynamics.trajectory import jammer_budget
        results = []
        for group, seg in zip(self._groups, segments):
            group_budget = (
                jammer_budget(group.jammer)
                if dynamics_buffers is not None
                else None
            )
            for index in range(seg.rows.start, seg.rows.stop):
                slots = int(num_slots[index])
                outcome = recorder.outcome[:slots, index]
                jammed = recorder.jammed[:slots, index]
                arriving = recorder.arrivals[:slots, index]
                active_before = recorder.active_before[:slots, index]
                active_after = recorder.active_after[:slots, index]
                num_senders = recorder.num_senders[:slots, index]
                was_active = active_before > 0

                collector = MetricsCollector(collect_series=True)
                collector.num_slots = slots
                collector.num_arrivals = int(arriving.sum())
                collector.num_successes = int((outcome == 1).sum())
                collector.num_collisions = int((outcome == 2).sum())
                collector.num_empty_active = int(((outcome == 0) & was_active).sum())
                collector.num_jammed = int(jammed.sum())
                collector.num_jammed_active = int((jammed & was_active).sum())
                collector.num_active_slots = int(was_active.sum())
                collector.total_sends = int(num_senders.sum())
                collector.total_listens = (
                    int(listens[index].sum()) if listens is not None else 0
                )
                collector.backlog_series = active_after.tolist()
                collector.cumulative_arrivals = np.cumsum(arriving).tolist()
                collector.cumulative_successes = np.cumsum(outcome == 1).tolist()
                collector.cumulative_jammed_active = np.cumsum(
                    jammed & was_active
                ).tolist()
                collector.cumulative_active_slots = np.cumsum(was_active).tolist()

                packets = []
                for packet_id in range(int(injected[index])):
                    departed_at = int(departure_slot[index, packet_id])
                    packets.append(
                        PacketRecord(
                            packet_id=packet_id,
                            arrival_slot=int(arrival_slot[index, packet_id]),
                            departure_slot=None if departed_at < 0 else departed_at,
                            sends=int(sends[index, packet_id]),
                            listens=(
                                int(listens[index, packet_id])
                                if listens is not None
                                else 0
                            ),
                        )
                    )

                trace = None
                if self._collect_trace:
                    trace = self._materialize_trace(
                        recorder,
                        index,
                        slots,
                        trace_senders,
                        trace_listeners,
                    )
                potential = None
                if self._collect_potential:
                    potential = self._materialize_potential(
                        recorder, index, slots, active_after, has_windows
                    )
                dynamics = None
                if dynamics_buffers is not None:
                    dynamics = self._materialize_dynamics(
                        recorder, index, slots, dynamics_buffers, group_budget
                    )

                per_row_exhausted = seg.arrivals.exhausted_rows(slots)
                if per_row_exhausted is None:
                    arrivals_done = seg.arrivals.exhausted(slots)
                else:
                    arrivals_done = bool(
                        per_row_exhausted[index - seg.rows.start]
                    )
                results.append(
                    SimulationResult(
                        config_description=descriptions[index],
                        protocol_name=protocol_names[index],
                        seed=seeds[index],
                        num_slots=slots,
                        drained=bool(backlog[index] == 0) and arrivals_done,
                        collector=collector,
                        packets=packets,
                        trace=trace,
                        potential=potential,
                        dynamics=dynamics,
                    )
                )
        return results

    def _materialize_dynamics(
        self,
        recorder: _SlotRecorder,
        index: int,
        slots: int,
        dynamics_buffers: tuple,
        budget: float | None,
    ):
        """Expand one row's recorder columns + gauge buffers into a trajectory.

        Counts come from cumulative sums of the per-slot recorder columns at
        each window end; the gauges come from the global boundary buffers,
        whose row values are frozen once a replication drains — so every
        snapshot matches what the scalar accumulator would have sampled at
        that row's own boundaries.  The snapshots then flow through the same
        :func:`~repro.dynamics.trajectory.build_trajectory` the scalar
        engine uses, making equal snapshots bit-identical trajectories.
        """
        from repro.dynamics.trajectory import WindowSnapshot, build_trajectory

        window = self._dynamics_window
        dyn_prob_sum, dyn_window_sum, dyn_listens, dyn_has_windows = (
            dynamics_buffers
        )
        snapshots = []
        if slots:
            outcome = recorder.outcome[:slots, index]
            cumulative_arrivals = np.cumsum(recorder.arrivals[:slots, index])
            cumulative_successes = np.cumsum(outcome == 1)
            cumulative_collisions = np.cumsum(outcome == 2)
            cumulative_jammed = np.cumsum(recorder.jammed[:slots, index])
            cumulative_sends = np.cumsum(recorder.num_senders[:slots, index])
            active_after = recorder.active_after[:slots, index]
            for j in range(-(-slots // window)):
                end = min((j + 1) * window, slots) - 1
                backlog = int(active_after[end])
                snapshots.append(
                    WindowSnapshot(
                        num_slots=end + 1,
                        arrivals=int(cumulative_arrivals[end]),
                        successes=int(cumulative_successes[end]),
                        collisions=int(cumulative_collisions[end]),
                        jammed=int(cumulative_jammed[end]),
                        sends=int(cumulative_sends[end]),
                        listens=int(dyn_listens[j, index]),
                        backlog=backlog,
                        window_sum=(
                            float(dyn_window_sum[j, index])
                            if dyn_has_windows
                            else 0.0
                        ),
                        window_count=backlog if dyn_has_windows else 0,
                        probability_sum=float(dyn_prob_sum[j, index]),
                    )
                )
        return build_trajectory(window, slots, snapshots, budget=budget)

    def _materialize_trace(
        self,
        recorder: _SlotRecorder,
        index: int,
        slots: int,
        trace_senders: list[tuple[np.ndarray, np.ndarray]],
        trace_listeners: list[tuple[np.ndarray, np.ndarray]],
    ) -> ExecutionTrace:
        """Expand per-slot event arrays into the scalar engine's trace form.

        Packet ids are assigned in injection order (as the scalar engine
        does), and sender/listener tuples come out in ascending packet-id
        order, which matches the scalar engine's iteration over its active
        dict.
        """
        arrivals = recorder.arrivals[:slots, index]
        outcome = recorder.outcome[:slots, index]
        jammed = recorder.jammed[:slots, index]
        active_before = recorder.active_before[:slots, index]
        active_after = recorder.active_after[:slots, index]
        winner = recorder.winner[:slots, index]
        contention = recorder.contention[:slots, index]
        potential = (
            recorder.potential[:slots, index] if self._collect_potential else None
        )
        records = []
        next_packet_id = 0
        for s in range(slots):
            count = int(arrivals[s])
            arrival_ids = tuple(range(next_packet_id, next_packet_id + count))
            next_packet_id += count
            rows_idx, cols_idx = trace_senders[s]
            senders = tuple(int(c) for c in cols_idx[rows_idx == index])
            if trace_listeners:
                rows_idx, cols_idx = trace_listeners[s]
                listeners = tuple(int(c) for c in cols_idx[rows_idx == index])
            else:
                listeners = ()
            winner_id = int(winner[s])
            records.append(
                SlotRecord(
                    slot=s,
                    outcome=_OUTCOMES[int(outcome[s])],
                    jammed=bool(jammed[s]),
                    arrivals=arrival_ids,
                    senders=senders,
                    listeners=listeners,
                    winner=None if winner_id < 0 else winner_id,
                    active_before=int(active_before[s]),
                    active_after=int(active_after[s]),
                    contention=float(contention[s]),
                    potential=(
                        float(potential[s]) if potential is not None else None
                    ),
                )
            )
        return ExecutionTrace(records=records)

    def _materialize_potential(
        self,
        recorder: _SlotRecorder,
        index: int,
        slots: int,
        active_after: np.ndarray,
        has_windows: bool,
    ) -> PotentialTracker:
        """Expand the vectorized Φ accumulator into a scalar tracker."""
        tracker = PotentialTracker(self._potential_coefficients)
        h_col = recorder.h_term[:slots, index]
        l_col = recorder.l_term[:slots, index]
        inverse_col = recorder.inverse_window_sum[:slots, index]
        phi_col = recorder.potential[:slots, index]
        tracker.samples = [
            PotentialSample(
                slot=s,
                num_packets=int(active_after[s]) if has_windows else 0,
                h_term=float(h_col[s]),
                l_term=float(l_col[s]),
                contention=float(inverse_col[s]),
                potential=float(phi_col[s]),
            )
            for s in range(slots)
        ]
        return tracker
