"""Batched protocol kernels.

A kernel holds the protocol state of *every* packet of *every* replication
in ``(replications × packets)`` arrays and exposes the two operations the
vector engine needs per slot:

* ``probabilities`` — the current per-packet sending probability matrix
  (maintained incrementally, so a slot touches only the cells that changed);
* ``on_unsuccessful_send`` — the ternary-feedback update for packets that
  sent and did not succeed (collision or jammed slot), which is the *only*
  feedback any send-only protocol reacts to.

All supported protocols are send-only (they never listen), which the engine
relies on when it skips listener accounting entirely.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.protocols.base import BackoffProtocol
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.fixed_probability import FixedProbabilityProtocol
from repro.protocols.polynomial_backoff import PolynomialBackoff


class VectorProtocolKernel(abc.ABC):
    """Lockstep protocol state for one batch."""

    def __init__(self, replications: int, capacity: int) -> None:
        self.replications = replications
        self.capacity = capacity

    @abc.abstractmethod
    def grow(self, capacity: int) -> None:
        """Extend the packet dimension to ``capacity`` columns."""

    @abc.abstractmethod
    def init_packets(self, newly: np.ndarray) -> None:
        """Initialise state for freshly injected packets (boolean mask)."""

    @property
    @abc.abstractmethod
    def probabilities(self) -> np.ndarray | float:
        """Per-packet sending probabilities (matrix, or a scalar broadcast)."""

    def on_unsuccessful_send(self, losers: np.ndarray) -> None:
        """Feedback update for packets that sent and did not succeed."""


class FixedProbabilityKernel(VectorProtocolKernel):
    """Constant sending probability; feedback never changes it."""

    def __init__(
        self, protocol: FixedProbabilityProtocol, replications: int, capacity: int
    ) -> None:
        super().__init__(replications, capacity)
        self._probability = float(protocol.probability)

    def grow(self, capacity: int) -> None:
        self.capacity = capacity

    def init_packets(self, newly: np.ndarray) -> None:
        return None

    @property
    def probabilities(self) -> float:
        return self._probability


class BinaryExponentialKernel(VectorProtocolKernel):
    """Window per packet; doubles (up to a cap) on every unsuccessful send."""

    def __init__(
        self, protocol: BinaryExponentialBackoff, replications: int, capacity: int
    ) -> None:
        super().__init__(replications, capacity)
        self._initial_window = float(protocol.initial_window)
        self._backoff_factor = float(protocol.backoff_factor)
        self._max_window = protocol.max_window
        self._window = np.full((replications, capacity), self._initial_window)
        self._inverse = np.full((replications, capacity), 1.0 / self._initial_window)

    def grow(self, capacity: int) -> None:
        extra = capacity - self.capacity
        if extra <= 0:
            return
        self._window = np.concatenate(
            [self._window, np.full((self.replications, extra), self._initial_window)],
            axis=1,
        )
        self._inverse = np.concatenate(
            [self._inverse, np.full((self.replications, extra), 1.0 / self._initial_window)],
            axis=1,
        )
        self.capacity = capacity

    def init_packets(self, newly: np.ndarray) -> None:
        self._window[newly] = self._initial_window
        self._inverse[newly] = 1.0 / self._initial_window

    @property
    def probabilities(self) -> np.ndarray:
        return self._inverse

    def on_unsuccessful_send(self, losers: np.ndarray) -> None:
        grown = self._window[losers] * self._backoff_factor
        if self._max_window is not None:
            np.minimum(grown, self._max_window, out=grown)
        self._window[losers] = grown
        self._inverse[losers] = 1.0 / grown


class PolynomialKernel(VectorProtocolKernel):
    """Collision count per packet; window is ``w0 * (collisions+1)**degree``."""

    def __init__(
        self, protocol: PolynomialBackoff, replications: int, capacity: int
    ) -> None:
        super().__init__(replications, capacity)
        self._initial_window = float(protocol.initial_window)
        self._degree = float(protocol.degree)
        self._collisions = np.zeros((replications, capacity), dtype=np.int64)
        self._inverse = np.full((replications, capacity), 1.0 / self._initial_window)

    def grow(self, capacity: int) -> None:
        extra = capacity - self.capacity
        if extra <= 0:
            return
        self._collisions = np.concatenate(
            [self._collisions, np.zeros((self.replications, extra), dtype=np.int64)],
            axis=1,
        )
        self._inverse = np.concatenate(
            [self._inverse, np.full((self.replications, extra), 1.0 / self._initial_window)],
            axis=1,
        )
        self.capacity = capacity

    def init_packets(self, newly: np.ndarray) -> None:
        self._collisions[newly] = 0
        self._inverse[newly] = 1.0 / self._initial_window

    @property
    def probabilities(self) -> np.ndarray:
        return self._inverse

    def on_unsuccessful_send(self, losers: np.ndarray) -> None:
        bumped = self._collisions[losers] + 1
        self._collisions[losers] = bumped
        self._inverse[losers] = 1.0 / (
            self._initial_window * (bumped + 1.0) ** self._degree
        )


def make_protocol_kernel(
    protocol: BackoffProtocol, replications: int, capacity: int
) -> VectorProtocolKernel:
    """Build the kernel for a supported protocol (see ``support.py``)."""
    if isinstance(protocol, BinaryExponentialBackoff):
        return BinaryExponentialKernel(protocol, replications, capacity)
    if isinstance(protocol, PolynomialBackoff):
        return PolynomialKernel(protocol, replications, capacity)
    if isinstance(protocol, FixedProbabilityProtocol):
        return FixedProbabilityKernel(protocol, replications, capacity)
    raise TypeError(f"no vector kernel for protocol {type(protocol).__name__}")
