"""Batched protocol kernels.

A kernel holds the protocol state of *every* packet of *every* replication
in ``(replications × packets)`` arrays.  Two slot interfaces exist:

* **send-only kernels** (``sensing = False``) expose ``probabilities`` — the
  per-packet sending probability matrix, maintained incrementally — and
  ``on_unsuccessful_send``, the only feedback a send-only protocol reacts
  to;
* **sensing kernels** (``sensing = True``) expose ``decide``, which turns
  one uniform coin matrix into disjoint send/listen masks, and
  ``on_feedback``, which consumes the engine's per-replication ternary
  feedback arrays (idle / success / noise rows) exactly the way the scalar
  protocol's ``observe`` consumes its :class:`FeedbackReport`.

The scalar sensing protocols draw *two* coins per access decision (listen
first, then send-given-access); the kernels collapse each trichotomy onto a
single uniform — ``u < T_send`` sends, ``T_send ≤ u < T_access`` listens,
the rest sleeps — which is the same joint distribution with half the
randomness.  Vector results are therefore statistically (not bitwise)
equivalent to scalar results, which is already the vector engine's
contract.

Every kernel is built from a list of ``(protocol, replications)`` pairs so
that a mega-batch can stack configurations that share a kernel family but
differ in parameters: parameters are promoted to per-row columns.  All
per-cell state updates are elementwise, so the values a row's cells take
are bit-identical whether the row runs in its own batch or inside a larger
stacked batch — the property mega-batching relies on.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Sequence

import numpy as np

from repro.core.low_sensing import DecoupledLowSensingBackoff, LowSensingBackoff
from repro.protocols.base import BackoffProtocol
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.fixed_probability import FixedProbabilityProtocol
from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights
from repro.protocols.polynomial_backoff import PolynomialBackoff
from repro.protocols.sawtooth import SawtoothBackoff

#: One kernel-family slice of a (mega-)batch: a protocol instance and the
#: number of consecutive replication rows it governs.
ProtocolRows = Sequence[tuple[BackoffProtocol, int]]


def _rows(pairs: ProtocolRows) -> int:
    return sum(count for _, count in pairs)


def _param_column(
    pairs: ProtocolRows, getter: Callable[[Any], float], none_as: float | None = None
) -> float | np.ndarray:
    """Promote a per-protocol parameter to a per-row column.

    Returns a plain float when the parameter is uniform across all rows (the
    single-group case, and the common mega case) so the kernels keep their
    scalar fast paths; otherwise a read-only ``(R, 1)`` float column that
    broadcasts against the ``(R, P)`` state matrices.  Elementwise numpy
    arithmetic yields bit-identical cell values either way.
    """
    values = []
    for protocol, _ in pairs:
        value = getter(protocol)
        values.append(none_as if value is None else float(value))
    if all(value == values[0] for value in values):
        return values[0]
    column = np.repeat(
        np.asarray(values, dtype=np.float64), [count for _, count in pairs]
    )[:, None]
    column.setflags(write=False)
    return column


def _cells(param: float | np.ndarray, mask: np.ndarray) -> float | np.ndarray:
    """The parameter's value at each True cell of ``mask`` (scalar or 1-D)."""
    if isinstance(param, np.ndarray):
        return np.broadcast_to(param, mask.shape)[mask]
    return param


class VectorProtocolKernel(abc.ABC):
    """Lockstep protocol state for one batch."""

    #: True for kernels that consume the per-replication feedback arrays
    #: (``on_feedback``) instead of the send-only ``on_unsuccessful_send``.
    sensing = False

    #: True when ``decide`` can mark packets as listeners (the engine then
    #: maintains per-packet listen counters; send-only kernels skip them).
    listens = False

    def __init__(self, replications: int, capacity: int) -> None:
        self.replications = replications
        self.capacity = capacity

    @abc.abstractmethod
    def grow(self, capacity: int) -> None:
        """Extend the packet dimension to ``capacity`` columns."""

    @abc.abstractmethod
    def init_packets(self, newly: np.ndarray) -> None:
        """Initialise state for freshly injected packets (boolean mask)."""

    # -- Introspection (contention and potential accounting) -----------------

    def sending_probabilities(self) -> np.ndarray | float:
        """Per-packet sending probabilities, for contention accounting.

        Matches the scalar states' ``sending_probability()`` exactly;
        defaults to :attr:`probabilities` (correct for send-only kernels),
        sensing kernels override with their send thresholds.
        """
        return self.probabilities

    def window_matrix(self) -> np.ndarray | None:
        """Per-packet backoff windows, ``None`` for windowless protocols.

        Mirrors the scalar states' optional ``window`` attribute, which
        feeds the potential tracker; kernels without a window (fixed
        probability, multiplicative weights) return ``None`` and the
        potential degrades to empty samples, as on the scalar engine.
        """
        return None

    # -- Send-only interface -------------------------------------------------

    @property
    def probabilities(self) -> np.ndarray | float:
        """Per-packet sending probabilities (matrix, or a scalar broadcast)."""
        raise NotImplementedError

    def on_unsuccessful_send(self, losers: np.ndarray) -> None:
        """Feedback update for packets that sent and did not succeed."""

    # -- Sensing interface ---------------------------------------------------

    def decide(
        self, coins: np.ndarray, send_out: np.ndarray, listen_out: np.ndarray
    ) -> None:
        """Fill disjoint raw send/listen masks from one uniform coin matrix.

        The engine masks both outputs by the active-packet matrix afterwards,
        so kernels need not care about inactive cells.
        """
        raise NotImplementedError

    def on_feedback(
        self,
        empty_rows: np.ndarray,
        noise_rows: np.ndarray,
        send: np.ndarray,
        listen: np.ndarray,
        active: np.ndarray,
    ) -> None:
        """Consume one slot's per-replication ternary feedback.

        ``empty_rows`` / ``noise_rows`` are ``(R,)`` masks of replications
        whose channel was idle / noisy this slot (the success rows are the
        remainder); ``send`` is the sender matrix with this slot's winners
        already removed (winners depart without a state update, exactly as
        the scalar engine's ``observe``-then-depart order produces), and
        ``listen``/``active`` are the listener and post-departure active
        matrices.
        """
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Send-only kernels
# ---------------------------------------------------------------------------


class FixedProbabilityKernel(VectorProtocolKernel):
    """Constant sending probability; feedback never changes it."""

    def __init__(self, pairs: ProtocolRows, capacity: int) -> None:
        super().__init__(_rows(pairs), capacity)
        self._probability = _param_column(pairs, lambda p: p.probability)

    def grow(self, capacity: int) -> None:
        self.capacity = capacity

    def init_packets(self, newly: np.ndarray) -> None:
        return None

    @property
    def probabilities(self) -> float | np.ndarray:
        return self._probability


class BinaryExponentialKernel(VectorProtocolKernel):
    """Window per packet; doubles (up to a cap) on every unsuccessful send."""

    def __init__(self, pairs: ProtocolRows, capacity: int) -> None:
        super().__init__(_rows(pairs), capacity)
        self._initial_window = _param_column(pairs, lambda p: p.initial_window)
        self._backoff_factor = _param_column(pairs, lambda p: p.backoff_factor)
        # ``None`` (uncapped) promotes to +inf: min(w, inf) == w bitwise.
        self._max_window = _param_column(
            pairs, lambda p: p.max_window, none_as=np.inf
        )
        shape = (self.replications, capacity)
        self._window = np.empty(shape)
        self._window[:] = self._initial_window
        self._inverse = np.reciprocal(self._window)

    def grow(self, capacity: int) -> None:
        extra = capacity - self.capacity
        if extra <= 0:
            return
        fresh = np.empty((self.replications, extra))
        fresh[:] = self._initial_window
        self._window = np.concatenate([self._window, fresh], axis=1)
        self._inverse = np.concatenate(
            [self._inverse, np.reciprocal(fresh)], axis=1
        )
        self.capacity = capacity

    def init_packets(self, newly: np.ndarray) -> None:
        initial = _cells(self._initial_window, newly)
        self._window[newly] = initial
        self._inverse[newly] = 1.0 / initial

    @property
    def probabilities(self) -> np.ndarray:
        return self._inverse

    def window_matrix(self) -> np.ndarray:
        return self._window

    def on_unsuccessful_send(self, losers: np.ndarray) -> None:
        grown = self._window[losers] * _cells(self._backoff_factor, losers)
        cap = self._max_window
        if isinstance(cap, np.ndarray):
            grown = np.minimum(grown, _cells(cap, losers))
        elif cap != np.inf:
            np.minimum(grown, cap, out=grown)
        self._window[losers] = grown
        self._inverse[losers] = 1.0 / grown


class PolynomialKernel(VectorProtocolKernel):
    """Collision count per packet; window is ``w0 * (collisions+1)**degree``."""

    def __init__(self, pairs: ProtocolRows, capacity: int) -> None:
        super().__init__(_rows(pairs), capacity)
        self._initial_window = _param_column(pairs, lambda p: p.initial_window)
        self._degree = _param_column(pairs, lambda p: p.degree)
        shape = (self.replications, capacity)
        self._collisions = np.zeros(shape, dtype=np.int64)
        self._inverse = np.empty(shape)
        self._inverse[:] = 1.0 / self._initial_window

    def grow(self, capacity: int) -> None:
        extra = capacity - self.capacity
        if extra <= 0:
            return
        self._collisions = np.concatenate(
            [self._collisions, np.zeros((self.replications, extra), dtype=np.int64)],
            axis=1,
        )
        fresh = np.empty((self.replications, extra))
        fresh[:] = 1.0 / self._initial_window
        self._inverse = np.concatenate([self._inverse, fresh], axis=1)
        self.capacity = capacity

    def init_packets(self, newly: np.ndarray) -> None:
        self._collisions[newly] = 0
        self._inverse[newly] = 1.0 / _cells(self._initial_window, newly)

    @property
    def probabilities(self) -> np.ndarray:
        return self._inverse

    def window_matrix(self) -> np.ndarray:
        # The scalar state computes ``initial * (collisions + 1) ** degree``
        # on demand; reproduce the same float operations.
        return self._initial_window * (self._collisions + 1.0) ** self._degree

    def on_unsuccessful_send(self, losers: np.ndarray) -> None:
        bumped = self._collisions[losers] + 1
        self._collisions[losers] = bumped
        self._inverse[losers] = 1.0 / (
            _cells(self._initial_window, losers)
            * (bumped + 1.0) ** _cells(self._degree, losers)
        )


class SawtoothKernel(VectorProtocolKernel):
    """Truncated sawtooth: deterministic per-slot clock, no channel feedback.

    Sawtooth never listens, but unlike the send-only kernels its state
    advances on *every* slot a packet is active (including sleeping slots),
    so it runs on the sensing slot path where the engine hands over the full
    active matrix each slot.
    """

    sensing = True
    listens = False

    def __init__(self, pairs: ProtocolRows, capacity: int) -> None:
        super().__init__(_rows(pairs), capacity)
        # The scalar state clamps the starting phase at 2.0; the protocol
        # validates initial_window >= 2, so the clamp is a no-op kept for
        # parity with SawtoothPacketState.
        self._initial_window = _param_column(
            pairs, lambda p: max(2.0, float(p.initial_window))
        )
        shape = (self.replications, capacity)
        self._phase = np.empty(shape)
        self._phase[:] = self._initial_window
        self._window = self._phase.copy()
        self._count = np.zeros(shape, dtype=np.int64)
        self._inverse = np.reciprocal(self._window)

    def sending_probabilities(self) -> np.ndarray:
        return self._inverse

    def window_matrix(self) -> np.ndarray:
        return self._window

    def grow(self, capacity: int) -> None:
        extra = capacity - self.capacity
        if extra <= 0:
            return
        fresh = np.empty((self.replications, extra))
        fresh[:] = self._initial_window
        self._phase = np.concatenate([self._phase, fresh], axis=1)
        self._window = np.concatenate([self._window, fresh.copy()], axis=1)
        self._count = np.concatenate(
            [self._count, np.zeros((self.replications, extra), dtype=np.int64)], axis=1
        )
        self._inverse = np.concatenate(
            [self._inverse, np.reciprocal(fresh)], axis=1
        )
        self.capacity = capacity

    def init_packets(self, newly: np.ndarray) -> None:
        initial = _cells(self._initial_window, newly)
        self._phase[newly] = initial
        self._window[newly] = initial
        self._count[newly] = 0
        self._inverse[newly] = 1.0 / initial

    def decide(
        self, coins: np.ndarray, send_out: np.ndarray, listen_out: np.ndarray
    ) -> None:
        np.less(coins, self._inverse, out=send_out)
        listen_out[:] = False

    def on_feedback(
        self,
        empty_rows: np.ndarray,
        noise_rows: np.ndarray,
        send: np.ndarray,
        listen: np.ndarray,
        active: np.ndarray,
    ) -> None:
        # Every active packet that did not just succeed spends one slot at
        # its current window, regardless of what the channel carried.
        count = self._count
        np.add(count, 1, out=count, where=active)
        due = active & (count >= self._window)
        if not due.any():
            return
        count[due] = 0
        window = self._window[due] / 2.0
        phase = self._phase[due]
        ended = window < 2.0
        if ended.any():
            phase = np.where(ended, phase * 2.0, phase)
            window = np.where(ended, phase, window)
            self._phase[due] = phase
        self._window[due] = window
        self._inverse[due] = 1.0 / window


class FullSensingMWKernel(VectorProtocolKernel):
    """Multiplicative-weights probability per packet; listens every slot."""

    sensing = True
    listens = True

    def __init__(self, pairs: ProtocolRows, capacity: int) -> None:
        super().__init__(_rows(pairs), capacity)
        self._initial = _param_column(pairs, lambda p: p.initial_probability)
        self._increase = _param_column(pairs, lambda p: p.increase)
        self._decrease = _param_column(pairs, lambda p: p.decrease)
        self._p_min = _param_column(pairs, lambda p: p.p_min)
        self._p_max = _param_column(pairs, lambda p: p.p_max)
        shape = (self.replications, capacity)
        self._probability = np.empty(shape)
        self._probability[:] = self._initial

    def sending_probabilities(self) -> np.ndarray:
        return self._probability

    def grow(self, capacity: int) -> None:
        extra = capacity - self.capacity
        if extra <= 0:
            return
        fresh = np.empty((self.replications, extra))
        fresh[:] = self._initial
        self._probability = np.concatenate([self._probability, fresh], axis=1)
        self.capacity = capacity

    def init_packets(self, newly: np.ndarray) -> None:
        self._probability[newly] = _cells(self._initial, newly)

    def decide(
        self, coins: np.ndarray, send_out: np.ndarray, listen_out: np.ndarray
    ) -> None:
        np.less(coins, self._probability, out=send_out)
        np.logical_not(send_out, out=listen_out)

    def on_feedback(
        self,
        empty_rows: np.ndarray,
        noise_rows: np.ndarray,
        send: np.ndarray,
        listen: np.ndarray,
        active: np.ndarray,
    ) -> None:
        probability = self._probability
        if empty_rows.any():
            mask = (send | listen) & empty_rows[:, None]
            if mask.any():
                probability[mask] = np.minimum(
                    probability[mask] * _cells(self._increase, mask),
                    _cells(self._p_max, mask),
                )
        if noise_rows.any():
            mask = (send | listen) & noise_rows[:, None]
            if mask.any():
                probability[mask] = np.maximum(
                    probability[mask] / _cells(self._decrease, mask),
                    _cells(self._p_min, mask),
                )
        # SUCCESS heard from another packet: no change.


class LowSensingKernel(VectorProtocolKernel):
    """LOW-SENSING BACKOFF: window per packet, updated from ternary feedback.

    The send/listen thresholds are maintained incrementally (they involve
    logarithms, so only the cells whose window changed are recomputed) —
    the same optimisation :class:`LowSensingPacketState` applies per packet.
    ``decoupled=True`` gives the A1 ablation variant, whose thresholds come
    from independent send/listen coins: ``T_send = s`` and
    ``T_listen = s + (1 − s)·a`` instead of ``a·s`` and ``a``.
    """

    sensing = True
    listens = True

    def __init__(
        self, pairs: ProtocolRows, capacity: int, *, decoupled: bool = False
    ) -> None:
        super().__init__(_rows(pairs), capacity)
        self._decoupled = decoupled
        self._c = _param_column(pairs, lambda p: p.params.c)
        self._w_min = _param_column(pairs, lambda p: p.params.w_min)
        shape = (self.replications, capacity)
        self._window = np.empty(shape)
        self._window[:] = self._w_min
        self._send_threshold = np.empty(shape)
        self._listen_threshold = np.empty(shape)
        full = np.ones(shape, dtype=bool)
        self._set_thresholds(full)

    def sending_probabilities(self) -> np.ndarray:
        # access · send-given-access for both variants (the decoupled
        # trichotomy keeps the same marginal send probability).
        return self._send_threshold

    def window_matrix(self) -> np.ndarray:
        return self._window

    def _set_thresholds(self, mask: np.ndarray) -> None:
        """Recompute both thresholds at each True cell of ``mask``."""
        window = self._window[mask]
        c = _cells(self._c, mask)
        log_cubed = np.log(window) ** 3
        access = np.minimum(1.0, c * log_cubed / window)
        send_given_access = np.minimum(1.0, 1.0 / (c * log_cubed))
        send = access * send_given_access
        if self._decoupled:
            self._send_threshold[mask] = send
            self._listen_threshold[mask] = send + (1.0 - send) * access
        else:
            self._send_threshold[mask] = send
            self._listen_threshold[mask] = access

    def grow(self, capacity: int) -> None:
        extra = capacity - self.capacity
        if extra <= 0:
            return
        shape = (self.replications, extra)
        for name in ("_window", "_send_threshold", "_listen_threshold"):
            setattr(
                self,
                name,
                np.concatenate([getattr(self, name), np.empty(shape)], axis=1),
            )
        self._window[:, self.capacity :] = self._w_min
        grown = np.zeros((self.replications, capacity), dtype=bool)
        grown[:, self.capacity :] = True
        self.capacity = capacity
        self._set_thresholds(grown)

    def init_packets(self, newly: np.ndarray) -> None:
        self._window[newly] = _cells(self._w_min, newly)
        self._set_thresholds(newly)

    def decide(
        self, coins: np.ndarray, send_out: np.ndarray, listen_out: np.ndarray
    ) -> None:
        np.less(coins, self._send_threshold, out=send_out)
        np.less(coins, self._listen_threshold, out=listen_out)
        # T_send <= T_listen, so the senders are a subset: xor leaves the
        # listen-only cells.
        np.logical_xor(listen_out, send_out, out=listen_out)

    def _update_windows(self, mask: np.ndarray, *, backon: bool) -> None:
        window = self._window[mask]
        c = _cells(self._c, mask)
        factor = 1.0 + 1.0 / (c * np.log(window))
        if backon:
            window = np.maximum(window / factor, _cells(self._w_min, mask))
        else:
            window = window * factor
        self._window[mask] = window
        self._set_thresholds(mask)

    def on_feedback(
        self,
        empty_rows: np.ndarray,
        noise_rows: np.ndarray,
        send: np.ndarray,
        listen: np.ndarray,
        active: np.ndarray,
    ) -> None:
        # Only packets that accessed the channel learn anything; a slot's
        # surviving senders are exactly the accessors in noise rows (a lone
        # unjammed sender wins and departs), and listeners hear whatever
        # the row's feedback was.  SUCCESS rows leave windows unchanged.
        if empty_rows.any():
            mask = listen & empty_rows[:, None]
            if mask.any():
                self._update_windows(mask, backon=True)
        if noise_rows.any():
            mask = (send | listen) & noise_rows[:, None]
            if mask.any():
                self._update_windows(mask, backon=False)


# ---------------------------------------------------------------------------
# Factories
# ---------------------------------------------------------------------------


def make_protocol_row_kernel(
    pairs: ProtocolRows, capacity: int
) -> VectorProtocolKernel:
    """Build one kernel covering every ``(protocol, rows)`` pair in order.

    All pairs must share one exact protocol type (the mega-batch
    compatibility rule); parameters may differ and are promoted to per-row
    columns.
    """
    if not pairs:
        raise ValueError("at least one protocol row block is required")
    kinds = {type(protocol) for protocol, _ in pairs}
    if len(kinds) > 1:
        names = ", ".join(sorted(kind.__name__ for kind in kinds))
        raise TypeError(f"cannot stack different protocol types: {names}")
    protocol = pairs[0][0]
    # Exact-type dispatch, mirroring the support registry: a subclass must
    # not silently inherit a kernel that may no longer describe it.
    kind = type(protocol)
    if kind is BinaryExponentialBackoff:
        return BinaryExponentialKernel(pairs, capacity)
    if kind is PolynomialBackoff:
        return PolynomialKernel(pairs, capacity)
    if kind is SawtoothBackoff:
        return SawtoothKernel(pairs, capacity)
    if kind is FullSensingMultiplicativeWeights:
        return FullSensingMWKernel(pairs, capacity)
    if kind is LowSensingBackoff:
        return LowSensingKernel(pairs, capacity)
    if kind is DecoupledLowSensingBackoff:
        return LowSensingKernel(pairs, capacity, decoupled=True)
    if isinstance(protocol, FixedProbabilityProtocol):
        # FixedProbability and its SlottedAloha alias share one kernel (the
        # subclass only pins the default probability).
        return FixedProbabilityKernel(pairs, capacity)
    raise TypeError(f"no vector kernel for protocol {kind.__name__}")


def make_protocol_kernel(
    protocol: BackoffProtocol, replications: int, capacity: int
) -> VectorProtocolKernel:
    """Build the kernel for one protocol batch (see ``support.py``)."""
    return make_protocol_row_kernel([(protocol, replications)], capacity)
