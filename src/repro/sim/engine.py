"""The slot-by-slot simulation engine.

Each slot proceeds in the order mandated by the paper's model (Section 1.1):

1. the adversary, seeing the state up to the end of the previous slot,
   injects packets and makes its (adaptive) jamming decision;
2. every active packet — including those injected this slot — chooses an
   action (sleep / listen / send) from its protocol state and private coins;
3. if the adversary is reactive and has not already jammed, it sees the set
   of senders and may jam reactively (Section 1.3);
4. the channel resolves the slot; a unique unjammed sender succeeds and
   departs; everyone who accessed the channel receives ternary feedback and
   updates its protocol state;
5. metrics, the optional trace, and the optional potential tracker record
   the slot.
"""

from __future__ import annotations

from repro.adversary.base import Adversary, SystemView
from repro.channel.channel import MultipleAccessChannel
from repro.channel.feedback import SLEEP_REPORT, FeedbackReport, SlotOutcome
from repro.channel.trace import ExecutionTrace, SlotRecord
from repro.core.potential import PotentialTracker
from repro.metrics.collectors import MetricsCollector, SlotObservation
from repro.sim.config import SimulationConfig
from repro.sim.packet import Packet
from repro.sim.results import PacketRecord, SimulationResult
from repro.sim.rng import RandomStreams


class _ObliviousView:
    """Minimal per-slot view handed to oblivious adversaries on the fast path.

    Only the O(1) scalar fields of :class:`~repro.adversary.base.SystemView`
    are materialised; the per-packet fields deliberately raise, because an
    adversary that reads them is not oblivious and must run on the regular
    path (where the snapshot is taken *before* this slot's injections —
    reading lazily here would observe a different state).
    """

    __slots__ = (
        "slot",
        "backlog",
        "arrivals_so_far",
        "departures_so_far",
        "jammed_so_far",
        "active_slots_so_far",
        "last_outcome",
    )

    def __init__(
        self,
        slot: int,
        backlog: int,
        arrivals_so_far: int,
        departures_so_far: int,
        jammed_so_far: int,
        active_slots_so_far: int,
        last_outcome: SlotOutcome | None,
    ) -> None:
        self.slot = slot
        self.backlog = backlog
        self.arrivals_so_far = arrivals_so_far
        self.departures_so_far = departures_so_far
        self.jammed_so_far = jammed_so_far
        self.active_slots_so_far = active_slots_so_far
        self.last_outcome = last_outcome

    def _not_oblivious(self, name: str) -> RuntimeError:
        return RuntimeError(
            f"adversary declared itself oblivious but read view.{name}; "
            "set oblivious=False on the adversary to run on the full path"
        )

    @property
    def active_packets(self) -> tuple:
        raise self._not_oblivious("active_packets")

    @property
    def sending_probabilities(self) -> dict:
        raise self._not_oblivious("sending_probabilities")

    @property
    def contention(self) -> float:
        raise self._not_oblivious("contention")


class Simulator:
    """Runs one execution described by a :class:`SimulationConfig`."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.channel = MultipleAccessChannel()
        self.streams = RandomStreams(config.seed)
        self._adversary_rng = self.streams.adversary_stream()
        self._adversary: Adversary = config.adversary
        self._active: dict[int, Packet] = {}
        self._all_packets: list[Packet] = []
        self._next_packet_id = 0
        self.collector = MetricsCollector(collect_series=True)
        self.trace: ExecutionTrace | None = (
            ExecutionTrace() if config.collect_trace else None
        )
        self.potential: PotentialTracker | None = (
            PotentialTracker(config.potential_coefficients)
            if config.collect_potential
            else None
        )
        if getattr(config, "dynamics_window", 0):
            from repro.dynamics import DynamicsAccumulator, jammer_budget

            self._dynamics: DynamicsAccumulator | None = DynamicsAccumulator(
                config.dynamics_window, budget=jammer_budget(config.adversary)
            )
        else:
            self._dynamics = None
        self._slot = 0
        self._last_outcome: SlotOutcome | None = None
        # Contention is only computed when someone consumes it: an adversary
        # that declares it needs it, the potential tracker, or the trace.
        self._track_contention = bool(
            getattr(self._adversary, "needs_contention", False)
            or config.collect_potential
            or config.collect_trace
        )
        self._needs_probabilities = bool(
            getattr(self._adversary, "needs_probabilities", False)
        )
        # Fast path: with no trace, no potential tracker, and an oblivious
        # adversary, nothing consumes the per-slot SystemView snapshot, so
        # the engine skips building it (no active-id tuple, no probability
        # dict) and reuses its per-slot buffers.  The fast path is required
        # to be bit-identical to the regular path: it performs the same RNG
        # draws and state updates, only fewer allocations.
        self._fast_path = (
            not self._track_contention
            and not self._needs_probabilities
            and bool(getattr(self._adversary, "oblivious", False))
        )
        # Per-slot scratch buffers, reused across steps on both paths.
        self._actions_buffer: list[tuple[Packet, bool, bool]] = []
        self._senders_buffer: list[int] = []
        self._listeners_buffer: list[int] = []

    # -- Public API -----------------------------------------------------------

    @property
    def slot(self) -> int:
        """Index of the next slot to be simulated."""
        return self._slot

    @property
    def backlog(self) -> int:
        """Number of packets currently in the system."""
        return len(self._active)

    def active_windows(self) -> list[float]:
        """Window sizes of active packets (for protocols that expose one)."""
        windows = []
        for packet in self._active.values():
            window = getattr(packet.state, "window", None)
            if window is not None:
                windows.append(float(window))
        return windows

    def run(self) -> SimulationResult:
        """Run until drained (if configured) or until ``max_slots``."""
        config = self.config
        while self._slot < config.max_slots:
            if (
                config.stop_when_drained
                and not self._active
                and self._arrivals_exhausted()
            ):
                break
            self.step()
        return self.result()

    def step(self) -> SlotOutcome:
        """Simulate a single slot and return its outcome."""
        slot = self._slot
        adversary_rng = self._adversary_rng
        if self._fast_path:
            collector = self.collector
            view = _ObliviousView(
                slot,
                len(self._active),
                collector.num_arrivals,
                collector.num_successes,
                collector.num_jammed,
                collector.num_active_slots,
                self._last_outcome,
            )
        else:
            view = self._build_view()

        # 1. Adversary: injections and adaptive jamming (pre-slot decision).
        num_arrivals = self._adversary.arrivals(view, adversary_rng)
        if num_arrivals < 0:
            raise ValueError("adversary produced a negative arrival count")
        if self.trace is not None:
            arrival_ids = tuple(self._inject(slot) for _ in range(num_arrivals))
        else:
            arrival_ids = ()
            for _ in range(num_arrivals):
                self._inject(slot)
        jammed = bool(self._adversary.jam(view, adversary_rng))

        active_before = len(self._active)

        # 2. Packet decisions.
        senders = self._senders_buffer
        listeners = self._listeners_buffer
        actions = self._actions_buffer
        senders.clear()
        listeners.clear()
        actions.clear()
        for packet in self._active.values():
            action = packet.state.decide(packet.rng)
            is_send = action.is_send
            is_listen = action.is_listen
            if is_send:
                senders.append(packet.packet_id)
            elif is_listen:
                listeners.append(packet.packet_id)
            actions.append((packet, is_send, is_listen))

        # 3. Reactive jamming (sees the senders of the current slot).
        if not jammed and self._adversary.reactive:
            jammed = bool(
                self._adversary.reactive_jam(view, tuple(senders), adversary_rng)
            )

        # 4. Channel resolution and feedback delivery.  The three possible
        # reports are shared (FeedbackReport is frozen) instead of being
        # rebuilt per packet.
        resolution = self.channel.resolve(senders, jammed=jammed)
        feedback = resolution.feedback
        winner = resolution.winner
        send_report = None
        win_report = None
        listen_report = None
        for packet, is_send, is_listen in actions:
            if is_send:
                packet.record_send()
                if packet.packet_id == winner:
                    if win_report is None:
                        win_report = FeedbackReport(
                            feedback=feedback, sent=True, succeeded=True
                        )
                    report = win_report
                else:
                    if send_report is None:
                        send_report = FeedbackReport(feedback=feedback, sent=True)
                    report = send_report
            elif is_listen:
                packet.record_listen()
                if listen_report is None:
                    listen_report = FeedbackReport(feedback=feedback, sent=False)
                report = listen_report
            else:
                report = SLEEP_REPORT
            packet.state.observe(report, packet.rng)
        if winner is not None:
            departed = self._active.pop(winner)
            departed.mark_departed(slot)
        active_after = len(self._active)

        # 5. Metrics, trace, and potential.
        self.collector.observe(
            SlotObservation(
                slot=slot,
                outcome=resolution.outcome,
                jammed=jammed,
                arrivals=num_arrivals,
                active_before=active_before,
                active_after=active_after,
                num_senders=len(senders),
                num_listeners=len(listeners),
            )
        )
        contention = view.contention if self._track_contention else None
        potential_value = None
        if self.potential is not None:
            sample = self.potential.record(slot, self.active_windows())
            potential_value = sample.potential
        if self.trace is not None:
            self.trace.append(
                SlotRecord(
                    slot=slot,
                    outcome=resolution.outcome,
                    jammed=jammed,
                    arrivals=arrival_ids,
                    senders=tuple(senders),
                    listeners=tuple(listeners),
                    winner=winner,
                    active_before=active_before,
                    active_after=active_after,
                    contention=contention,
                    potential=potential_value,
                )
            )

        if self._dynamics is not None and (slot + 1) % self._dynamics.window == 0:
            self._sample_dynamics()

        self._last_outcome = resolution.outcome
        self._slot += 1
        return resolution.outcome

    def result(self) -> SimulationResult:
        """Package the execution's outcome (can be called at any point)."""
        records = [
            PacketRecord(
                packet_id=packet.packet_id,
                arrival_slot=packet.arrival_slot,
                departure_slot=packet.departure_slot,
                sends=packet.sends,
                listens=packet.listens,
            )
            for packet in self._all_packets
        ]
        dynamics = None
        if self._dynamics is not None:
            if self._dynamics.pending(self.collector.num_slots):
                # The run stopped mid-window: one final partial sample.
                self._sample_dynamics()
            dynamics = self._dynamics.build(self.collector.num_slots)
        return SimulationResult(
            config_description=self.config.describe(),
            protocol_name=self.config.protocol.name,
            seed=self.config.seed,
            num_slots=self._slot,
            drained=not self._active and self._arrivals_exhausted(),
            collector=self.collector,
            packets=records,
            trace=self.trace,
            potential=self.potential,
            dynamics=dynamics,
        )

    # -- Internals -------------------------------------------------------------

    def _sample_dynamics(self) -> None:
        """Snapshot counters and live gauges at a window boundary.

        Runs post-slot (after feedback updates and the winner's departure),
        so the gauges describe the same state the vector engine samples at
        its global boundaries.  One O(backlog) pass; the fast path and the
        RNG are untouched.
        """
        collector = self.collector
        window_sum = 0.0
        window_count = 0
        probability_sum = 0.0
        for packet in self._active.values():
            state = packet.state
            window = getattr(state, "window", None)
            if window is not None:
                window_sum += float(window)
                window_count += 1
            probability = state.sending_probability()
            if probability is not None:
                probability_sum += probability
        assert self._dynamics is not None
        self._dynamics.sample(
            num_slots=collector.num_slots,
            arrivals=collector.num_arrivals,
            successes=collector.num_successes,
            collisions=collector.num_collisions,
            jammed=collector.num_jammed,
            sends=collector.total_sends,
            listens=collector.total_listens,
            backlog=len(self._active),
            window_sum=window_sum,
            window_count=window_count,
            probability_sum=probability_sum,
        )

    def _inject(self, slot: int) -> int:
        packet_id = self._next_packet_id
        self._next_packet_id += 1
        packet = Packet(
            packet_id=packet_id,
            arrival_slot=slot,
            state=self.config.protocol.new_packet_state(),
            rng=self.streams.packet_stream(packet_id),
        )
        self._active[packet_id] = packet
        self._all_packets.append(packet)
        return packet_id

    def _build_view(self) -> SystemView:
        active_ids = tuple(self._active)
        probabilities: dict[int, float | None] = {}
        contention = 0.0
        # Two specialised loops: the probability dict is only populated when
        # an adversary actually reads it, and the contention-only case walks
        # the packets without per-packet flag checks or dict writes.
        if self._needs_probabilities:
            for packet_id, packet in self._active.items():
                probability = packet.state.sending_probability()
                probabilities[packet_id] = probability
                if probability is not None:
                    contention += probability
        elif self._track_contention:
            for packet in self._active.values():
                probability = packet.state.sending_probability()
                if probability is not None:
                    contention += probability
        return SystemView(
            slot=self._slot,
            active_packets=active_ids,
            sending_probabilities=probabilities,
            contention=contention,
            arrivals_so_far=self.collector.num_arrivals,
            departures_so_far=self.collector.num_successes,
            jammed_so_far=self.collector.num_jammed,
            active_slots_so_far=self.collector.num_active_slots,
            last_outcome=self._last_outcome,
        )

    def _arrivals_exhausted(self) -> bool:
        checker = getattr(self._adversary, "arrivals_exhausted", None)
        if checker is None:
            return False
        return bool(checker(self._slot))
