"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.adversary.base import Adversary
from repro.core.potential import PotentialCoefficients
from repro.protocols.base import BackoffProtocol


@dataclass
class SimulationConfig:
    """Everything needed to run one reproducible execution.

    Parameters
    ----------
    protocol:
        The contention-resolution protocol under test.
    adversary:
        The arrival + jamming adversary.
    seed:
        Master seed; all randomness (packets and adversary) derives from it.
    max_slots:
        Hard cap on the number of simulated slots.  Executions may stop
        earlier when ``stop_when_drained`` is set and the system empties
        after arrivals are exhausted.
    stop_when_drained:
        Stop as soon as no packets remain and the arrival process reports it
        is exhausted (finite-stream experiments).  Open-ended experiments set
        this to False and run to ``max_slots``.
    collect_trace:
        Record a full per-slot :class:`~repro.channel.trace.ExecutionTrace`.
        Costs memory proportional to the number of slots.
    collect_potential:
        Track the potential function Φ(t) each slot (requires a protocol
        whose packet state exposes a ``window`` attribute, i.e. LOW-SENSING
        BACKOFF); used by experiment E9.
    potential_coefficients:
        Coefficients (α1, α2, α3) for the potential tracker.
    dynamics_window:
        When positive, sample a windowed dynamics trajectory every this
        many slots (see :mod:`repro.dynamics`).  Dynamics are result-inert
        — the trajectory is excluded from :meth:`describe` so spec hashes
        and stored artifacts are identical with it on or off.
    """

    protocol: BackoffProtocol
    adversary: Adversary
    seed: int = 0
    max_slots: int = 100_000
    stop_when_drained: bool = True
    collect_trace: bool = False
    collect_potential: bool = False
    potential_coefficients: PotentialCoefficients = field(
        default_factory=PotentialCoefficients
    )
    dynamics_window: int = 0

    def __post_init__(self) -> None:
        if self.max_slots <= 0:
            raise ValueError("max_slots must be positive")
        if self.dynamics_window < 0:
            raise ValueError("dynamics_window must be >= 0")

    def describe(self) -> dict[str, Any]:
        return {
            "protocol": self.protocol.describe(),
            "adversary": self.adversary.describe(),
            "seed": self.seed,
            "max_slots": self.max_slots,
            "stop_when_drained": self.stop_when_drained,
            "collect_trace": self.collect_trace,
            "collect_potential": self.collect_potential,
        }
