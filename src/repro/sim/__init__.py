"""Discrete-time simulation engines.

The scalar engine (:class:`~repro.sim.engine.Simulator`) plays the paper's
model slot by slot: the adversary injects packets and decides jamming,
every active packet chooses an action from its protocol state, the channel
resolves the slot, feedback is delivered, and metrics/traces are updated.
Executions are fully deterministic given a
:class:`~repro.sim.config.SimulationConfig` (protocol, adversary, seed).

The vector engine (:mod:`repro.sim.vector`) replays the same slot
semantics for a whole batch of replications at once over ``(replications ×
packets)`` numpy arrays; it covers the vectorizable core of the
configuration space and is imported lazily (so the scalar path has no
numpy requirement at import time).
"""

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.results import SimulationResult
from repro.sim.rng import RandomStreams
from repro.sim.runner import replicate, run_simulation

__all__ = [
    "Packet",
    "RandomStreams",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "replicate",
    "run_simulation",
]
