"""Discrete-time simulation engine.

The engine plays the paper's model slot by slot: the adversary injects
packets and decides jamming, every active packet chooses an action from its
protocol state, the channel resolves the slot, feedback is delivered, and
metrics/traces are updated.  Executions are fully deterministic given a
:class:`~repro.sim.config.SimulationConfig` (protocol, adversary, seed).
"""

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.packet import Packet
from repro.sim.results import SimulationResult
from repro.sim.rng import RandomStreams
from repro.sim.runner import replicate, run_simulation

__all__ = [
    "Packet",
    "RandomStreams",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "replicate",
    "run_simulation",
]
