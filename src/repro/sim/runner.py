"""Convenience runners: single executions and replication across seeds."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.adversary.arrivals import ArrivalProcess
from repro.adversary.base import Adversary
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import Jammer
from repro.protocols.base import BackoffProtocol
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.backends import ExecutionBackend


def run_simulation(
    protocol: BackoffProtocol,
    adversary: Adversary | None = None,
    *,
    arrivals: ArrivalProcess | None = None,
    jammer: Jammer | None = None,
    seed: int = 0,
    max_slots: int = 100_000,
    stop_when_drained: bool = True,
    collect_trace: bool = False,
    collect_potential: bool = False,
) -> SimulationResult:
    """Run one execution.

    Either pass a fully assembled ``adversary`` or pass ``arrivals`` and/or
    ``jammer`` and have them composed automatically.  All remaining keyword
    arguments mirror :class:`~repro.sim.config.SimulationConfig`.
    """
    if adversary is not None and (arrivals is not None or jammer is not None):
        raise ValueError("pass either an adversary or arrivals/jammer, not both")
    if adversary is None:
        adversary = CompositeAdversary(arrival_process=arrivals, jammer=jammer)
    config = SimulationConfig(
        protocol=protocol,
        adversary=adversary,
        seed=seed,
        max_slots=max_slots,
        stop_when_drained=stop_when_drained,
        collect_trace=collect_trace,
        collect_potential=collect_potential,
    )
    return Simulator(config).run()


def replicate(
    config_factory: Callable[[int], SimulationConfig],
    seeds: Sequence[int],
    backend: "ExecutionBackend | None" = None,
) -> list[SimulationResult]:
    """Run one execution per seed.

    ``config_factory`` receives the seed and must return a *fresh*
    configuration — in particular a fresh adversary, because budgeted jammers
    and windowed arrival processes carry mutable state that must not leak
    between replicates.

    ``backend`` selects how the replicates are executed (serial by default);
    see :mod:`repro.exec`.  Results are always in seed order.
    """
    # Imported here: repro.sim must stay importable without repro.exec
    # (which itself imports the engine).
    from repro.exec.backends import ConfigJob, SerialBackend

    jobs = []
    for seed in seeds:
        config = config_factory(seed)
        if config.seed != seed:
            raise ValueError(
                "config_factory must propagate the seed it was given "
                f"(expected {seed}, got {config.seed})"
            )
        jobs.append(ConfigJob(config))
    return (backend or SerialBackend()).run(jobs)
