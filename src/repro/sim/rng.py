"""Seeded, purpose-split random streams.

Every source of randomness in a simulation — the adversary's coins and each
packet's coins — gets its own ``random.Random`` instance derived
deterministically from the master seed.  Splitting streams this way keeps
executions reproducible *and* robust to incidental changes: adding a packet
or reordering adversary queries does not perturb the randomness seen by
unrelated components.
"""

from __future__ import annotations

import hashlib
from random import Random


def derive_seed(master_seed: int, *tokens: object) -> int:
    """Derive a child seed from ``master_seed`` and a tuple of tokens.

    The derivation hashes the textual representation of the tokens with
    SHA-256, so it is stable across processes and Python versions (unlike
    ``hash()``, which is salted for strings).
    """
    digest = hashlib.sha256()
    digest.update(str(master_seed).encode("utf-8"))
    for token in tokens:
        digest.update(b"\x1f")
        digest.update(str(token).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class RandomStreams:
    """Factory for the independent random streams of one simulation."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)

    def adversary_stream(self) -> Random:
        """The adversary's private coin stream."""
        return Random(derive_seed(self.master_seed, "adversary"))

    def packet_stream(self, packet_id: int) -> Random:
        """Private coin stream for the packet with the given id."""
        return Random(derive_seed(self.master_seed, "packet", packet_id))

    def stream(self, *tokens: object) -> Random:
        """A general-purpose named stream (used by workload generators)."""
        return Random(derive_seed(self.master_seed, *tokens))
