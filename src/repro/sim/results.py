"""Simulation results.

A :class:`SimulationResult` bundles everything an execution produced: the
cumulative counters, the optional trace and potential samples, and per-packet
records.  Convenience methods compute the paper's metrics so experiments,
examples, and tests never re-derive them by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.channel.trace import ExecutionTrace
from repro.core.potential import PotentialTracker
from repro.metrics.collectors import MetricsCollector
from repro.metrics.energy import EnergyStatistics, PacketEnergy, energy_statistics
from repro.metrics.latency import LatencyStatistics, PacketLatency, latency_statistics
from repro.metrics.summary import RunSummary
from repro.metrics.throughput import (
    ThroughputAccounting,
    implicit_throughput_series,
    throughput_series,
)


@dataclass(frozen=True)
class PacketRecord:
    """Immutable per-packet outcome."""

    packet_id: int
    arrival_slot: int
    departure_slot: int | None
    sends: int
    listens: int

    @property
    def channel_accesses(self) -> int:
        return self.sends + self.listens

    @property
    def departed(self) -> bool:
        return self.departure_slot is not None

    @property
    def latency(self) -> int | None:
        if self.departure_slot is None:
            return None
        return self.departure_slot - self.arrival_slot + 1


@dataclass
class SimulationResult:
    """The outcome of one execution."""

    config_description: dict[str, Any]
    protocol_name: str
    seed: int
    num_slots: int
    drained: bool
    collector: MetricsCollector
    packets: list[PacketRecord] = field(default_factory=list)
    trace: ExecutionTrace | None = None
    potential: PotentialTracker | None = None
    # Optional windowed dynamics trajectory (repro.dynamics).  Result-inert:
    # stripped from run artifacts by the store, persisted separately.
    dynamics: Any | None = None

    # -- Basic counts ---------------------------------------------------------

    @property
    def num_arrivals(self) -> int:
        return self.collector.num_arrivals

    @property
    def num_delivered(self) -> int:
        return self.collector.num_successes

    @property
    def num_active_slots(self) -> int:
        return self.collector.num_active_slots

    @property
    def num_jammed(self) -> int:
        return self.collector.num_jammed

    @property
    def num_jammed_active(self) -> int:
        return self.collector.num_jammed_active

    @property
    def backlog(self) -> int:
        return self.collector.backlog

    # -- Paper metrics --------------------------------------------------------

    def throughput_accounting(self) -> ThroughputAccounting:
        return ThroughputAccounting(
            arrivals=self.num_arrivals,
            successes=self.num_delivered,
            jammed_active=self.num_jammed_active,
            active_slots=self.num_active_slots,
        )

    @property
    def throughput(self) -> float:
        """Overall throughput ``(T + J) / S`` of the execution."""
        return self.throughput_accounting().throughput

    @property
    def implicit_throughput(self) -> float:
        """Implicit throughput ``(N + J) / S`` at the end of the execution."""
        return self.throughput_accounting().implicit_throughput

    def throughput_series(self) -> list[float]:
        collector = self._require_series()
        return throughput_series(
            collector.cumulative_successes,
            collector.cumulative_jammed_active,
            collector.cumulative_active_slots,
        )

    def implicit_throughput_series(self) -> list[float]:
        collector = self._require_series()
        return implicit_throughput_series(
            collector.cumulative_arrivals,
            collector.cumulative_jammed_active,
            collector.cumulative_active_slots,
        )

    def backlog_series(self) -> list[int]:
        return list(self._require_series().backlog_series)

    # -- Energy and latency -----------------------------------------------------

    def packet_energy(self) -> list[PacketEnergy]:
        return [
            PacketEnergy(
                packet_id=p.packet_id,
                sends=p.sends,
                listens=p.listens,
                departed=p.departed,
            )
            for p in self.packets
        ]

    def energy_statistics(self, departed_only: bool = False) -> EnergyStatistics:
        return energy_statistics(self.packet_energy(), departed_only=departed_only)

    def latency_statistics(self) -> LatencyStatistics:
        records = [
            PacketLatency(
                packet_id=p.packet_id, arrival_slot=p.arrival_slot, latency=p.latency
            )
            for p in self.packets
        ]
        return latency_statistics(records)

    # -- Summaries ---------------------------------------------------------------

    def summary(self) -> RunSummary:
        """Headline metrics as a :class:`RunSummary` row."""
        if self.packets:
            energy = self.energy_statistics()
            mean_accesses = energy.mean_accesses
            max_accesses = float(energy.max_accesses)
            mean_sends = energy.mean_sends
            mean_listens = energy.mean_listens
        else:
            mean_accesses = max_accesses = mean_sends = mean_listens = 0.0
        delivered = [p for p in self.packets if p.departed]
        makespan = float(max((p.latency or 0) for p in delivered)) if delivered else 0.0
        max_backlog = (
            max(self.collector.backlog_series)
            if self.collector.collect_series and self.collector.backlog_series
            else self.backlog
        )
        return RunSummary(
            protocol=self.protocol_name,
            seed=self.seed,
            num_arrivals=self.num_arrivals,
            num_delivered=self.num_delivered,
            num_active_slots=self.num_active_slots,
            num_jammed_active=self.num_jammed_active,
            num_slots=self.num_slots,
            throughput=self.throughput,
            implicit_throughput=self.implicit_throughput,
            mean_accesses=mean_accesses,
            max_accesses=max_accesses,
            mean_sends=mean_sends,
            mean_listens=mean_listens,
            max_backlog=int(max_backlog),
            makespan=makespan,
            drained=self.drained,
        )

    # -- Helpers -------------------------------------------------------------------

    def _require_series(self) -> MetricsCollector:
        if not self.collector.collect_series:
            raise ValueError(
                "per-slot series were not collected; construct the simulation "
                "with series collection enabled"
            )
        return self.collector
