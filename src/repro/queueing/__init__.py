"""Adversarial queuing theory substrate.

The paper's Corollary 1.5 and Theorems 1.7/1.9(2) are stated for the
adversarial-queuing arrival model: for a granularity ``S`` and arrival rate
``λ < 1``, the number of packet arrivals plus jammed slots in any window of
``S`` consecutive slots is at most ``λ·S``, with the placement inside each
window adversarial.  This subpackage provides the constraint object used to
validate generated executions and backlog/stability statistics used by the
backlog experiment (E3).
"""

from repro.queueing.backlog import BacklogStatistics, backlog_series, backlog_statistics
from repro.queueing.model import QueueingConstraint

__all__ = [
    "BacklogStatistics",
    "QueueingConstraint",
    "backlog_series",
    "backlog_statistics",
]
