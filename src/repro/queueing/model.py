"""The (λ, S) adversarial-queuing constraint.

``QueueingConstraint(rate, granularity)`` captures the model of Section 1.1:
in every window of ``granularity`` consecutive slots, the total number of
packet arrivals plus jammed slots is at most ``rate * granularity``.  The
class validates recorded executions (so tests can assert that an arrival
process plus jammer pair is admissible) and computes the per-window loads an
execution actually used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class QueueingConstraint:
    """(λ, S) admissibility constraint on arrivals plus jamming.

    Parameters
    ----------
    rate:
        The arrival rate ``λ`` (a constant in [0, 1)).
    granularity:
        The window size ``S``.
    sliding:
        When True (default) the constraint is enforced over *every* window
        of ``granularity`` consecutive slots (the paper's formulation); when
        False only over aligned, disjoint windows, which is the weaker
        variant some prior work uses and which the arrival generators in
        :mod:`repro.adversary.arrivals` target.
    """

    rate: float
    granularity: int
    sliding: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        if self.granularity <= 0:
            raise ValueError("granularity must be positive")

    @property
    def window_budget(self) -> int:
        """Maximum arrivals + jams allowed in any window: ``floor(λ·S)``."""
        return math.floor(self.rate * self.granularity)

    # -- Validation ----------------------------------------------------------

    def window_loads(
        self, arrivals: Sequence[int], jammed: Sequence[bool]
    ) -> list[int]:
        """Arrivals + jams per window for a recorded execution.

        For the sliding formulation there is one load per starting slot
        (``len(arrivals) - granularity + 1`` windows, or a single window
        covering everything when the execution is shorter than ``S``); for
        the aligned formulation one load per disjoint window.
        """
        if len(arrivals) != len(jammed):
            raise ValueError("arrivals and jammed sequences must have equal length")
        combined = [a + (1 if j else 0) for a, j in zip(arrivals, jammed)]
        n = len(combined)
        if n == 0:
            return []
        s = self.granularity
        if not self.sliding:
            return [sum(combined[i : i + s]) for i in range(0, n, s)]
        if n <= s:
            return [sum(combined)]
        loads = []
        window_sum = sum(combined[:s])
        loads.append(window_sum)
        for start in range(1, n - s + 1):
            window_sum += combined[start + s - 1] - combined[start - 1]
            loads.append(window_sum)
        return loads

    def is_admissible(
        self, arrivals: Sequence[int], jammed: Sequence[bool]
    ) -> bool:
        """True when every window respects the ``λ·S`` budget."""
        budget = self.window_budget
        return all(load <= budget for load in self.window_loads(arrivals, jammed))

    def max_window_load(
        self, arrivals: Sequence[int], jammed: Sequence[bool]
    ) -> int:
        """The largest arrivals + jams observed in any window."""
        loads = self.window_loads(arrivals, jammed)
        return max(loads) if loads else 0
