"""Backlog time series and stability statistics.

Corollary 1.5 of the paper bounds the number of packets in the system at any
time by ``O(S)`` under (λ, S) adversarial-queuing arrivals with a small
enough constant λ.  Experiment E3 measures the backlog series of an
execution and reports its maximum and high quantiles relative to ``S``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.channel.trace import ExecutionTrace


@dataclass(frozen=True)
class BacklogStatistics:
    """Summary statistics of a backlog time series."""

    max_backlog: int
    mean_backlog: float
    p50_backlog: float
    p95_backlog: float
    p99_backlog: float
    final_backlog: int
    num_slots: int

    def normalised(self, granularity: int) -> dict[str, float]:
        """Backlog statistics divided by ``S`` (the Corollary 1.5 yardstick)."""
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        return {
            "max_over_s": self.max_backlog / granularity,
            "mean_over_s": self.mean_backlog / granularity,
            "p95_over_s": self.p95_backlog / granularity,
            "p99_over_s": self.p99_backlog / granularity,
        }


def backlog_series(trace: ExecutionTrace) -> list[int]:
    """Per-slot backlog (number of active packets after the slot resolves)."""
    return [record.active_after for record in trace]


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of an already sorted, non-empty sequence."""
    if not sorted_values:
        raise ValueError("cannot take a quantile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    index = min(len(sorted_values) - 1, max(0, round(q * (len(sorted_values) - 1))))
    return float(sorted_values[index])


def backlog_statistics(series: Sequence[int]) -> BacklogStatistics:
    """Summary statistics for a backlog series (which must be non-empty)."""
    if not series:
        raise ValueError("backlog series is empty")
    ordered = sorted(series)
    return BacklogStatistics(
        max_backlog=int(ordered[-1]),
        mean_backlog=sum(series) / len(series),
        p50_backlog=_quantile(ordered, 0.50),
        p95_backlog=_quantile(ordered, 0.95),
        p99_backlog=_quantile(ordered, 0.99),
        final_backlog=int(series[-1]),
        num_slots=len(series),
    )
