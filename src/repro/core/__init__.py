"""The paper's primary contribution: LOW-SENSING BACKOFF.

This subpackage contains:

* :class:`~repro.core.parameters.LowSensingParameters` — the algorithm's
  constants (``c`` and ``w_min``) with the validity constraints from
  Section 3 of the paper;
* :class:`~repro.core.low_sensing.LowSensingBackoff` — the algorithm of
  Figure 1 under the common protocol API;
* :mod:`repro.core.contention` — contention ``C(t)`` and the slot-outcome
  probability bounds of Lemmas 5.1–5.3;
* :mod:`repro.core.potential` — the potential function
  ``Φ(t) = α1·N(t) + α2·H(t) + α3·L(t)`` of Section 4.2 and the interval
  sizing of Section 4.3, used for the drift experiments (E9).
"""

from repro.core.contention import (
    ContentionRegime,
    classify_contention,
    contention,
    empty_probability_bounds,
    noisy_probability_lower_bound,
    success_probability_bounds,
)
from repro.core.low_sensing import LowSensingBackoff, LowSensingPacketState
from repro.core.parameters import LowSensingParameters
from repro.core.potential import PotentialCoefficients, PotentialTracker, interval_length

__all__ = [
    "ContentionRegime",
    "LowSensingBackoff",
    "LowSensingPacketState",
    "LowSensingParameters",
    "PotentialCoefficients",
    "PotentialTracker",
    "classify_contention",
    "contention",
    "empty_probability_bounds",
    "interval_length",
    "noisy_probability_lower_bound",
    "success_probability_bounds",
]
