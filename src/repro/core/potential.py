"""The potential function Φ(t) and interval sizing (Sections 4.2–4.3).

The analysis of LOW-SENSING BACKOFF tracks

    Φ(t) = α1·N(t) + α2·H(t) + α3·L(t)

where ``N(t)`` is the number of packets in the system, ``H(t) = Σ_u
1/ln(w_u(t))`` captures high-contention progress, and ``L(t) =
w_max(t)/ln²(w_max(t))`` captures the cost of draining the largest window
(L is 0 when no packets are present).  Theorem 5.18 shows Φ decreases by
Ω(τ) − O(A + J) over intervals of length

    τ = (1/c_int) · max( w_max(t)/ln²(w_max(t)),  sqrt(N(t)) ).

The classes here compute Φ online from per-packet window sizes so that
experiment E9 can measure the empirical drift of Φ over exactly those
intervals and verify the negative-drift behaviour the proof relies on.

The coefficients α1 > α2 > α3 are analysis constants, not algorithm
parameters; the defaults below respect the ordering the proofs need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class PotentialCoefficients:
    """Coefficients (α1, α2, α3) with the ordering α1 > α2 > α3 > 0."""

    alpha1: float = 4.0
    alpha2: float = 2.0
    alpha3: float = 1.0

    def __post_init__(self) -> None:
        if not self.alpha1 > self.alpha2 > self.alpha3 > 0.0:
            raise ValueError("coefficients must satisfy alpha1 > alpha2 > alpha3 > 0")


@dataclass(frozen=True)
class PotentialSample:
    """The decomposed potential at one slot."""

    slot: int
    num_packets: int
    h_term: float
    l_term: float
    contention: float
    potential: float


def h_term(windows: Iterable[float]) -> float:
    """``H(t) = Σ_u 1/ln(w_u)``; 0 when there are no packets."""
    total = 0.0
    for window in windows:
        if window <= 1.0:
            raise ValueError("window sizes must exceed 1 for H(t) to be defined")
        total += 1.0 / math.log(window)
    return total


def l_term(windows: Sequence[float]) -> float:
    """``L(t) = w_max/ln²(w_max)``; 0 when there are no packets."""
    if not windows:
        return 0.0
    w_max = max(windows)
    if w_max <= 1.0:
        raise ValueError("window sizes must exceed 1 for L(t) to be defined")
    return w_max / math.log(w_max) ** 2


def interval_length(
    windows: Sequence[float],
    c_interval: float = 1.0,
    minimum: float = 1.0,
) -> int:
    """Interval length τ from Section 4.3.

    ``τ = (1/c_interval) · max( w_max/ln²(w_max), sqrt(N) )`` rounded up and
    floored at ``minimum`` (the paper's minimum interval size is governed by
    ``w_min``; a floor of 1 keeps the quantity well defined when the system
    is nearly empty).
    """
    if c_interval <= 0.0:
        raise ValueError("c_interval must be positive")
    if not windows:
        return int(max(1.0, minimum))
    tau = max(l_term(windows), math.sqrt(len(windows))) / c_interval
    return int(max(minimum, math.ceil(tau)))


class PotentialTracker:
    """Computes and records Φ(t) over an execution.

    The tracker is fed the vector of active window sizes once per slot (the
    engine does this when potential instrumentation is enabled) and stores a
    :class:`PotentialSample` per slot.  Helper methods then report the drift
    of Φ over the analysis intervals of Section 4.3, which is what E9 plots.
    """

    def __init__(self, coefficients: PotentialCoefficients | None = None) -> None:
        self.coefficients = coefficients or PotentialCoefficients()
        self.samples: list[PotentialSample] = []

    def record(self, slot: int, windows: Sequence[float]) -> PotentialSample:
        """Record the potential for ``slot`` given active window sizes."""
        coeffs = self.coefficients
        n = len(windows)
        h = h_term(windows) if windows else 0.0
        l_value = l_term(windows)
        contention_value = sum(1.0 / w for w in windows)
        phi = 0.0
        if n:
            phi = coeffs.alpha1 * n + coeffs.alpha2 * h + coeffs.alpha3 * l_value
        sample = PotentialSample(
            slot=slot,
            num_packets=n,
            h_term=h,
            l_term=l_value,
            contention=contention_value,
            potential=phi,
        )
        self.samples.append(sample)
        return sample

    # -- Analysis helpers ----------------------------------------------------

    def potential_series(self) -> list[float]:
        return [sample.potential for sample in self.samples]

    def contention_series(self) -> list[float]:
        return [sample.contention for sample in self.samples]

    def max_potential(self) -> float:
        return max((s.potential for s in self.samples), default=0.0)

    def interval_drifts(self, c_interval: float = 1.0) -> list[tuple[int, int, float]]:
        """Drift of Φ over consecutive analysis intervals.

        Starting from slot 0, each interval's length is computed from the
        state at its first slot via :func:`interval_length` (approximated
        from the recorded sample: the number of packets and the L term).
        Returns a list of ``(start_slot, length, phi_end - phi_start)``.
        """
        drifts: list[tuple[int, int, float]] = []
        if not self.samples:
            return drifts
        index = 0
        while index < len(self.samples):
            sample = self.samples[index]
            if sample.num_packets == 0:
                index += 1
                continue
            tau = max(
                1,
                int(
                    math.ceil(
                        max(sample.l_term, math.sqrt(sample.num_packets)) / c_interval
                    )
                ),
            )
            end = min(index + tau, len(self.samples) - 1)
            if end == index:
                break
            drift = self.samples[end].potential - sample.potential
            drifts.append((sample.slot, end - index, drift))
            index = end
        return drifts

    def fraction_negative_drift(self, c_interval: float = 1.0) -> float:
        """Fraction of analysis intervals over which Φ strictly decreased."""
        drifts = self.interval_drifts(c_interval)
        if not drifts:
            return 0.0
        negative = sum(1 for _, _, drift in drifts if drift < 0.0)
        return negative / len(drifts)
