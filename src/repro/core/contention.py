"""Contention and slot-outcome probability bounds (Section 4.1, Lemmas 5.1–5.3).

The contention at slot ``t`` is ``C(t) = Σ_u 1/w_u(t)``, the sum of the
packets' sending probabilities (equivalently, the expected number of senders
in the slot).  The paper partitions contention into three regimes — low,
good, and high — and its core lemmas bound the probabilities that an
unjammed slot is successful, empty, or noisy purely as functions of ``C(t)``:

* Lemma 5.1:  ``C·e^{-2C} ≤ p_suc ≤ 2C·e^{-C}``
* Lemma 5.2:  ``e^{-2C} ≤ p_emp ≤ e^{-C}``
* Lemma 5.3:  ``p_noi ≥ 1 − 2C·e^{-C} − e^{-C}``

These functions are used by the potential-function instrumentation, by the
adaptive adversary strategies (which may target a contention regime), and by
property-based tests that check the empirical slot-outcome frequencies of
the simulator against the bounds.
"""

from __future__ import annotations

import enum
import math
from typing import Iterable


class ContentionRegime(enum.Enum):
    """The three contention regimes of Section 4.1."""

    LOW = "low"
    GOOD = "good"
    HIGH = "high"


#: Default regime thresholds.  The paper requires ``C_low ≤ 1/w_min`` and
#: ``C_high > 1`` constant; with the experiment default ``w_min = 64`` these
#: choices satisfy both constraints.
DEFAULT_C_LOW = 1.0 / 64.0
DEFAULT_C_HIGH = 4.0


def contention(sending_probabilities: Iterable[float]) -> float:
    """Contention ``C(t)``: the sum of per-packet sending probabilities."""
    total = 0.0
    for probability in sending_probabilities:
        if probability < 0.0 or probability > 1.0:
            raise ValueError(f"sending probability out of range: {probability}")
        total += probability
    return total


def classify_contention(
    value: float,
    c_low: float = DEFAULT_C_LOW,
    c_high: float = DEFAULT_C_HIGH,
) -> ContentionRegime:
    """Classify contention into low / good / high.

    ``value < c_low`` is low, ``value > c_high`` is high, and anything in the
    closed interval ``[c_low, c_high]`` is good.
    """
    if value < 0.0:
        raise ValueError("contention cannot be negative")
    if c_low >= c_high:
        raise ValueError("require c_low < c_high")
    if value < c_low:
        return ContentionRegime.LOW
    if value > c_high:
        return ContentionRegime.HIGH
    return ContentionRegime.GOOD


def success_probability_bounds(contention_value: float) -> tuple[float, float]:
    """Lemma 5.1 bounds on the probability an unjammed slot is successful.

    Returns ``(lower, upper)`` with
    ``lower = C·e^{-2C}`` and ``upper = 2C·e^{-C}`` (the upper bound is
    clipped to 1).  Valid whenever every packet's window is at least 2, which
    LOW-SENSING BACKOFF guarantees (``w_min > 2``).
    """
    if contention_value < 0.0:
        raise ValueError("contention cannot be negative")
    c = contention_value
    lower = c * math.exp(-2.0 * c)
    upper = min(1.0, 2.0 * c * math.exp(-c))
    return lower, upper


def empty_probability_bounds(contention_value: float) -> tuple[float, float]:
    """Lemma 5.2 bounds on the probability an unjammed slot is empty.

    Returns ``(lower, upper) = (e^{-2C}, e^{-C})``.
    """
    if contention_value < 0.0:
        raise ValueError("contention cannot be negative")
    c = contention_value
    return math.exp(-2.0 * c), math.exp(-c)


def noisy_probability_lower_bound(contention_value: float) -> float:
    """Lemma 5.3 lower bound on the probability an unjammed slot is noisy.

    ``p_noi ≥ 1 − 2C·e^{-C} − e^{-C}``, clipped below at 0.
    """
    if contention_value < 0.0:
        raise ValueError("contention cannot be negative")
    c = contention_value
    return max(0.0, 1.0 - 2.0 * c * math.exp(-c) - math.exp(-c))
