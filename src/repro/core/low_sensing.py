"""LOW-SENSING BACKOFF (Figure 1 of the paper).

Per-slot behaviour of a packet ``u`` with window ``w_u(t)``:

1. With probability ``c·ln³(w_u)/w_u`` the packet *accesses* the channel
   (otherwise it sleeps and learns nothing).
2. Conditioned on accessing, it *sends* with probability ``1/(c·ln³ w_u)``
   and otherwise only listens.  The unconditional sending probability is
   therefore exactly ``1/w_u``.
3. If the packet accessed the channel and the slot was silent, the window
   backs on: ``w <- max(w / (1 + 1/(c·ln w)), w_min)``.
4. If the packet accessed the channel and the slot was noisy (collision or
   jamming), the window backs off: ``w <- w · (1 + 1/(c·ln w))``.
5. A slot containing a single successful transmission by *another* packet
   leaves the window unchanged.

Per Footnote 2, a sending packet does not listen separately: if it is still
in the system after sending, the slot was noisy, so the back-off rule applies
to unsuccessful sends as well.  Sending therefore costs one channel access.

The module also provides :class:`DecoupledLowSensingBackoff`, an ablation
variant (experiment A1) in which the listening and sending decisions are
drawn independently instead of sending only when already listening; the
paper points out (Section 5.6) that the coupling is what makes the energy
analysis go through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Any

from repro.channel.actions import Action
from repro.channel.feedback import Feedback, FeedbackReport
from repro.core.parameters import LowSensingParameters
from repro.protocols.base import BackoffProtocol, PacketState


class LowSensingPacketState(PacketState):
    """Per-packet state of LOW-SENSING BACKOFF: the window ``w_u``.

    The listening and (conditional) sending probabilities are recomputed only
    when the window changes, because the decision phase is the inner loop of
    every simulation and the probabilities involve logarithms.
    """

    __slots__ = ("params", "_window", "_access_probability", "_send_given_access")

    def __init__(self, params: LowSensingParameters) -> None:
        self.params = params
        self._window = 0.0
        self._access_probability = 0.0
        self._send_given_access = 0.0
        self._set_window(float(params.w_min))

    # -- Window management ----------------------------------------------------

    @property
    def window(self) -> float:
        return self._window

    @window.setter
    def window(self, value: float) -> None:
        self._set_window(float(value))

    def _set_window(self, value: float) -> None:
        self._window = value
        self._access_probability = self.params.access_probability(value)
        self._send_given_access = self.params.send_probability_given_access(value)

    # -- Decision phase -----------------------------------------------------

    def decide(self, rng: Random) -> Action:
        if rng.random() >= self._access_probability:
            return Action.sleep()
        if rng.random() < self._send_given_access:
            return Action.send()
        return Action.listen()

    # -- Feedback phase -------------------------------------------------------

    def observe(self, report: FeedbackReport, rng: Random) -> None:
        if report.feedback is None:
            return  # slept: no information, no update
        if report.succeeded:
            return  # departing; window is irrelevant
        if report.feedback is Feedback.EMPTY:
            self._set_window(self.params.backon(self._window))
        elif report.feedback is Feedback.NOISE:
            self._set_window(self.params.backoff(self._window))
        # Feedback.SUCCESS heard from another packet: no window change.

    # -- Introspection --------------------------------------------------------

    def sending_probability(self) -> float:
        return self._access_probability * self._send_given_access

    def access_probability(self) -> float:
        return self._access_probability

    def describe(self) -> dict[str, Any]:
        return {
            "window": self.window,
            "access_probability": self.access_probability(),
            "sending_probability": self.sending_probability(),
        }


@dataclass(frozen=True)
class LowSensingBackoff(BackoffProtocol):
    """LOW-SENSING BACKOFF protocol factory.

    Parameters
    ----------
    params:
        The algorithm constants; defaults to ``LowSensingParameters()``
        (c = 0.5, w_min = 32), which satisfies the paper's constraints and
        exhibits the predicted behaviour at laptop scale.
    """

    params: LowSensingParameters = field(default_factory=LowSensingParameters)

    name: str = "low-sensing"

    # The vector engine ships a lockstep kernel for the coupled protocol and
    # its decoupled A1 variant (see repro.sim.vector.protocols); the support
    # registry's exact-type match keeps other subclasses on the scalar path.
    vectorizable = True

    def new_packet_state(self) -> LowSensingPacketState:
        return LowSensingPacketState(self.params)

    def describe(self) -> dict[str, Any]:
        description: dict[str, Any] = {"name": self.name}
        description.update(self.params.describe())
        return description


class DecoupledLowSensingPacketState(LowSensingPacketState):
    """Ablation variant: listening and sending coins are independent.

    The unconditional send and listen probabilities match LOW-SENSING
    BACKOFF (``1/w`` and ``c·ln³(w)/w``), but a packet may send without
    listening-first in the coupled sense.  Because an unsuccessful send still
    reveals that the slot was noisy, the behavioural difference is subtle;
    the ablation quantifies whether the coupling matters empirically
    (the paper uses it to simplify the energy proof, Theorem 5.25).
    """

    def decide(self, rng: Random) -> Action:
        params = self.params
        send = rng.random() < params.send_probability(self.window)
        if send:
            return Action.send()
        listen_only = rng.random() < params.access_probability(self.window)
        if listen_only:
            return Action.listen()
        return Action.sleep()


@dataclass(frozen=True)
class DecoupledLowSensingBackoff(LowSensingBackoff):
    """Factory for the decoupled ablation variant (experiment A1)."""

    name: str = "low-sensing-decoupled"

    def new_packet_state(self) -> DecoupledLowSensingPacketState:
        return DecoupledLowSensingPacketState(self.params)
