"""Parameters of LOW-SENSING BACKOFF.

Section 3 of the paper specifies two constants:

* ``c`` — a "sufficiently large" positive constant scaling the listening
  probability ``c·ln³(w)/w`` and the update factor ``1 + 1/(c·ln w)``;
* ``w_min`` — the minimum (and initial) window size, a "sufficiently large"
  constant satisfying ``w_min > 2`` and ``w_min / ln³(w_min) ≥ c`` so that
  the listening probability never exceeds 1.

Because the paper's constants are asymptotic, the library allows *practical*
parameterisations that violate ``w_min / ln³(w_min) ≥ c`` provided the caller
opts in (``strict=False``); in that case the listening probability is clamped
to 1, which only makes the algorithm listen more (never less) and therefore
preserves the throughput behaviour while inflating energy.  Experiments use
strict parameters by default.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class LowSensingParameters:
    """Constants of LOW-SENSING BACKOFF (Figure 1).

    Parameters
    ----------
    c:
        The constant ``c`` from Figure 1.  Larger ``c`` means more listening
        per send, gentler window updates, and stronger concentration (the
        proofs take ``c`` large); smaller ``c`` converges faster at small
        scale.
    w_min:
        Minimum and initial window size.
    strict:
        When True (default), enforce the paper's constraints
        ``w_min > 2`` and ``w_min / ln³(w_min) ≥ c``.  When False only basic
        sanity checks are applied and the access probability is clamped at 1.
    """

    c: float = 0.5
    w_min: float = 32.0
    strict: bool = True

    def __post_init__(self) -> None:
        if self.c <= 0.0:
            raise ValueError("c must be positive")
        if self.w_min <= 2.0:
            raise ValueError("w_min must exceed 2")
        if self.strict and not self.satisfies_paper_constraints():
            raise ValueError(
                "strict parameters require w_min / ln^3(w_min) >= c so the "
                f"listening probability is at most 1; got c={self.c}, "
                f"w_min={self.w_min} "
                f"(w_min/ln^3(w_min)={self.w_min / math.log(self.w_min) ** 3:.3f}). "
                "Pass strict=False to clamp instead."
            )

    # -- Constraint checks -------------------------------------------------

    def satisfies_paper_constraints(self) -> bool:
        """True when ``w_min > 2`` and ``w_min / ln³(w_min) ≥ c`` hold."""
        return self.w_min > 2.0 and self.w_min / math.log(self.w_min) ** 3 >= self.c

    # -- Derived per-window quantities (Figure 1) ---------------------------

    def access_probability(self, window: float) -> float:
        """Probability ``c·ln³(w)/w`` that a packet accesses the channel.

        Clamped to 1 for non-strict parameterisations where the formula can
        exceed 1 at small windows.
        """
        self._check_window(window)
        return min(1.0, self.c * math.log(window) ** 3 / window)

    def send_probability_given_access(self, window: float) -> float:
        """Probability ``1/(c·ln³ w)`` of sending, conditioned on accessing."""
        self._check_window(window)
        return min(1.0, 1.0 / (self.c * math.log(window) ** 3))

    def send_probability(self, window: float) -> float:
        """Unconditional per-slot sending probability.

        For strict parameters this is exactly ``1/w`` (the product of the two
        probabilities above); with clamping it can differ slightly, which is
        why it is computed as the product rather than assumed.
        """
        return self.access_probability(window) * self.send_probability_given_access(
            window
        )

    def update_factor(self, window: float) -> float:
        """The multiplicative window-update factor ``1 + 1/(c·ln w)``."""
        self._check_window(window)
        return 1.0 + 1.0 / (self.c * math.log(window))

    def backoff(self, window: float) -> float:
        """Window after hearing a noisy slot: ``w · (1 + 1/(c·ln w))``."""
        return window * self.update_factor(window)

    def backon(self, window: float) -> float:
        """Window after hearing silence: ``max(w / (1 + 1/(c·ln w)), w_min)``."""
        return max(window / self.update_factor(window), self.w_min)

    # -- Helpers ------------------------------------------------------------

    def _check_window(self, window: float) -> None:
        if window < self.w_min - 1e-9:
            raise ValueError(
                f"window {window} is below w_min={self.w_min}; protocol state "
                "must never drop below the minimum window"
            )

    def describe(self) -> dict[str, Any]:
        return {"c": self.c, "w_min": self.w_min, "strict": self.strict}
