"""Adversaries: packet-arrival processes and jamming strategies.

The paper's adversary controls, for every slot, how many packets are injected
and whether the slot is jammed (Section 1.1).  The adversary is *adaptive*:
it sees the full system state — including every packet's internal window —
up to the end of the previous slot, but not the current slot's coin flips.
A *reactive* adversary (Section 1.3) additionally sees which packets transmit
in the current slot before committing its jamming decision for that slot.

This subpackage factors the adversary into an arrival process and a jammer,
combined by :class:`~repro.adversary.composite.CompositeAdversary`.  All
strategies draw randomness from an engine-supplied random source so runs are
reproducible per seed.  Piecewise time-varying behaviour is expressed with
the schedule DSL (:mod:`repro.scenarios.schedule`) and driven through the
adapters in :mod:`repro.adversary.scheduled`.
"""

from repro.adversary.arrivals import (
    AdversarialQueueingArrivals,
    ArrivalProcess,
    BatchArrivals,
    NoArrivals,
    PeriodicBurstArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.adversary.base import Adversary, SystemView
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import (
    AdaptiveContentionJammer,
    BernoulliJamming,
    BudgetedRandomJamming,
    BurstJamming,
    Jammer,
    NoJamming,
    PeriodicJamming,
    ReactiveSuccessJammer,
    ReactiveTargetedJammer,
)
from repro.adversary.scheduled import ScheduledArrivals, ScheduledJamming

__all__ = [
    "AdaptiveContentionJammer",
    "Adversary",
    "AdversarialQueueingArrivals",
    "ArrivalProcess",
    "BatchArrivals",
    "BernoulliJamming",
    "BudgetedRandomJamming",
    "BurstJamming",
    "CompositeAdversary",
    "Jammer",
    "NoArrivals",
    "NoJamming",
    "PeriodicBurstArrivals",
    "PeriodicJamming",
    "PoissonArrivals",
    "ReactiveSuccessJammer",
    "ReactiveTargetedJammer",
    "ScheduledArrivals",
    "ScheduledJamming",
    "SystemView",
    "TraceArrivals",
]
