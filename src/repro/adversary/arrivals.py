"""Packet-arrival processes.

Arrival processes answer one question per slot: how many packets arrive at
the start of this slot?  They range from the trivial batch input used by the
classical backoff literature to the adversarial-queuing model of the paper
(arrivals plus jammed slots bounded by ``λ·S`` in every window of ``S``
consecutive slots), with adversarial placement strategies within each window.
"""

from __future__ import annotations

import abc
from random import Random
from typing import Sequence

from repro.adversary.base import SystemView


class ArrivalProcess(abc.ABC):
    """Decides how many packets arrive at the start of each slot."""

    #: Whether the process is oblivious (reads only ``view.slot``, never the
    #: system state).  Every built-in process is; the base class defaults to
    #: False so user subclasses must opt in explicitly.
    oblivious: bool = False

    #: Whether :mod:`repro.sim.vector` can precompute this process's arrival
    #: schedule as an array (requires obliviousness).  The vector engine
    #: additionally requires an exact type match, so subclasses never
    #: inherit a schedule kernel that may not describe them.
    vectorizable: bool = False

    @abc.abstractmethod
    def arrivals(self, view: SystemView, rng: Random) -> int:
        """Number of packets injected at ``view.slot`` (non-negative)."""

    def total_planned(self) -> int | None:
        """Upper bound on the arrivals the process will ever produce.

        ``None`` means the process is open-ended.  Runners use
        :meth:`exhausted` (not this bound) to decide when an execution can
        stop; the bound is informational.
        """
        return None

    def exhausted(self, slot: int) -> bool:
        """True when no packet can arrive at ``slot`` or any later slot."""
        return False

    def describe(self) -> dict[str, object]:
        return {"type": type(self).__name__}


class NoArrivals(ArrivalProcess):
    """No packets ever arrive (useful for composing tests)."""

    oblivious = True
    vectorizable = True

    def arrivals(self, view: SystemView, rng: Random) -> int:
        return 0

    def total_planned(self) -> int:
        return 0

    def exhausted(self, slot: int) -> bool:
        return True


class BatchArrivals(ArrivalProcess):
    """``n`` packets all arrive in a single slot (default slot 0).

    This is the batch/static input on which binary exponential backoff's
    O(1/ln N) throughput is proved [23] and which E1 sweeps.
    """

    oblivious = True
    vectorizable = True

    def __init__(self, n: int, slot: int = 0) -> None:
        if n < 0:
            raise ValueError("batch size must be non-negative")
        if slot < 0:
            raise ValueError("slot must be non-negative")
        self.n = n
        self.slot = slot

    def arrivals(self, view: SystemView, rng: Random) -> int:
        return self.n if view.slot == self.slot else 0

    def total_planned(self) -> int:
        return self.n

    def exhausted(self, slot: int) -> bool:
        return slot > self.slot

    def describe(self) -> dict[str, object]:
        return {"type": "BatchArrivals", "n": self.n, "slot": self.slot}


class PoissonArrivals(ArrivalProcess):
    """Poisson(λ) arrivals per slot, optionally truncated to a horizon.

    A standard stochastic arrival model; the paper's guarantees are for
    adversarial arrivals, which subsume this case, so Poisson traffic is used
    in examples and as a sanity workload rather than a headline experiment.
    """

    oblivious = True
    vectorizable = True

    def __init__(self, rate: float, horizon: int | None = None) -> None:
        if rate < 0.0:
            raise ValueError("rate must be non-negative")
        if horizon is not None and horizon < 0:
            raise ValueError("horizon must be non-negative")
        self.rate = rate
        self.horizon = horizon

    def arrivals(self, view: SystemView, rng: Random) -> int:
        if self.horizon is not None and view.slot >= self.horizon:
            return 0
        return _poisson_sample(self.rate, rng)

    def exhausted(self, slot: int) -> bool:
        return self.horizon is not None and slot >= self.horizon

    def describe(self) -> dict[str, object]:
        return {"type": "PoissonArrivals", "rate": self.rate, "horizon": self.horizon}


class PeriodicBurstArrivals(ArrivalProcess):
    """A burst of ``burst_size`` packets every ``period`` slots.

    Models the bursty traffic the paper's introduction motivates (many
    devices waking simultaneously); used by the Wi-Fi style example and by
    E2 as a structured adversarial pattern.
    """

    oblivious = True
    vectorizable = True

    def __init__(
        self,
        burst_size: int,
        period: int,
        start: int = 0,
        num_bursts: int | None = None,
    ) -> None:
        if burst_size < 0:
            raise ValueError("burst_size must be non-negative")
        if period <= 0:
            raise ValueError("period must be positive")
        if start < 0:
            raise ValueError("start must be non-negative")
        if num_bursts is not None and num_bursts < 0:
            raise ValueError("num_bursts must be non-negative")
        self.burst_size = burst_size
        self.period = period
        self.start = start
        self.num_bursts = num_bursts

    def arrivals(self, view: SystemView, rng: Random) -> int:
        slot = view.slot
        if slot < self.start:
            return 0
        offset = slot - self.start
        if offset % self.period != 0:
            return 0
        burst_index = offset // self.period
        if self.num_bursts is not None and burst_index >= self.num_bursts:
            return 0
        return self.burst_size

    def total_planned(self) -> int | None:
        if self.num_bursts is None:
            return None
        return self.burst_size * self.num_bursts

    def exhausted(self, slot: int) -> bool:
        if self.num_bursts is None:
            return False
        last_burst_slot = self.start + (self.num_bursts - 1) * self.period
        return self.num_bursts == 0 or slot > last_burst_slot

    def describe(self) -> dict[str, object]:
        return {
            "type": "PeriodicBurstArrivals",
            "burst_size": self.burst_size,
            "period": self.period,
            "start": self.start,
            "num_bursts": self.num_bursts,
        }


class TraceArrivals(ArrivalProcess):
    """Arrivals replayed from an explicit per-slot count sequence."""

    oblivious = True

    def __init__(self, counts: Sequence[int]) -> None:
        if any(count < 0 for count in counts):
            raise ValueError("arrival counts must be non-negative")
        self.counts = list(counts)

    def arrivals(self, view: SystemView, rng: Random) -> int:
        if view.slot < len(self.counts):
            return self.counts[view.slot]
        return 0

    def total_planned(self) -> int:
        return sum(self.counts)

    def exhausted(self, slot: int) -> bool:
        return slot >= len(self.counts)

    def describe(self) -> dict[str, object]:
        return {"type": "TraceArrivals", "total": sum(self.counts)}


class AdversarialQueueingArrivals(ArrivalProcess):
    """(λ, S)-bounded adversarial-queuing arrivals with chosen placement.

    In every window of ``granularity`` consecutive slots the process injects
    at most ``floor(rate * granularity * (1 - jam_budget_fraction))``
    packets; the remaining fraction of the window budget is left for a
    cooperating jammer (see :class:`repro.adversary.composite.CompositeAdversary`
    and :class:`repro.queueing.model.QueueingConstraint`, which validates the
    combined sequence).  How the packets are distributed *within* the window
    is adversarial; three placement strategies are provided:

    * ``"front"``  — the whole window budget arrives in the window's first
      slot (the burstiest admissible placement);
    * ``"uniform"`` — arrivals spread evenly across the window;
    * ``"random"`` — each window's arrivals land on uniformly random slots.
    """

    oblivious = True
    vectorizable = True

    PLACEMENTS = ("front", "uniform", "random")

    def __init__(
        self,
        rate: float,
        granularity: int,
        placement: str = "front",
        horizon: int | None = None,
        jam_budget_fraction: float = 0.0,
    ) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        if granularity <= 0:
            raise ValueError("granularity must be positive")
        if placement not in self.PLACEMENTS:
            raise ValueError(f"placement must be one of {self.PLACEMENTS}")
        if horizon is not None and horizon < 0:
            raise ValueError("horizon must be non-negative")
        if not 0.0 <= jam_budget_fraction < 1.0:
            raise ValueError("jam_budget_fraction must be in [0, 1)")
        self.rate = rate
        self.granularity = granularity
        self.placement = placement
        self.horizon = horizon
        self.jam_budget_fraction = jam_budget_fraction
        self._window_start: int | None = None
        self._window_plan: list[int] = []

    @property
    def arrivals_per_window(self) -> int:
        """Packets injected per window after reserving the jamming budget."""
        budget = int(self.rate * self.granularity)
        return int(budget * (1.0 - self.jam_budget_fraction))

    def arrivals(self, view: SystemView, rng: Random) -> int:
        slot = view.slot
        if self.horizon is not None and slot >= self.horizon:
            return 0
        window_start = (slot // self.granularity) * self.granularity
        if window_start != self._window_start:
            self._window_start = window_start
            self._window_plan = self._plan_window(rng)
        return self._window_plan[slot - window_start]

    def _plan_window(self, rng: Random) -> list[int]:
        """Per-slot arrival counts for one window under the placement rule."""
        plan = [0] * self.granularity
        budget = self.arrivals_per_window
        if budget <= 0:
            return plan
        if self.placement == "front":
            plan[0] = budget
        elif self.placement == "uniform":
            base = budget // self.granularity
            remainder = budget % self.granularity
            stride = self.granularity / remainder if remainder else 0.0
            for index in range(self.granularity):
                plan[index] = base
            for k in range(remainder):
                plan[int(k * stride)] += 1
        else:  # random
            for _ in range(budget):
                plan[rng.randrange(self.granularity)] += 1
        return plan

    def total_planned(self) -> int | None:
        if self.horizon is None:
            return None
        full_windows, remainder = divmod(self.horizon, self.granularity)
        total = full_windows * self.arrivals_per_window
        # A partial final window contributes at most a full window budget
        # (exactly that much under "front" placement, possibly less under
        # "uniform"/"random"); report the upper bound.
        if remainder:
            total += self.arrivals_per_window
        return total

    def exhausted(self, slot: int) -> bool:
        return self.horizon is not None and slot >= self.horizon

    def describe(self) -> dict[str, object]:
        return {
            "type": "AdversarialQueueingArrivals",
            "rate": self.rate,
            "granularity": self.granularity,
            "placement": self.placement,
            "horizon": self.horizon,
            "jam_budget_fraction": self.jam_budget_fraction,
        }


def _poisson_sample(rate: float, rng: Random) -> int:
    """Sample a Poisson(rate) variate using inversion (rates here are small)."""
    if rate == 0.0:
        return 0
    # Knuth's algorithm is fine for the per-slot rates (< a few) used here.
    import math

    threshold = math.exp(-rate)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count
