"""Jamming strategies.

A jammer decides, per slot, whether to broadcast noise into the slot.  The
paper distinguishes two timing models:

* an **adaptive** jammer commits its decision for slot ``t`` knowing the
  full system state up to the end of slot ``t − 1`` (``jam``);
* a **reactive** jammer additionally sees which packets transmit in slot
  ``t`` before deciding (``reactive_jam``), so it can cheaply destroy
  would-be successes or starve a targeted packet (Section 1.3).

Several strategies track a finite jamming budget ``J``; the paper's bounds
are parameterised by the realised number of jammed slots, so budgeted
strategies are what the energy experiments sweep.
"""

from __future__ import annotations

import abc
from random import Random
from typing import Hashable, Sequence

from repro.adversary.base import SystemView
from repro.core.contention import DEFAULT_C_HIGH, DEFAULT_C_LOW

PacketId = Hashable


class Jammer(abc.ABC):
    """Per-slot jamming strategy."""

    #: Whether the strategy needs the reactive hook (sees current senders).
    reactive: bool = False

    #: Whether the strategy reads ``SystemView.contention`` (adaptive
    #: state-aware strategies); lets the engine skip computing it otherwise.
    needs_contention: bool = False

    #: Whether the strategy is oblivious (decisions depend only on the slot
    #: index and private coins, never on system state).  Enables the engine
    #: fast path; defaults to False so subclasses must opt in.
    oblivious: bool = False

    #: Whether :mod:`repro.sim.vector` ships a batched jamming kernel for
    #: this strategy.  The vector engine additionally requires an exact type
    #: match, so subclasses never inherit a kernel that may not describe
    #: them.  Unlike ``oblivious``, a vectorizable jammer may consult the
    #: backlog (the vector engine tracks it as an array), which is why
    #: budget- and activity-gated strategies qualify.
    vectorizable: bool = False

    @abc.abstractmethod
    def jam(self, view: SystemView, rng: Random) -> bool:
        """Adaptive (pre-slot) jamming decision."""

    def reactive_jam(
        self, view: SystemView, senders: Sequence[PacketId], rng: Random
    ) -> bool:
        """Reactive (post-send) decision; only called when ``reactive``."""
        return False

    def jams_used(self) -> int:
        """Number of jammed slots the strategy has produced so far."""
        return 0

    def describe(self) -> dict[str, object]:
        return {"type": type(self).__name__, "reactive": self.reactive}


class _BudgetedJammer(Jammer):
    """Shared bookkeeping for strategies with a finite jamming budget."""

    def __init__(self, budget: int | None) -> None:
        if budget is not None and budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = budget
        self._used = 0

    def _budget_available(self) -> bool:
        return self.budget is None or self._used < self.budget

    def _spend(self) -> bool:
        if not self._budget_available():
            return False
        self._used += 1
        return True

    def jams_used(self) -> int:
        return self._used

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["budget"] = self.budget
        return description


class NoJamming(Jammer):
    """Never jams."""

    oblivious = True
    vectorizable = True

    def jam(self, view: SystemView, rng: Random) -> bool:
        return False


class BernoulliJamming(_BudgetedJammer):
    """Jam each slot independently with probability ``probability``.

    An optional ``budget`` caps the total number of jammed slots, and
    ``only_active`` restricts jamming to slots with at least one active
    packet (jamming inactive slots is wasted effort for the adversary and
    muddies the (N+J)/S accounting, so experiments default to True).
    """

    vectorizable = True

    def __init__(
        self,
        probability: float,
        budget: int | None = None,
        only_active: bool = True,
    ) -> None:
        super().__init__(budget)
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self.only_active = only_active
        # Restricting jams to active slots means observing the system state,
        # so only the unrestricted variant is oblivious.
        self.oblivious = not only_active

    def jam(self, view: SystemView, rng: Random) -> bool:
        if self.only_active and not view.active_packets:
            return False
        if rng.random() >= self.probability:
            return False
        return self._spend()

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["probability"] = self.probability
        description["only_active"] = self.only_active
        return description


class PeriodicJamming(_BudgetedJammer):
    """Jam every ``period``-th slot starting at ``offset``."""

    oblivious = True
    vectorizable = True

    def __init__(self, period: int, offset: int = 0, budget: int | None = None) -> None:
        super().__init__(budget)
        if period <= 0:
            raise ValueError("period must be positive")
        if offset < 0:
            raise ValueError("offset must be non-negative")
        self.period = period
        self.offset = offset

    def jam(self, view: SystemView, rng: Random) -> bool:
        if view.slot < self.offset or (view.slot - self.offset) % self.period != 0:
            return False
        return self._spend()

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["period"] = self.period
        description["offset"] = self.offset
        return description


class BurstJamming(_BudgetedJammer):
    """Jam a contiguous burst of ``length`` slots starting at ``start``.

    If ``period`` is given, the burst repeats every ``period`` slots.  Burst
    jamming is the canonical "denial window" attack and the workload used to
    show that LOW-SENSING BACKOFF recovers after sustained noise.
    """

    oblivious = True
    vectorizable = True

    def __init__(
        self,
        start: int,
        length: int,
        period: int | None = None,
        budget: int | None = None,
    ) -> None:
        super().__init__(budget)
        if start < 0:
            raise ValueError("start must be non-negative")
        if length < 0:
            raise ValueError("length must be non-negative")
        if period is not None and period <= 0:
            raise ValueError("period must be positive")
        if period is not None and length > period:
            raise ValueError("burst length cannot exceed the period")
        self.start = start
        self.length = length
        self.period = period

    def jam(self, view: SystemView, rng: Random) -> bool:
        slot = view.slot
        if slot < self.start:
            return False
        offset = slot - self.start
        in_burst = (offset % self.period) < self.length if self.period else offset < self.length
        if not in_burst:
            return False
        return self._spend()

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["start"] = self.start
        description["length"] = self.length
        description["period"] = self.period
        return description


class BudgetedRandomJamming(_BudgetedJammer):
    """Spend a jamming budget uniformly at random over a horizon.

    Each slot before ``horizon`` is jammed with probability
    ``budget / horizon`` until the budget is exhausted, which spreads ``~J``
    jams roughly uniformly without requiring a pre-committed schedule.
    """

    oblivious = True
    vectorizable = True

    def __init__(self, budget: int, horizon: int) -> None:
        super().__init__(budget)
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.horizon = horizon

    def jam(self, view: SystemView, rng: Random) -> bool:
        if view.slot >= self.horizon:
            return False
        probability = (self.budget or 0) / self.horizon
        if rng.random() >= probability:
            return False
        return self._spend()

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["horizon"] = self.horizon
        return description


class AdaptiveContentionJammer(_BudgetedJammer):
    """Adaptive strategy: jam when the contention is in a target regime.

    The adaptive adversary can read every packet's window (Section 1.1), so
    it knows the contention ``C(t)`` exactly.  Jamming good-contention slots
    destroys the slots most likely to carry a success; jamming low-contention
    slots tricks listeners into backing off when they should back on.  Both
    target regimes are available; "good" is the default and is the stronger
    attack against throughput.
    """

    needs_contention = True
    vectorizable = True

    def __init__(
        self,
        budget: int | None,
        target_regime: str = "good",
        c_low: float = DEFAULT_C_LOW,
        c_high: float = DEFAULT_C_HIGH,
    ) -> None:
        super().__init__(budget)
        if target_regime not in ("low", "good", "high", "any"):
            raise ValueError("target_regime must be one of low/good/high/any")
        self.target_regime = target_regime
        self.c_low = c_low
        self.c_high = c_high

    def jam(self, view: SystemView, rng: Random) -> bool:
        if not view.active_packets:
            return False
        contention = view.contention
        if self.target_regime == "low":
            in_target = contention < self.c_low
        elif self.target_regime == "good":
            in_target = self.c_low <= contention <= self.c_high
        elif self.target_regime == "high":
            in_target = contention > self.c_high
        else:
            in_target = True
        if not in_target:
            return False
        return self._spend()

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["target_regime"] = self.target_regime
        description["c_low"] = self.c_low
        description["c_high"] = self.c_high
        return description


class ReactiveTargetedJammer(_BudgetedJammer):
    """Reactive strategy: jam whenever a targeted packet transmits.

    This is the attack from Section 1.3 used to show that per-packet channel
    access bounds cannot survive reactivity: the targeted packet can never
    succeed while the budget lasts, so its accesses grow linearly in the
    jamming budget, while the *average* over packets stays polylogarithmic
    (Theorem 1.9) — experiment E6.

    ``target_index`` selects which packet (by arrival order) is persecuted;
    when that packet eventually succeeds (after the budget is exhausted) the
    jammer retires.
    """

    reactive = True
    vectorizable = True

    def __init__(self, budget: int | None, target_index: int = 0) -> None:
        super().__init__(budget)
        if target_index < 0:
            raise ValueError("target_index must be non-negative")
        self.target_index = target_index
        self._target_id: PacketId | None = None

    def jam(self, view: SystemView, rng: Random) -> bool:
        return False

    def reactive_jam(
        self, view: SystemView, senders: Sequence[PacketId], rng: Random
    ) -> bool:
        if self._target_id is None:
            # Packet ids are assigned in arrival order by the engine, so the
            # target is simply the id equal to target_index once it exists.
            for packet_id in view.active_packets:
                if packet_id == self.target_index:
                    self._target_id = packet_id
                    break
        if self._target_id is None or self._target_id not in senders:
            return False
        return self._spend()

    def describe(self) -> dict[str, object]:
        description = super().describe()
        description["target_index"] = self.target_index
        return description


class ReactiveSuccessJammer(_BudgetedJammer):
    """Reactive strategy: jam every slot that would otherwise be a success.

    The strongest throughput attack available to a reactive adversary within
    a budget ``J``: it converts up to ``J`` successes into noise.  Used to
    verify the (N+J)/S throughput accounting and the average-energy bound of
    Theorem 1.9.
    """

    reactive = True
    vectorizable = True

    def __init__(self, budget: int | None) -> None:
        super().__init__(budget)

    def jam(self, view: SystemView, rng: Random) -> bool:
        return False

    def reactive_jam(
        self, view: SystemView, senders: Sequence[PacketId], rng: Random
    ) -> bool:
        if len(senders) != 1:
            return False
        return self._spend()
