"""Adapters that drive arrival processes and jammers through a schedule.

A :class:`~repro.scenarios.schedule.Schedule` describes piecewise
time-varying adversary behaviour; these adapters make one behave like a
single :class:`~repro.adversary.arrivals.ArrivalProcess` or
:class:`~repro.adversary.jamming.Jammer`, so a scheduled adversary composes
with everything that already accepts one (``CompositeAdversary``, the
engines, sweep plans, the scenario loader).

Phase components see *phase-local* slot indices: the adapter hands them a
view whose ``slot`` is shifted to the phase's own clock, and every other
view field passes through untouched.  Per-phase components are separate
instances, so budgeted jammers carry **per-phase** budgets — a fresh phase
starts with its own budget even if the previous phase exhausted its own
(the "budget boundary at a phase boundary" case the tests pin down).
"""

from __future__ import annotations

from random import Random
from typing import Any, Hashable, Sequence

from repro.adversary.arrivals import ArrivalProcess
from repro.adversary.jamming import Jammer
from repro.scenarios.schedule import Phase, Schedule

PacketId = Hashable


class _ShiftedView:
    """A system view whose ``slot`` is rebased to a phase-local clock.

    Works for both the full :class:`~repro.adversary.base.SystemView` and
    the engine fast path's minimal oblivious view: ``slot`` is overridden
    here, every other attribute is forwarded — including the fast path's
    fail-loudly properties, so an allegedly oblivious phase component that
    peeks at per-packet state still fails loudly through the shift.
    """

    __slots__ = ("_view", "slot")

    def __init__(self, view: Any, slot: int) -> None:
        self._view = view
        self.slot = slot

    def __getattr__(self, name: str) -> Any:
        return getattr(self._view, name)


def _local_view(view: Any, local_slot: int) -> Any:
    return view if local_slot == view.slot else _ShiftedView(view, local_slot)


def _as_schedule(phases: Sequence[Phase] | tuple[Schedule], expected: type, what: str) -> Schedule:
    if len(phases) == 1 and isinstance(phases[0], Schedule):
        schedule = phases[0]
    else:
        schedule = Schedule(phases)
    for index, phase in enumerate(schedule.phases):
        if not isinstance(phase.component, expected):
            raise TypeError(
                f"phase {index} of a {what} schedule must hold a"
                f" {expected.__name__}, got {type(phase.component).__name__}"
            )
    return schedule


class ScheduledArrivals(ArrivalProcess):
    """Arrivals that follow a piecewise schedule of arrival processes.

    ``ScheduledArrivals(Phase(PoissonArrivals(0.05), 1000), Phase(NoArrivals()))``
    injects Poisson traffic for 1000 slots and nothing afterwards.  The
    adapter is oblivious exactly when every phase component is, which is
    what lets the engine keep its fast path.  ``vectorizable`` stays False
    at the class level: the vector support registry vets schedules
    phase-by-phase instead (see :mod:`repro.sim.vector.support`).
    """

    def __init__(self, *phases: Phase | Schedule) -> None:
        self.schedule = _as_schedule(phases, ArrivalProcess, "ScheduledArrivals")
        self.oblivious = all(
            getattr(phase.component, "oblivious", False)
            for phase in self.schedule.phases
        )

    def arrivals(self, view: Any, rng: Random) -> int:
        located = self.schedule.phase_at(view.slot)
        if located is None:
            return 0
        index, local_slot = located
        process: ArrivalProcess = self.schedule.phases[index].component
        return process.arrivals(_local_view(view, local_slot), rng)

    def total_planned(self) -> int | None:
        total = 0
        for phase in self.schedule.phases:
            planned = phase.component.total_planned()
            if planned is None:
                return None
            total += planned
        return total

    def exhausted(self, slot: int) -> bool:
        for index, phase in enumerate(self.schedule.phases):
            end = self.schedule.end_of(index)
            if end is not None and end <= slot:
                continue  # phase lies entirely in the past
            local_slot = max(0, slot - self.schedule.start_of(index))
            if not phase.component.exhausted(local_slot):
                return False
        return True

    def describe(self) -> dict[str, object]:
        return {"type": "ScheduledArrivals", "schedule": self.schedule.describe()}


class ScheduledJamming(Jammer):
    """Jamming that follows a piecewise schedule of jamming strategies.

    The adapter is reactive when any phase is (the engine's reactive hook
    is forwarded to the active phase; non-reactive phases never jam
    reactively), needs contention when any phase does, and is oblivious
    only when every phase is and none is reactive.  ``jams_used`` sums the
    per-phase budget counters.
    """

    def __init__(self, *phases: Phase | Schedule) -> None:
        self.schedule = _as_schedule(phases, Jammer, "ScheduledJamming")
        components = [phase.component for phase in self.schedule.phases]
        self.reactive = any(jammer.reactive for jammer in components)
        self.needs_contention = any(jammer.needs_contention for jammer in components)
        self.oblivious = not self.reactive and all(
            getattr(jammer, "oblivious", False) for jammer in components
        )

    def _locate(self, slot: int) -> tuple[Jammer, int] | None:
        located = self.schedule.phase_at(slot)
        if located is None:
            return None
        index, local_slot = located
        return self.schedule.phases[index].component, local_slot

    def jam(self, view: Any, rng: Random) -> bool:
        located = self._locate(view.slot)
        if located is None:
            return False
        jammer, local_slot = located
        return jammer.jam(_local_view(view, local_slot), rng)

    def reactive_jam(
        self, view: Any, senders: Sequence[PacketId], rng: Random
    ) -> bool:
        located = self._locate(view.slot)
        if located is None:
            return False
        jammer, local_slot = located
        if not jammer.reactive:
            return False
        return jammer.reactive_jam(_local_view(view, local_slot), senders, rng)

    def jams_used(self) -> int:
        return sum(phase.component.jams_used() for phase in self.schedule.phases)

    def describe(self) -> dict[str, object]:
        return {
            "type": "ScheduledJamming",
            "schedule": self.schedule.describe(),
            "reactive": self.reactive,
        }
