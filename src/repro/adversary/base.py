"""Adversary interfaces and the system-state snapshot they observe.

The adaptive adversary of the paper bases its decisions for slot ``t`` on the
entire state of the system up to the end of slot ``t − 1`` — including the
internal state (window sizes) of every packet — but not on the coin flips of
slot ``t`` itself.  :class:`SystemView` is exactly that snapshot.  A reactive
adversary additionally gets to see the set of senders of the current slot
through :meth:`Adversary.reactive_jam` before the outcome is committed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from random import Random
from typing import Hashable, Mapping, Sequence

from repro.channel.feedback import SlotOutcome

PacketId = Hashable


@dataclass(frozen=True)
class SystemView:
    """Read-only snapshot of the system visible to an adaptive adversary.

    Attributes
    ----------
    slot:
        Index of the slot about to be played.
    active_packets:
        Ids of packets currently in the system, in arrival order.
    sending_probabilities:
        Per-packet marginal sending probabilities for the upcoming slot
        (``None`` for protocols that do not expose one).  This is the
        adversary's window into packet internal state.
    contention:
        Sum of the known sending probabilities (the paper's ``C(t)``,
        computed over packets that expose a probability).
    arrivals_so_far, departures_so_far, jammed_so_far:
        Cumulative counts up to and including the previous slot.
    active_slots_so_far:
        Number of slots so far with at least one active packet.
    last_outcome:
        Outcome of the previous slot (``None`` before the first slot).
    """

    slot: int
    active_packets: tuple[PacketId, ...]
    sending_probabilities: Mapping[PacketId, float | None] = field(default_factory=dict)
    contention: float = 0.0
    arrivals_so_far: int = 0
    departures_so_far: int = 0
    jammed_so_far: int = 0
    active_slots_so_far: int = 0
    last_outcome: SlotOutcome | None = None

    @property
    def backlog(self) -> int:
        """Number of packets currently in the system."""
        return len(self.active_packets)


class Adversary(abc.ABC):
    """Full adversary: decides injections and jamming for every slot."""

    #: Whether the adversary uses the reactive hook.  The engine only calls
    #: :meth:`reactive_jam` when this is True, which keeps the common case
    #: cheap and makes the adaptive/reactive distinction explicit in results.
    reactive: bool = False

    #: Whether the adversary reads ``SystemView.contention``.  The engine
    #: skips the O(active packets) contention computation when no consumer
    #: needs it.
    needs_contention: bool = False

    #: Whether the adversary reads ``SystemView.sending_probabilities``.
    needs_probabilities: bool = False

    #: Whether the adversary is *oblivious*: its decisions depend only on
    #: the slot index and its own private coins/state, never on the system
    #: state (active packets, windows, contention, counters of past
    #: outcomes).  The engine uses this to take a fast path that skips the
    #: per-slot :class:`SystemView` snapshot entirely; an adversary that
    #: declares itself oblivious but then reads per-packet view fields
    #: fails loudly rather than observing stale data.
    oblivious: bool = False

    @abc.abstractmethod
    def arrivals(self, view: SystemView, rng: Random) -> int:
        """Number of packets to inject at the start of ``view.slot``."""

    @abc.abstractmethod
    def jam(self, view: SystemView, rng: Random) -> bool:
        """Whether to jam ``view.slot`` (decided before the packets' coins)."""

    def reactive_jam(
        self, view: SystemView, senders: Sequence[PacketId], rng: Random
    ) -> bool:
        """Reactive jamming decision, made after seeing the slot's senders.

        Only consulted when :attr:`reactive` is True and :meth:`jam` returned
        False for the slot.  The default implementation never jams.
        """
        return False

    def describe(self) -> dict[str, object]:
        return {"type": type(self).__name__, "reactive": self.reactive}
