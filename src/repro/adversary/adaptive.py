"""Fully custom adaptive adversaries.

Most experiments compose an arrival process with a jammer via
:class:`~repro.adversary.composite.CompositeAdversary`; this module holds
adversaries whose arrival and jamming decisions are *coupled* — the kind of
coordinated strategy an adaptive adversary is allowed (Section 1.1) but that
does not factor cleanly into the two independent pieces.
"""

from __future__ import annotations

from random import Random
from typing import Hashable, Sequence

from repro.adversary.base import Adversary, SystemView

PacketId = Hashable


class BacklogCouplingAdversary(Adversary):
    """Inject whenever the backlog drops, jam whenever it is about to drain.

    A simple coordinated strategy that tries to keep the system perpetually
    "almost empty but never empty": it injects a fresh packet whenever the
    backlog falls below ``target_backlog`` and spends its jamming budget only
    when a single packet remains (the slots in which that packet is most
    likely to finish).  It stresses the L(t) term of the potential function —
    the regime the paper calls out as the hard case for a slow feedback loop —
    and is used in integration tests and the ablation benchmark.

    The adversary stops injecting after ``total_packets`` injections so that
    finite-stream metrics remain well defined.
    """

    vectorizable = True

    def __init__(
        self,
        target_backlog: int,
        total_packets: int,
        jam_budget: int = 0,
    ) -> None:
        if target_backlog < 1:
            raise ValueError("target_backlog must be at least 1")
        if total_packets < 0:
            raise ValueError("total_packets must be non-negative")
        if jam_budget < 0:
            raise ValueError("jam_budget must be non-negative")
        self.target_backlog = target_backlog
        self.total_packets = total_packets
        self.jam_budget = jam_budget
        self._injected = 0
        self._jams_used = 0

    def arrivals(self, view: SystemView, rng: Random) -> int:
        remaining = self.total_packets - self._injected
        if remaining <= 0:
            return 0
        deficit = self.target_backlog - view.backlog
        if deficit <= 0:
            return 0
        injections = min(deficit, remaining)
        self._injected += injections
        return injections

    def jam(self, view: SystemView, rng: Random) -> bool:
        if self._jams_used >= self.jam_budget:
            return False
        if view.backlog != 1:
            return False
        self._jams_used += 1
        return True

    def arrivals_exhausted(self, slot: int) -> bool:
        """No further injections are possible once the packet budget is spent."""
        return self._injected >= self.total_packets

    def describe(self) -> dict[str, object]:
        return {
            "type": "BacklogCouplingAdversary",
            "target_backlog": self.target_backlog,
            "total_packets": self.total_packets,
            "jam_budget": self.jam_budget,
        }
