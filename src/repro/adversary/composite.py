"""Composition of an arrival process and a jammer into a full adversary."""

from __future__ import annotations

from random import Random
from typing import Hashable, Sequence

from repro.adversary.arrivals import ArrivalProcess, NoArrivals
from repro.adversary.base import Adversary, SystemView
from repro.adversary.jamming import Jammer, NoJamming

PacketId = Hashable


class CompositeAdversary(Adversary):
    """An adversary assembled from an arrival process and a jammer.

    Most experiments are expressed this way: pick a workload (arrivals) and
    an attack (jamming) independently and combine them.  The composite
    forwards the reactive hook to the jammer and reports whether it is
    reactive so the engine only pays the reactive-path cost when needed.
    """

    def __init__(
        self,
        arrival_process: ArrivalProcess | None = None,
        jammer: Jammer | None = None,
    ) -> None:
        self.arrival_process = arrival_process or NoArrivals()
        self.jammer = jammer or NoJamming()
        self.reactive = self.jammer.reactive
        self.needs_contention = self.jammer.needs_contention
        # A reactive jammer observes the current slot's senders, so a
        # composite with one is never oblivious even if its parts claim so.
        self.oblivious = (
            not self.reactive
            and getattr(self.arrival_process, "oblivious", False)
            and getattr(self.jammer, "oblivious", False)
        )

    def arrivals(self, view: SystemView, rng: Random) -> int:
        return self.arrival_process.arrivals(view, rng)

    def jam(self, view: SystemView, rng: Random) -> bool:
        return self.jammer.jam(view, rng)

    def reactive_jam(
        self, view: SystemView, senders: Sequence[PacketId], rng: Random
    ) -> bool:
        return self.jammer.reactive_jam(view, senders, rng)

    def arrivals_exhausted(self, slot: int) -> bool:
        """True when the arrival process can inject no further packets."""
        return self.arrival_process.exhausted(slot)

    def describe(self) -> dict[str, object]:
        return {
            "type": "CompositeAdversary",
            "arrivals": self.arrival_process.describe(),
            "jammer": self.jammer.describe(),
            "reactive": self.reactive,
        }
