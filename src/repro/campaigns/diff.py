"""Cross-campaign regression diffing.

Two stored campaigns of the same scenario (typically: one recorded before a
change, one after) are compared **metric by metric, group by group** with
the same Welch t-test / Kolmogorov–Smirnov machinery that guards the
vector-vs-serial equivalence contract
(:func:`repro.analysis.equivalence.compare_result_sets`).  Replicate-level
metrics (throughput, mean accesses, mean latency) are compared as means;
per-packet latency/access distributions are pooled and KS-tested, which is
what catches a distribution-shape regression that leaves the mean intact.

A second mode compares one campaign's recorded wall clock against the
merging BENCH history (:mod:`repro.experiments.bench`), flagging timing
regressions against the last recorded run.

Both modes are surfaced as ``python -m repro campaign diff``, which exits
non-zero on any flagged regression so CI can gate on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.equivalence import EquivalenceReport, compare_result_sets
from repro.campaigns.runner import CampaignError
from repro.dynamics import TrajectoryDiff, compare_trajectory_sets
from repro.sim.results import SimulationResult
from repro.store import ResultsStore


@dataclass
class CampaignDiff:
    """All per-group comparisons between two campaigns."""

    left_id: str
    right_id: str
    reports: dict[str, EquivalenceReport] = field(default_factory=dict)
    trajectories: dict[str, TrajectoryDiff] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        if self.missing:
            return False
        if not all(diff.passed for diff in self.trajectories.values()):
            return False
        return all(report.passed for report in self.reports.values())

    def render(self) -> str:
        lines = [
            f"campaign diff: {self.left_id} vs {self.right_id} — "
            + ("PASS" if self.passed else "REGRESSION")
        ]
        for protocol in sorted(self.reports):
            report = self.reports[protocol]
            lines.append(f"-- [{protocol}]")
            lines.extend("  " + line for line in report.render().splitlines())
            trajectory = self.trajectories.get(protocol)
            if trajectory is not None:
                lines.extend(
                    "  " + line for line in trajectory.render().splitlines()
                )
        lines.extend(f"  missing: {item}" for item in self.missing)
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def _campaign_results(
    store: ResultsStore, campaign_id: str
) -> dict[str, list[SimulationResult]]:
    """Full stored results of one campaign, grouped by protocol."""
    campaign = store.get_campaign(campaign_id)
    if campaign is None:
        raise CampaignError(f"unknown campaign {campaign_id!r}")
    grouped: dict[str, list[SimulationResult]] = {}
    for membership in store.campaign_run_rows(campaign_id):
        result = store.get_result(
            membership["spec_hash"], membership["seed"], membership["backend_layout"]
        )
        if result is None:
            raise CampaignError(
                f"campaign {campaign_id!r}: artifact missing or corrupt for run "
                f"{membership['spec_hash'][:12]}/{membership['seed']}; "
                "the store is damaged — re-run the campaign"
            )
        grouped.setdefault(membership["protocol"], []).append(result)
    if not grouped:
        raise CampaignError(f"campaign {campaign_id!r} has no recorded runs yet")
    return grouped


def diff_campaigns(
    left_store: ResultsStore,
    left_id: str,
    right_store: ResultsStore | None = None,
    right_id: str | None = None,
    *,
    alpha: float = 0.001,
    mean_alpha: float = 0.002,
    relative_tolerance: float = 0.15,
    trajectories: bool = False,
    trajectory_window: int | None = None,
    trajectory_alpha: float = 0.01,
) -> CampaignDiff:
    """Compare two campaigns' stored results metric-by-metric.

    The campaigns may live in one store or two (``right_store`` defaults
    to ``left_store``).  Groups are matched by protocol name; a protocol
    present on only one side is itself flagged as a regression (coverage
    loss is a regression too).

    ``trajectories=True`` additionally compares the *paths* window by
    window (:func:`repro.dynamics.compare_trajectory_sets`), which catches
    a mid-run regression whose end-of-run aggregates cancel out.
    """
    if right_id is None:
        raise CampaignError("diff needs two campaign ids")
    right_store = right_store or left_store
    left = _campaign_results(left_store, left_id)
    right = _campaign_results(right_store, right_id)
    diff = CampaignDiff(left_id=left_id, right_id=right_id)
    for store, campaign_id in ((left_store, left_id), (right_store, right_id)):
        campaign = store.get_campaign(campaign_id) or {}
        if campaign.get("status") != "complete":
            done = store.campaign_run_count(campaign_id)
            # An incomplete side silently shrinks its replicate sets, which
            # weakens every test below — that is itself a regression.
            diff.missing.append(
                f"campaign {campaign_id!r} is incomplete "
                f"({done}/{campaign.get('total_runs')} runs recorded)"
            )
    left_campaign = left_store.get_campaign(left_id) or {}
    right_campaign = right_store.get_campaign(right_id) or {}
    if (
        left_campaign.get("scenario_hash")
        and left_campaign.get("scenario_hash") != right_campaign.get("scenario_hash")
    ):
        diff.notes.append(
            "scenario definitions differ "
            f"({(left_campaign.get('scenario_hash') or '')[:12]} vs "
            f"{(right_campaign.get('scenario_hash') or '')[:12]}); "
            "comparing by protocol anyway"
        )
    for protocol in sorted(set(left) - set(right)):
        diff.missing.append(f"protocol {protocol!r} only in {left_id}")
    for protocol in sorted(set(right) - set(left)):
        diff.missing.append(f"protocol {protocol!r} only in {right_id}")
    for protocol in sorted(set(left) & set(right)):
        diff.reports[protocol] = compare_result_sets(
            left[protocol],
            right[protocol],
            alpha=alpha,
            mean_alpha=mean_alpha,
            relative_tolerance=relative_tolerance,
            labels=(left_id, right_id),
        )
        if trajectories:
            diff.trajectories[protocol] = compare_trajectory_sets(
                left[protocol],
                right[protocol],
                window=trajectory_window,
                alpha=trajectory_alpha,
                relative_tolerance=relative_tolerance,
            )
    return diff


def diff_campaign_trajectories(
    left_store: ResultsStore,
    left_id: str,
    right_store: ResultsStore | None = None,
    right_id: str | None = None,
    *,
    window: int | None = None,
    alpha: float = 0.01,
    relative_tolerance: float = 0.15,
) -> dict[str, TrajectoryDiff]:
    """Trajectory-only comparison of two campaigns, per protocol.

    The backing data comes from the stored result artifacts' per-slot
    series (re-windowed at ``window``), so any two stored campaigns can be
    compared — recording them with ``--dynamics`` is not required.
    Protocols present on only one side are skipped (``campaign diff``
    already flags coverage loss).
    """
    if right_id is None:
        raise CampaignError("trajectory diff needs two campaign ids")
    right_store = right_store or left_store
    left = _campaign_results(left_store, left_id)
    right = _campaign_results(right_store, right_id)
    return {
        protocol: compare_trajectory_sets(
            left[protocol],
            right[protocol],
            window=window,
            alpha=alpha,
            relative_tolerance=relative_tolerance,
        )
        for protocol in sorted(set(left) & set(right))
    }


def diff_campaign_vs_bench(
    store: ResultsStore,
    campaign_id: str,
    bench_path: str | Path,
    *,
    bench_id: str | None = None,
    factor: float = 1.5,
) -> dict[str, Any]:
    """Compare one campaign's wall clock against recorded BENCH history.

    ``bench_id`` defaults to ``campaign:<scenario_id>`` (the key the
    campaign bench writes under).  The campaign regresses when its
    cumulative execution time exceeds ``factor`` × the latest recorded
    seconds.  Returns a summary dict with a ``passed`` flag.
    """
    campaign = store.get_campaign(campaign_id)
    if campaign is None:
        raise CampaignError(f"unknown campaign {campaign_id!r}")
    if campaign["status"] != "complete":
        raise CampaignError(
            f"campaign {campaign_id!r} is {campaign['status']}; its partial "
            "elapsed time would pass the wall-clock gate spuriously — "
            "resume it first"
        )
    if bench_id is None:
        bench_id = f"campaign:{campaign['scenario_id']}"
    path = Path(bench_path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"cannot read bench history {path}: {exc}") from exc
    entry = data.get(bench_id)
    latest = (entry or {}).get("latest") if isinstance(entry, dict) else None
    if not isinstance(latest, dict) or "seconds" not in latest:
        raise CampaignError(
            f"bench history {path} has no usable entry {bench_id!r}; "
            f"known ids: {', '.join(sorted(data)) or '(none)'}"
        )
    recorded = float(latest["seconds"])
    measured = float(campaign["elapsed_seconds"] or 0.0)
    budget = recorded * factor
    return {
        "campaign_id": campaign_id,
        "bench_id": bench_id,
        "campaign_seconds": round(measured, 4),
        "recorded_seconds": round(recorded, 4),
        "factor": factor,
        "budget_seconds": round(budget, 4),
        "passed": measured <= budget,
    }
