"""Resumable replication campaigns over the results store.

A *campaign* executes a :class:`~repro.experiments.plan.SweepPlan`
(typically compiled from a :class:`~repro.scenarios.spec.Scenario`) against
any execution backend with **checkpointed progress**: the plan is cut into
units (one unit per scalar run chunk, one unit per lockstep vector batch),
every completed unit is committed to the :class:`~repro.store.ResultsStore`
transactionally, and an interrupted campaign — killed at any point —
resumes by skipping everything already stored and completes bit-identically
to an uninterrupted run.

On top of the store, :mod:`repro.campaigns.diff` compares two campaigns (or
one campaign's wall clock against recorded BENCH history) metric-by-metric
with the Welch/KS machinery from :mod:`repro.analysis.equivalence`.
"""

from repro.campaigns.runner import (
    CampaignError,
    CampaignInterrupted,
    CampaignOutcome,
    campaign_report,
    campaign_status_rows,
    default_campaign_id,
    resume_campaign,
    start_campaign,
)
from repro.campaigns.diff import (
    diff_campaign_trajectories,
    diff_campaign_vs_bench,
    diff_campaigns,
)

__all__ = [
    "CampaignError",
    "CampaignInterrupted",
    "CampaignOutcome",
    "campaign_report",
    "campaign_status_rows",
    "default_campaign_id",
    "diff_campaign_trajectories",
    "diff_campaign_vs_bench",
    "diff_campaigns",
    "resume_campaign",
    "start_campaign",
]
