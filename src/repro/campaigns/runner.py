"""The checkpointed, resumable campaign runner.

Execution model
---------------

A campaign's plan is partitioned into **units**, the checkpoint granularity:

* a replication group that the vector engine can batch (when the campaign
  runs on the ``vector`` backend) is **one unit** — the whole lockstep
  batch runs or re-runs together, because a vectorized result is a
  deterministic function of the entire ordered batch (see
  :func:`repro.experiments.plan.batch_signature`), not of its own spec;
* every other spec is individually deterministic, so scalar runs are
  chunked into units of ``checkpoint_every`` and each run can be skipped
  or re-run on its own.

After a unit executes, its results are written to the store and its
membership rows committed in one transaction.  A kill therefore loses at
most the unit in flight; everything committed is durable, every store
write is idempotent (content-addressed artifacts, insert-or-ignore
registry rows), and a resumed campaign re-runs only what is missing —
producing a store bit-identical (by :meth:`~repro.store.ResultsStore.fingerprint`)
to an uninterrupted run.

Deterministic interruption for tests and benchmarks: ``fail_after_units=N``
(or the ``REPRO_CAMPAIGN_FAIL_AFTER_UNITS`` environment variable for the
CLI) raises :class:`CampaignInterrupted` after the N-th unit commit, which
is observably equivalent to a hard kill at that unit boundary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Sequence

from repro.exec.backends import ExecutionBackend, ProcessPoolBackend, SerialBackend
from repro.experiments.plan import RunSpec, SweepPlan, batch_signature
from repro.experiments.spec import ExperimentReport, ExperimentSpec
from repro.store import METRIC_COLUMNS, ResultsStore
from repro.telemetry import current as current_telemetry

#: Scalar runs committed per checkpoint transaction.
DEFAULT_CHECKPOINT_EVERY = 8

#: Backends a campaign can execute on (the cache wrapper is implicit — the
#: store *is* the campaign's persistence layer).
CAMPAIGN_BACKENDS = ("serial", "processes", "vector")


class CampaignError(ValueError):
    """A campaign request is malformed or refers to unknown state."""


class CampaignInterrupted(RuntimeError):
    """Raised by the deterministic interruption hook after a unit commit."""

    def __init__(self, campaign_id: str, units_done: int) -> None:
        super().__init__(
            f"campaign {campaign_id!r} interrupted after {units_done} unit(s) "
            "(fail_after_units hook)"
        )
        self.campaign_id = campaign_id
        self.units_done = units_done


@dataclass(frozen=True)
class CampaignOutcome:
    """What one ``run``/``resume`` invocation did."""

    campaign_id: str
    status: str  # "complete" or "running"
    total_runs: int
    executed_runs: int
    skipped_runs: int
    elapsed_seconds: float


@dataclass(frozen=True)
class _Unit:
    group_id: int
    protocol: str
    indices: tuple[int, ...]
    layout: str
    vectorized: bool


def _utcnow_iso() -> str:
    import datetime

    return datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")


def default_campaign_id(
    scenario_id: str, scenario_hash: str, scale: str, seeds: Sequence[int], backend: str
) -> str:
    """Deterministic campaign id: scenario slug + digest of the full request."""
    import hashlib
    import json

    payload = json.dumps(
        [scenario_hash, scale, list(seeds), backend], separators=(",", ":")
    )
    return f"{scenario_id}-{hashlib.sha256(payload.encode()).hexdigest()[:8]}"


def _partition_units(
    plan: SweepPlan, backend_name: str, checkpoint_every: int
) -> tuple[list[_Unit], list[str]]:
    """Cut the plan into checkpoint units; returns (units, spec hashes)."""
    specs = plan.specs
    hashes: list[str | None] = [spec.cache_key() for spec in specs]
    for index, spec_hash in enumerate(hashes):
        if spec_hash is None:
            raise CampaignError(
                f"spec {index} has no stable content hash (cache_key() is None); "
                "campaigns require fully declarative RunSpecs"
            )
    units: list[_Unit] = []
    for group in plan.groups:
        group_specs = [specs[index] for index in group.spec_indices]
        vectorize = (
            backend_name == "vector" and group_specs[0].vector_support() is None
        )
        if vectorize:
            signature = batch_signature(group_specs)
            assert signature is not None  # hashes checked above
            units.append(
                _Unit(
                    group_id=group.group_id,
                    protocol=group.protocol_name,
                    indices=tuple(group.spec_indices),
                    layout=f"vector:{signature}",
                    vectorized=True,
                )
            )
        else:
            indices = list(group.spec_indices)
            for start in range(0, len(indices), checkpoint_every):
                units.append(
                    _Unit(
                        group_id=group.group_id,
                        protocol=group.protocol_name,
                        indices=tuple(indices[start : start + checkpoint_every]),
                        layout="scalar",
                        vectorized=False,
                    )
                )
    return units, hashes  # type: ignore[return-value]


def _scalar_backend(backend_name: str, workers: int | None) -> ExecutionBackend:
    if backend_name == "processes":
        return ProcessPoolBackend(workers=workers)
    # The vector backend's scalar fallback is serial execution, so campaign
    # scalar units under --backend vector take exactly that path.
    return SerialBackend()


def _run_vector_unit(specs: list[RunSpec]):
    from repro.sim.vector import VectorSimulator

    # Only the batch construction is timed here; the engine's run() emits
    # its own simulate/finalize phase spans, and wrapping it again would
    # double-count the unit's wall-clock in telemetry summaries.
    with current_telemetry().span(
        "build", kind="phase", backend="vector", jobs=len(specs)
    ):
        batch = VectorSimulator.from_specs(specs)
    return batch.run()


def _execute(
    store: ResultsStore,
    plan: SweepPlan,
    campaign_id: str,
    *,
    backend_name: str,
    scenario_hash: str | None,
    workers: int | None,
    checkpoint_every: int,
    fail_after_units: int | None,
) -> CampaignOutcome:
    if backend_name == "processes":
        # A checkpoint unit is also one pool invocation, so a unit smaller
        # than the pool would cap concurrency at checkpoint_every and pay
        # pool startup per handful of runs.  Durability granularity is
        # traded up to the pool width — the natural floor, since a full
        # pool finishes ~workers runs per wave anyway.
        import os as _os

        checkpoint_every = max(checkpoint_every, workers or _os.cpu_count() or 1)
    tele = current_telemetry()
    # Partitioning hashes every spec (content-addressed identity), which
    # is real work on large plans — time it as part of the build phase.
    with tele.span(
        "build", kind="phase", backend=backend_name, op="partition-units"
    ):
        units, hashes = _partition_units(plan, backend_name, checkpoint_every)
    specs = plan.specs
    scalar_backend = _scalar_backend(backend_name, workers)
    executed = 0
    skipped = 0
    total_elapsed = 0.0
    units_done = 0
    runs_done = 0
    total_runs = len(specs)
    for unit_index, unit in enumerate(units):
        unit_started_at = _utcnow_iso()
        started = time.perf_counter()
        with tele.span(
            "commit", kind="phase", backend=backend_name, op="pending-check"
        ):
            pending = [
                index
                for index in unit.indices
                if not store.has_run(hashes[index], specs[index].seed, unit.layout)
            ]
        if unit.vectorized and pending:
            # A vector batch is all-or-nothing: partially stored runs (a
            # kill between artifact writes) are simply re-produced — the
            # re-run is bit-identical, so the store converges.
            pending = list(unit.indices)
        if pending:
            pending_specs = [specs[index] for index in pending]
            if unit.vectorized:
                # _run_vector_unit and the engine emit their own
                # build/simulate/finalize phase spans.
                results = _run_vector_unit(pending_specs)
            else:
                # The scalar backend emits its own build/simulate spans.
                results = scalar_backend.run(pending_specs)
            with tele.span(
                "commit",
                kind="phase",
                backend=backend_name,
                op="put-run",
                unit=unit_index,
                runs=len(pending),
            ):
                for index, result in zip(pending, results):
                    store.put_run(
                        hashes[index],
                        specs[index].seed,
                        unit.layout,
                        result,
                        scenario_hash=scenario_hash,
                        source="campaign",
                    )
        elapsed = time.perf_counter() - started
        # The unit span is persisted in the store whether or not telemetry
        # is on — it is provenance (outside the fingerprint) and is what
        # `campaign status` derives per-unit wall-clock and ETA from.
        with tele.span(
            "commit", kind="phase", backend=backend_name, op="record-unit"
        ):
            store.record_campaign_unit(
                campaign_id,
                [
                    (
                        index,
                        unit.group_id,
                        unit.protocol,
                        hashes[index],
                        specs[index].seed,
                        unit.layout,
                    )
                    for index in unit.indices
                ],
                elapsed_seconds=elapsed,
                # A pure-skip unit (everything already stored — the resume
                # path) must not overwrite the original unit span with a
                # near-zero one: the persisted spans are what status/ETA
                # derive per-unit wall-clock from.
                unit_index=unit_index if pending else None,
                started_at=unit_started_at,
            )
        executed += len(pending)
        skipped += len(unit.indices) - len(pending)
        total_elapsed += elapsed
        units_done += 1
        runs_done += len(unit.indices)
        if tele.enabled:
            tele.span_record(
                "unit",
                elapsed,
                kind="unit",
                backend=backend_name,
                campaign=campaign_id,
                unit=unit_index,
                runs=len(unit.indices),
                executed=len(pending),
            )
            tele.progress(
                f"campaign {campaign_id}",
                runs_done,
                total_runs,
                units_done=units_done,
                units=len(units),
                # Lets the progress sink rate-limit on *executed* work: a
                # resumed campaign skips stored runs near-instantly, and a
                # rate derived from skipped+executed would project a
                # nonsense ETA for the real work that follows.
                executed=executed,
            )
        if fail_after_units is not None and units_done >= fail_after_units:
            if units_done < len(units):
                raise CampaignInterrupted(campaign_id, units_done)
    with tele.span("commit", kind="phase", backend=backend_name, op="finish"):
        store.finish_campaign(campaign_id)
    return CampaignOutcome(
        campaign_id=campaign_id,
        status="complete",
        total_runs=len(specs),
        executed_runs=executed,
        skipped_runs=skipped,
        elapsed_seconds=total_elapsed,
    )


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def start_campaign(
    store: ResultsStore,
    scenario,
    *,
    scale: str = "default",
    seeds: Sequence[int] | None = None,
    backend_name: str = "serial",
    workers: int | None = None,
    campaign_id: str | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    fail_after_units: int | None = None,
    dynamics_window: int = 0,
) -> CampaignOutcome:
    """Create and execute a new campaign for ``scenario``.

    The scenario definition, resolved seed list, scale, and backend are
    recorded in the store so :func:`resume_campaign` can rebuild the exact
    same plan later — including from a different process after a kill.

    ``dynamics_window`` turns on windowed dynamics sampling for executed
    runs (trajectories are persisted next to the run artifacts).  It is an
    observability knob, not part of the campaign's identity: spec hashes
    and the store fingerprint are unchanged by it, and a resume may choose
    a different window (only runs actually executed record trajectories).
    """
    from repro.scenarios.runner import build_plan, scenario_seeds

    if backend_name not in CAMPAIGN_BACKENDS:
        raise CampaignError(
            f"unknown campaign backend {backend_name!r}; "
            f"expected one of {CAMPAIGN_BACKENDS}"
        )
    if checkpoint_every < 1:
        raise CampaignError("checkpoint_every must be at least 1")
    if workers is not None and workers <= 0:
        # Checked here, before the campaign row is created: a backend
        # constructor raising later would strand a 'running' campaign.
        raise CampaignError("workers must be positive")
    seed_list = scenario_seeds(scenario, scale, seeds)
    scenario_hash = scenario.content_hash()
    if campaign_id is None:
        campaign_id = default_campaign_id(
            scenario.scenario_id, scenario_hash, scale, seed_list, backend_name
        )
    existing = store.get_campaign(campaign_id)
    if existing is not None:
        raise CampaignError(
            f"campaign {campaign_id!r} already exists "
            f"(status {existing['status']}); use resume"
        )
    tele = current_telemetry()
    with tele.span("build", kind="phase", backend=backend_name, op="plan"):
        plan = build_plan(scenario, scale, seed_list, dynamics_window=dynamics_window)
    with tele.span(
        "commit", kind="phase", backend=backend_name, op="create-campaign"
    ):
        store.create_campaign(
            campaign_id,
            scenario_id=scenario.scenario_id,
            scenario_hash=scenario_hash,
            definition=scenario.to_dict(),
            scale=scale,
            seeds=seed_list,
            backend=backend_name,
            total_runs=len(plan),
        )
    return _execute(
        store,
        plan,
        campaign_id,
        backend_name=backend_name,
        scenario_hash=scenario_hash,
        workers=workers,
        checkpoint_every=checkpoint_every,
        fail_after_units=fail_after_units,
    )


def resume_campaign(
    store: ResultsStore,
    campaign_id: str,
    *,
    workers: int | None = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    fail_after_units: int | None = None,
    dynamics_window: int = 0,
) -> CampaignOutcome:
    """Complete an interrupted campaign (no-op when already complete).

    The plan is rebuilt deterministically from the stored scenario
    definition + seeds + scale; runs already in the store are skipped, so
    the finished store is bit-identical to an uninterrupted run's.
    """
    import json

    from repro.scenarios.runner import build_plan
    from repro.scenarios.spec import scenario_from_dict

    row = store.get_campaign(campaign_id)
    if row is None:
        known = ", ".join(c["campaign_id"] for c in store.list_campaigns()) or "(none)"
        raise CampaignError(
            f"unknown campaign {campaign_id!r}; known campaigns: {known}"
        )
    if workers is not None and workers <= 0:
        raise CampaignError("workers must be positive")
    if row["status"] == "complete":
        return CampaignOutcome(
            campaign_id=campaign_id,
            status="complete",
            total_runs=row["total_runs"],
            executed_runs=0,
            skipped_runs=row["total_runs"],
            elapsed_seconds=0.0,
        )
    if not row["definition"]:
        raise CampaignError(
            f"campaign {campaign_id!r} has no stored scenario definition "
            "and cannot be resumed from the CLI"
        )
    scenario = scenario_from_dict(
        json.loads(row["definition"]), source=f"campaign:{campaign_id}"
    )
    if scenario.content_hash() != row["scenario_hash"]:
        raise CampaignError(
            f"campaign {campaign_id!r}: stored definition no longer matches its "
            "recorded content hash; refusing to resume against different science"
        )
    seeds = json.loads(row["seeds"])
    with current_telemetry().span(
        "build", kind="phase", backend=row["backend"], op="plan"
    ):
        plan = build_plan(
            scenario, row["scale"], seeds, dynamics_window=dynamics_window
        )
    if len(plan) != row["total_runs"]:
        raise CampaignError(
            f"campaign {campaign_id!r}: rebuilt plan has {len(plan)} runs but "
            f"{row['total_runs']} were recorded; code drift detected"
        )
    return _execute(
        store,
        plan,
        campaign_id,
        backend_name=row["backend"],
        scenario_hash=row["scenario_hash"],
        workers=workers,
        checkpoint_every=checkpoint_every,
        fail_after_units=fail_after_units,
    )


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------


def estimate_eta_seconds(
    runs_done: int, total_runs: int, elapsed_seconds: float
) -> float | None:
    """Remaining wall-clock estimate from per-run observed rate.

    ``None`` when there is nothing to estimate from (no completed runs
    yet) or nothing left to do.  The rate comes from the persisted unit
    spans' total elapsed, so it survives interruption: a resumed
    campaign's ETA reflects all work ever done on it.
    """
    if runs_done <= 0 or total_runs <= runs_done or elapsed_seconds <= 0:
        return None
    return (total_runs - runs_done) * (elapsed_seconds / runs_done)


def campaign_status_rows(store: ResultsStore) -> list[dict[str, Any]]:
    """One summary row per campaign: progress, backend, timing, ETA.

    ``units_done``/``slowest_unit_seconds`` come from the persisted
    per-unit spans (``campaign_units``); ``eta_seconds`` is ``None`` for
    campaigns that are complete or have no timing data yet;
    ``unit_imbalance`` is the max/mean unit wall-clock index
    (:func:`repro.observe.workers.unit_imbalance` — 1.0 is a perfectly
    level campaign, ``None`` below two timed units).
    """
    from repro.observe.workers import unit_imbalance

    rows = []
    for campaign in store.list_campaigns():
        campaign_id = campaign["campaign_id"]
        done = store.campaign_run_count(campaign_id)
        unit_rows = store.campaign_units(campaign_id)
        elapsed = round(campaign["elapsed_seconds"] or 0.0, 4)
        eta = (
            estimate_eta_seconds(done, campaign["total_runs"], elapsed)
            if campaign["status"] != "complete"
            else None
        )
        rows.append(
            {
                "campaign_id": campaign_id,
                "scenario_id": campaign["scenario_id"],
                "scenario_hash": campaign["scenario_hash"],
                "scale": campaign["scale"],
                "backend": campaign["backend"],
                "status": campaign["status"],
                "runs_done": done,
                "total_runs": campaign["total_runs"],
                "elapsed_seconds": elapsed,
                "units_done": len(unit_rows),
                "slowest_unit_seconds": (
                    round(max(row["elapsed_seconds"] for row in unit_rows), 4)
                    if unit_rows
                    else None
                ),
                "unit_imbalance": unit_imbalance(
                    [row["elapsed_seconds"] for row in unit_rows]
                ),
                "eta_seconds": round(eta, 4) if eta is not None else None,
                "created_at": campaign["created_at"],
            }
        )
    return rows


def campaign_report(store: ResultsStore, campaign_id: str) -> ExperimentReport:
    """Aggregate a stored campaign into a standard experiment report.

    Rows are computed from the registry's metric columns alone — no
    artifact is unpickled — which is the payoff of storing summaries as
    columns.  One row per replication group, replicate means per metric,
    mirroring :func:`repro.experiments.plan.aggregate_replicate_row`.
    """
    campaign = store.get_campaign(campaign_id)
    if campaign is None:
        raise CampaignError(f"unknown campaign {campaign_id!r}")
    memberships = store.campaign_run_rows(campaign_id)
    report = ExperimentReport(
        spec=ExperimentSpec(
            exp_id=campaign_id,
            title=f"Campaign {campaign_id} ({campaign['scenario_id']})",
            claim="stored replication campaign",
            bench_target=f"python -m repro campaign show {campaign_id}",
        )
    )
    by_group: dict[int, list[dict[str, Any]]] = {}
    unbacked = 0
    for membership in memberships:
        run = store.get_run(
            membership["spec_hash"], membership["seed"], membership["backend_layout"]
        )
        if run is None:
            unbacked += 1
            continue
        by_group.setdefault(membership["group_id"], []).append(
            {"protocol": membership["protocol"], **run.metrics}
        )
    # Report-row names for the count-style columns (matching the rows
    # `aggregate_replicate_row` produces); everything else keeps its
    # METRIC_COLUMNS name and is averaged over replicates.
    renames = {"num_arrivals": "arrivals", "num_delivered": "delivered"}
    for group_id in sorted(by_group):
        runs = by_group[group_id]
        count = len(runs)
        row: dict[str, Any] = {
            "protocol": runs[0]["protocol"],
            "scenario": campaign["scenario_id"],
            "replicates": count,
        }
        for metric in METRIC_COLUMNS:
            if metric == "drained":
                row["drained"] = all(run["drained"] for run in runs)
            elif metric == "num_slots":
                continue  # a horizon setting, not an outcome worth a column
            else:
                row[renames.get(metric, metric)] = (
                    sum(run[metric] for run in runs) / count
                )
        report.add_row(row)
    for row in report.rows:
        report.verdicts[f"{row['protocol']}_throughput"] = f"{row['throughput']:.3f}"
    done = len(memberships)
    report.notes.append(
        f"status={campaign['status']}: {done}/{campaign['total_runs']} runs recorded "
        f"on backend {campaign['backend']} at scale {campaign['scale']}"
    )
    unit_rows = store.campaign_units(campaign_id)
    if unit_rows:
        total_elapsed = campaign["elapsed_seconds"] or 0.0
        slowest = max(unit_rows, key=lambda row: row["elapsed_seconds"])
        mean_unit = total_elapsed / len(unit_rows) if unit_rows else 0.0
        report.notes.append(
            f"timing: {len(unit_rows)} unit(s) in {total_elapsed:.2f}s wall-clock "
            f"(mean {mean_unit:.2f}s/unit; slowest unit #{slowest['unit_index']} "
            f"[{slowest['protocol']}, {slowest['runs']} runs] "
            f"{slowest['elapsed_seconds']:.2f}s)"
        )
        if campaign["status"] != "complete":
            eta = estimate_eta_seconds(done, campaign["total_runs"], total_elapsed)
            if eta is not None:
                report.notes.append(f"eta: ~{eta:.1f}s of work remaining")
    if unbacked:
        # Aggregates above silently averaged over fewer replicates; say so
        # loudly — a registry row behind a recorded membership is gone,
        # which means the store has been damaged or over-pruned.
        report.notes.append(
            f"WARNING: {unbacked} recorded run(s) have no registry row; "
            "aggregates cover fewer replicates (store damaged or pruned?)"
        )
    report.notes.append(f"scenario content hash: {(campaign['scenario_hash'] or '')[:12]}")
    return report
