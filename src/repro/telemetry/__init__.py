"""Zero-dependency observability for the repro stack.

See :mod:`repro.telemetry.core` for the session/span/event model,
:mod:`repro.telemetry.sinks` for the JSONL / in-memory / stderr-progress
sinks, and :mod:`repro.telemetry.summarize` for the offline aggregator
behind ``repro telemetry summarize``.
"""

from repro.telemetry.core import (
    NULL_SESSION,
    NullSession,
    Sink,
    Span,
    TelemetrySession,
    activate,
    activated,
    current,
    deactivate,
)
from repro.telemetry.sinks import JsonlSink, MemorySink, ProgressSink
from repro.telemetry.summarize import (
    filter_events,
    iter_events,
    read_events,
    render_summary,
    summarize_events,
    summarize_file,
)

__all__ = [
    "NULL_SESSION",
    "NullSession",
    "Sink",
    "Span",
    "TelemetrySession",
    "activate",
    "activated",
    "current",
    "deactivate",
    "JsonlSink",
    "MemorySink",
    "ProgressSink",
    "filter_events",
    "iter_events",
    "read_events",
    "render_summary",
    "summarize_events",
    "summarize_file",
]
