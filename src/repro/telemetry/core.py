"""The telemetry session: spans, counters, events, and progress.

One :class:`TelemetrySession` is active per process at a time (set with
:func:`activate`/:func:`deactivate` or the :func:`activated` context
manager); instrumented code asks :func:`current` for it.  When nothing is
active, :func:`current` returns the shared :data:`NULL_SESSION`, whose
methods are empty no-ops — the disabled path costs one module-global read
plus an attribute check, which is what lets instrumentation live inside
the execution layers without a measurable tax (the enabled-vs-disabled
ratio is gated in ``benchmarks/bench_telemetry_overhead.py``).

The hard contract of the whole subsystem is that telemetry is **RNG-inert
and result-inert**: a session only ever *reads* monotonic clocks and
already-computed state, never draws randomness from the simulation's
streams, and never feeds anything back into a result.  Store fingerprints
with telemetry on and off are bit-identical on every backend (enforced by
tests in ``tests/test_telemetry.py``).  The correlation id is drawn from
``uuid4`` (OS entropy), which touches neither ``random`` nor numpy
generators.

Event records are flat JSON-friendly dicts with a shared envelope::

    {"ts": 0.0123, "run": "<correlation id>", "ev": "<kind>", ...}

``ts`` is seconds since the session opened, measured on the monotonic
clock (wall-clock anchors live in the ``session_start`` event).  Kinds:

``session_start`` / ``session_end``
    Session lifecycle; ``session_start`` carries the wall-clock time and
    pid, ``session_end`` the total elapsed seconds.
``span``
    One timed region: ``name``, ``dur`` (seconds) and free-form ``attrs``.
    The ``kind`` attr partitions spans for summarisation: ``root`` spans
    bound a whole run's wall clock, ``phase`` spans (build / simulate /
    finalize / commit) decompose it, ``unit`` spans mark campaign
    checkpoint units (excluded from phase coverage, since the phases
    inside them already count).
``counter``
    A named numeric accumulation (``name``, ``value``, ``attrs``) —
    hot-loop totals sampled *outside* the per-slot path.
``event``
    A named point event (``name``, ``attrs``) — cache lookups, vector
    fallbacks, mega-batch composition.
``progress``
    Completion state (``label``, ``done``, ``total``, ``attrs``) consumed
    live by the stderr progress sink and ignored by the summarizer.
"""

from __future__ import annotations

import datetime
import os
import time
import uuid
from typing import Any, Iterator, Sequence


class Sink:
    """Where telemetry events go.  Subclasses override :meth:`emit`."""

    def emit(self, record: dict[str, Any]) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (no-op by default)."""


class _NullSpan:
    """The shared no-op span (disabled path); safe to re-enter."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Span:
    """A timed region; use as a context manager.

    The duration is measured on the monotonic clock and emitted as one
    ``span`` event when the region exits (no begin event — half the
    volume, and the summarizer only needs durations).  Spans are emitted
    even when the region raises, so a failing sweep still accounts for
    the time it burned.
    """

    __slots__ = ("_session", "name", "attrs", "_started")

    def __init__(self, session: "TelemetrySession", name: str, attrs: dict[str, Any]):
        self._session = session
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "Span":
        self._started = time.monotonic()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._session._emit_span(
            self.name, time.monotonic() - self._started, self.attrs
        )
        return False


class NullSession:
    """The disabled session: every operation is an empty no-op.

    ``enabled`` is ``False`` so hot paths can skip even argument
    construction with ``if tele.enabled:`` guards where that matters.
    """

    enabled = False
    run_id = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def span_record(self, name: str, duration: float, **attrs: Any) -> None:
        pass

    def counter(self, name: str, value: float, **attrs: Any) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def progress(self, label: str, done: int, total: int, **attrs: Any) -> None:
        pass

    def close(self) -> None:
        pass


#: The process-wide disabled session (shared; never mutated).
NULL_SESSION = NullSession()

_CURRENT: "TelemetrySession | NullSession" = NULL_SESSION


def current() -> "TelemetrySession | NullSession":
    """The active session, or :data:`NULL_SESSION` when telemetry is off."""
    return _CURRENT


def activate(session: "TelemetrySession") -> None:
    """Make ``session`` the process's active telemetry session."""
    global _CURRENT
    _CURRENT = session


def deactivate() -> None:
    """Restore the disabled no-op session."""
    global _CURRENT
    _CURRENT = NULL_SESSION


class activated:
    """Context manager: activate ``session`` for a block, then close it.

    ``activated(None)`` is a no-op block, which lets CLI code write one
    ``with`` statement whether or not the user asked for telemetry.
    """

    def __init__(self, session: "TelemetrySession | None") -> None:
        self._session = session

    def __enter__(self) -> "TelemetrySession | NullSession":
        if self._session is not None:
            activate(self._session)
        return current()

    def __exit__(self, *exc_info: object) -> bool:
        if self._session is not None:
            deactivate()
            self._session.close()
        return False


class TelemetrySession:
    """An enabled telemetry session fanning events out to its sinks.

    Parameters
    ----------
    sinks:
        Where events go; see :mod:`repro.telemetry.sinks`.  A session
        with no sinks is legal (events are dropped) but pointless.
    run_id:
        Correlation id stamped on every event; defaults to 12 hex chars
        of OS entropy.  All events written by one session — across
        subsystems and sinks — share it, which is what lets a summarizer
        separate interleaved runs in one JSONL file.
    """

    enabled = True

    def __init__(
        self, sinks: Sequence[Sink] = (), run_id: str | None = None
    ) -> None:
        self._sinks = list(sinks)
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:12]
        self._t0 = time.monotonic()
        self._closed = False
        self._emit(
            {
                "ev": "session_start",
                "wall_time": datetime.datetime.now(datetime.timezone.utc).isoformat(
                    timespec="milliseconds"
                ),
                "pid": os.getpid(),
            }
        )

    # -- Emission -----------------------------------------------------------

    def _emit(self, record: dict[str, Any]) -> None:
        record.setdefault("ts", round(time.monotonic() - self._t0, 6))
        record["run"] = self.run_id
        for sink in self._sinks:
            sink.emit(record)

    def _emit_span(self, name: str, duration: float, attrs: dict[str, Any]) -> None:
        self._emit(
            {
                "ev": "span",
                "name": name,
                "dur": round(duration, 6),
                "attrs": attrs,
            }
        )

    # -- Public API ---------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager timing one region (see :class:`Span`)."""
        return Span(self, name, attrs)

    def span_record(self, name: str, duration: float, **attrs: Any) -> None:
        """Record an externally-timed span (e.g. measured in a pool worker)."""
        self._emit_span(name, float(duration), attrs)

    def counter(self, name: str, value: float, **attrs: Any) -> None:
        """Accumulate ``value`` under ``name`` (summed by the summarizer)."""
        self._emit({"ev": "counter", "name": name, "value": value, "attrs": attrs})

    def event(self, name: str, **attrs: Any) -> None:
        """A named point event (fallbacks, cache lookups, compositions…)."""
        self._emit({"ev": "event", "name": name, "attrs": attrs})

    def progress(self, label: str, done: int, total: int, **attrs: Any) -> None:
        """Completion state for live progress sinks (``done`` of ``total``)."""
        self._emit(
            {
                "ev": "progress",
                "label": label,
                "done": int(done),
                "total": int(total),
                "attrs": attrs,
            }
        )

    def close(self) -> None:
        """Emit ``session_end`` and close every sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._emit(
            {
                "ev": "session_end",
                "elapsed_seconds": round(time.monotonic() - self._t0, 6),
            }
        )
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "TelemetrySession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def sinks(self) -> Iterator[Sink]:
        return iter(self._sinks)
