"""Telemetry sinks: JSONL file, in-memory, and live stderr progress.

Sinks receive the flat event dicts described in
:mod:`repro.telemetry.core` and must never raise into the instrumented
code path — a broken disk or closed pipe should degrade observability,
not a simulation.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, TextIO


class JsonlSink:
    """Appends one JSON object per line to a file, flushing every line.

    The per-line flush is the SIGKILL contract: if the process dies
    mid-write, at most the final line is truncated, and
    :func:`repro.telemetry.summarize.read_events` tolerates exactly that.
    Opened in append mode so several sessions (e.g. an interrupted
    campaign and its resume) can share one file, distinguished by their
    ``run`` correlation ids.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: TextIO | None = self.path.open("a", encoding="utf-8")

    def emit(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            return
        try:
            self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._handle.flush()
        except (OSError, ValueError):
            self._handle = None

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


class MemorySink:
    """Collects events in a list — the test double.

    ``records`` holds every emitted dict in order; helpers pull out the
    shapes tests assert on most.
    """

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        # Copy: the session reuses no dicts today, but tests should not
        # depend on that.
        self.records.append(dict(record))

    def close(self) -> None:
        pass

    def spans(self, name: str | None = None) -> list[dict[str, Any]]:
        return [
            r
            for r in self.records
            if r.get("ev") == "span" and (name is None or r.get("name") == name)
        ]

    def counters(self, name: str | None = None) -> list[dict[str, Any]]:
        return [
            r
            for r in self.records
            if r.get("ev") == "counter" and (name is None or r.get("name") == name)
        ]

    def events(self, name: str | None = None) -> list[dict[str, Any]]:
        return [
            r
            for r in self.records
            if r.get("ev") == "event" and (name is None or r.get("name") == name)
        ]

    def counter_total(self, name: str) -> float:
        return sum(r["value"] for r in self.counters(name))


class ProgressSink:
    """Renders live completion, rate, and ETA on stderr.

    Consumes ``progress`` events (``label``, ``done``, ``total``) and
    ignores everything else.  Rate and ETA are computed per label from
    the monotonic clock between the first and latest event, so a
    campaign's unit progress and a sweep's spec progress render
    independently.  When the event carries an ``executed`` attribute
    (campaigns emit it), the rate is derived from *executed* work this
    session rather than raw ``done`` — a resumed campaign skips stored
    runs near-instantly, and a rate that counted skips would project an
    absurdly optimistic ETA for the real work remaining.

    On a TTY, output is throttled to ~10 lines/second and drawn with
    carriage returns; a newline is written when a label completes or the
    sink closes, so scrollback keeps one final line per label.  When the
    stream is not a TTY (redirected to a file, CI logs), carriage-return
    repainting would interleave into garbage, so the sink writes plain
    newline-terminated lines at a slower cadence instead.
    """

    #: Minimum seconds between repaints (final updates always paint).
    min_interval = 0.1
    #: Minimum seconds between plain lines when not attached to a TTY.
    min_interval_notty = 2.0

    def __init__(self, stream: TextIO | None = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        try:
            self._tty = bool(getattr(self._stream, "isatty", lambda: False)())
        except (OSError, ValueError):
            self._tty = False
        self._started: dict[str, tuple[float, int, int]] = {}
        self._last_paint = 0.0
        self._dirty_line = False

    def emit(self, record: dict[str, Any]) -> None:
        if record.get("ev") != "progress":
            return
        label = str(record.get("label", ""))
        done = int(record.get("done", 0))
        total = int(record.get("total", 0))
        attrs = record.get("attrs") or {}
        executed = attrs.get("executed")
        executed = int(executed) if executed is not None else None
        now = time.monotonic()
        if label not in self._started:
            # Anchor the rate at the first observation; `done` may be
            # non-zero on resume, and only work after the anchor counts.
            self._started[label] = (now, done, executed or 0)
        final = total > 0 and done >= total
        interval = self.min_interval if self._tty else self.min_interval_notty
        if not final and now - self._last_paint < interval:
            return
        self._last_paint = now
        t0, done0, executed0 = self._started[label]
        elapsed = now - t0
        # Work accomplished this session: executed runs when the emitter
        # distinguishes them, completed units otherwise.
        if executed is not None:
            advanced = executed - executed0
        else:
            advanced = done - done0
        rate = advanced / elapsed if elapsed > 0 and advanced > 0 else 0.0
        if rate > 0 and total > done:
            eta = f"eta {_format_seconds((total - done) / rate)}"
        elif final:
            eta = f"done in {_format_seconds(elapsed)}"
        else:
            eta = "eta --"
        line = f"{label}: {done}/{total} ({rate:.1f}/s, {eta})"
        try:
            if self._tty:
                self._stream.write("\r" + line.ljust(70))
                if final:
                    self._stream.write("\n")
                    self._dirty_line = False
                else:
                    self._dirty_line = True
            else:
                self._stream.write(line + "\n")
            self._stream.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        if self._dirty_line:
            try:
                self._stream.write("\n")
                self._stream.flush()
            except (OSError, ValueError):
                pass
            self._dirty_line = False


def _format_seconds(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"
