"""Aggregate a telemetry JSONL file into per-phase/per-backend tables.

The reader tolerates a truncated final line (the expected artifact of a
SIGKILL mid-write, see :class:`repro.telemetry.sinks.JsonlSink`) and
skips any malformed interior line rather than failing the whole file.

The summary decomposes wall-clock by span kind:

* ``root`` spans (sweep / scenario / campaign) define total wall clock.
* ``phase`` spans (build / simulate / finalize / commit) decompose it;
  their share of root time is the ``coverage`` figure the acceptance
  bar cares about (≥95% means the breakdown explains the run).
* ``unit`` spans (campaign checkpoint units) are reported separately
  and excluded from coverage — the phases inside them already count.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.analysis.statistics import quantile


def iter_events(path: str | Path) -> Iterator[dict[str, Any]]:
    """Stream a telemetry JSONL file one parsed event at a time.

    Reads line-by-line — memory stays flat no matter how large the file
    grows (a campaign with resource sampling emits tens of thousands of
    lines) — and tolerates a truncated final line, the expected artifact
    of a SIGKILL mid-write (see
    :class:`repro.telemetry.sinks.JsonlSink`).  Malformed interior lines
    are skipped too: a summary of most of a file beats no summary.
    """
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """Parse a telemetry JSONL file, tolerating a truncated final line."""
    return list(iter_events(path))


def filter_events(
    events: Iterable[dict[str, Any]],
    *,
    runs: Iterable[str] | None = None,
    last: bool = False,
) -> list[dict[str, Any]]:
    """Select the events of specific sessions.

    ``runs`` are run-id *prefixes* (like git object names: any
    unambiguous prefix of the id ``session_start`` printed); ``last``
    keeps only the file's most recent session.  With neither, the events
    come back unchanged.
    """
    events = list(events)
    prefixes = tuple(runs) if runs else ()
    if last:
        order: list[str] = []
        for record in events:
            run = record.get("run")
            if run and run not in order:
                order.append(run)
        if not order:
            return []
        prefixes = prefixes + (order[-1],)
    if not prefixes:
        return events
    return [
        record
        for record in events
        if any(str(record.get("run", "")).startswith(p) for p in prefixes)
    ]


def summarize_events(events: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Fold telemetry events into the summary structure rendered below.

    Returns a dict with ``runs`` (correlation ids seen), ``phases`` /
    ``roots`` / ``units`` span tables keyed by ``(name, backend)``,
    ``counters`` totals, ``events`` counts keyed by ``(name, key-detail)``,
    and ``coverage`` (phase seconds / root seconds, ``None`` when no
    root span exists).
    """
    runs: list[str] = []
    phases: dict[tuple[str, str], dict[str, Any]] = {}
    roots: dict[tuple[str, str], dict[str, Any]] = {}
    units: dict[tuple[str, str], dict[str, Any]] = {}
    counters: dict[str, float] = {}
    event_counts: dict[str, int] = {}
    event_specs: dict[str, set[str]] = {}

    def fold_span(table: dict[tuple[str, str], dict[str, Any]], record: dict[str, Any]) -> None:
        attrs = record.get("attrs") or {}
        key = (str(record.get("name")), str(attrs.get("backend", "-")))
        row = table.setdefault(
            key,
            {
                "name": key[0],
                "backend": key[1],
                "count": 0,
                "total": 0.0,
                "max": 0.0,
                "durations": [],
            },
        )
        duration = float(record.get("dur", 0.0))
        row["count"] += 1
        row["total"] += duration
        row["max"] = max(row["max"], duration)
        row["durations"].append(duration)

    for record in events:
        run = record.get("run")
        if run and run not in runs:
            runs.append(run)
        kind = record.get("ev")
        if kind == "span":
            attrs = record.get("attrs") or {}
            span_kind = attrs.get("kind", "phase")
            if span_kind == "root":
                fold_span(roots, record)
            elif span_kind == "unit":
                fold_span(units, record)
            else:
                fold_span(phases, record)
        elif kind == "counter":
            name = str(record.get("name"))
            counters[name] = counters.get(name, 0.0) + float(record.get("value", 0.0))
        elif kind == "event":
            attrs = record.get("attrs") or {}
            name = str(record.get("name"))
            reason = attrs.get("reason")
            label = f"{name}[{reason}]" if reason else name
            event_counts[label] = event_counts.get(label, 0) + 1
            # Spec-hash prefixes (vector_fallback carries them) name *which*
            # configurations an event row covers, not just how many times.
            spec = attrs.get("spec")
            if spec:
                event_specs.setdefault(label, set()).add(str(spec))

    for table in (phases, roots, units):
        for row in table.values():
            row["mean"] = row["total"] / row["count"] if row["count"] else 0.0
            # Same quantile definition the observe histograms export
            # (linear interpolation, repro.analysis.statistics.quantile).
            durations = row.pop("durations")
            row["p50"] = quantile(durations, 0.5) if durations else 0.0
            row["p95"] = quantile(durations, 0.95) if durations else 0.0

    phase_total = sum(row["total"] for row in phases.values())
    root_total = sum(row["total"] for row in roots.values())
    coverage = phase_total / root_total if root_total > 0 else None
    return {
        "runs": runs,
        "phases": sorted(phases.values(), key=lambda r: -r["total"]),
        "roots": sorted(roots.values(), key=lambda r: -r["total"]),
        "units": sorted(units.values(), key=lambda r: -r["total"]),
        "counters": dict(sorted(counters.items())),
        "events": dict(sorted(event_counts.items())),
        "event_specs": {
            label: sorted(specs) for label, specs in sorted(event_specs.items())
        },
        "phase_seconds": phase_total,
        "root_seconds": root_total,
        "coverage": coverage,
    }


def summarize_file(path: str | Path) -> dict[str, Any]:
    return summarize_events(read_events(path))


def render_summary(summary: dict[str, Any]) -> str:
    """Render :func:`summarize_events` output as an aligned text table."""
    lines: list[str] = []
    runs = summary["runs"]
    lines.append(f"telemetry summary — {len(runs)} session(s): {', '.join(runs) or '-'}")
    lines.append("")

    def span_table(title: str, rows: list[dict[str, Any]], denom: float) -> None:
        if not rows:
            return
        lines.append(title)
        header = (
            f"  {'name':<18} {'backend':<22} {'count':>6} {'total_s':>10} "
            f"{'mean_s':>10} {'p50_s':>10} {'p95_s':>10} {'max_s':>10} {'share':>7}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for row in rows:
            share = f"{row['total'] / denom:6.1%}" if denom > 0 else "     -"
            lines.append(
                f"  {row['name']:<18} {row['backend']:<22} {row['count']:>6} "
                f"{row['total']:>10.4f} {row['mean']:>10.4f} {row['p50']:>10.4f} "
                f"{row['p95']:>10.4f} {row['max']:>10.4f} {share:>7}"
            )
        lines.append("")

    span_table("roots (total wall-clock)", summary["roots"], summary["root_seconds"])
    span_table("phases (per-phase / per-backend breakdown)", summary["phases"], summary["root_seconds"])
    span_table("campaign units", summary["units"], summary["root_seconds"])

    if summary["counters"]:
        lines.append("counters")
        for name, value in summary["counters"].items():
            rendered = f"{int(value)}" if float(value).is_integer() else f"{value:.4f}"
            lines.append(f"  {name:<42} {rendered:>14}")
        lines.append("")
    if summary["events"]:
        lines.append("events")
        event_specs = summary.get("event_specs", {})
        for name, count in summary["events"].items():
            lines.append(f"  {name:<42} {count:>14}")
            specs = event_specs.get(name)
            if specs:
                shown = ", ".join(specs[:4])
                extra = f" +{len(specs) - 4} more" if len(specs) > 4 else ""
                lines.append(f"    specs: {shown}{extra}")
        lines.append("")

    if summary["coverage"] is not None:
        lines.append(
            f"coverage: phases explain {summary['coverage']:.1%} of "
            f"{summary['root_seconds']:.4f}s root wall-clock"
        )
    else:
        lines.append("coverage: no root spans in file")
    return "\n".join(lines)
