"""The ``python -m repro`` command line.

Subcommands:

``list``
    Print the experiment table and the scenario catalog.  With ``--json``
    the listing is machine-readable (ids, titles, tags, content hashes),
    so CI and scripts can enumerate what is runnable.

``run``
    Run experiments by id on a chosen execution backend and print their
    rendered reports::

        python -m repro run e3 --scale full --backend processes --workers 8 --out results/

    With ``--out``, each experiment also writes a JSON report
    (``<out>/<id>.json``) containing the rows, verdicts, backend description
    and wall-clock time, so sweeps can be archived and diffed.  With
    ``--bench-out PATH``, a wall-clock record per experiment is merged into
    the given BENCH JSON file (history accumulates across runs — see
    :mod:`repro.experiments.bench`).

    ``--backend vector`` batches every vectorizable replication group
    through the lockstep numpy engine and runs the rest serially; the
    backend description in the report shows the vectorized/fallback split.

``scenario``
    The scenario catalog and file format (see :mod:`repro.scenarios`)::

        python -m repro scenario list
        python -m repro scenario show onoff-jamming
        python -m repro scenario run onoff-jamming my-workload.toml --backend vector

    ``run`` accepts catalog names and/or ``.toml``/``.json`` scenario
    files, and takes the same backend/report options as ``run``.

``equivalence``
    Run the vector-vs-serial statistical-equivalence harness
    (:mod:`repro.analysis.equivalence`) outside pytest: by default on the
    vectorizable E1 batch core, or on a scenario's vectorizable groups
    with ``--scenario``.  Exits non-zero when any comparison fails.

Experiment ids are case-insensitive (``e3`` and ``E3`` both work).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Iterable

from repro.exec import BACKEND_NAMES, make_backend
from repro.experiments.experiments import ALL_EXPERIMENTS
from repro.experiments.reporting import render_report, report_to_dict
from repro.experiments.spec import SCALES


def _add_execution_options(parser: argparse.ArgumentParser) -> None:
    """Backend/report options shared by ``run`` and ``scenario run``."""
    parser.add_argument("--scale", default="default", choices=SCALES)
    parser.add_argument(
        "--seeds",
        default=None,
        help="comma-separated replicate seeds (default: the scale's seed list)",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        choices=BACKEND_NAMES,
        help="execution backend for the sweep's replicates",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --backend processes (default: cpu count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk result cache (off when omitted)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write one JSON report per experiment/scenario into DIR",
    )
    parser.add_argument(
        "--bench-out",
        default=None,
        metavar="PATH",
        help=(
            "merge a wall-clock record per experiment/scenario into a BENCH "
            "JSON file (per-id history accumulates across runs)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the paper-claim experiments (E1-E9, A1) and scenarios.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list available experiments and scenarios"
    )
    list_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable listing of experiment and scenario ids",
    )

    run_parser = subparsers.add_parser("run", help="run experiments by id")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        metavar="ID",
        help="experiment ids to run (e.g. e1 e3; case-insensitive)",
    )
    _add_execution_options(run_parser)

    scenario_parser = subparsers.add_parser(
        "scenario", help="inspect and run declarative scenarios"
    )
    scenario_sub = scenario_parser.add_subparsers(dest="scenario_command", required=True)
    scenario_list = scenario_sub.add_parser("list", help="list the scenario catalog")
    scenario_list.add_argument("--json", action="store_true")
    scenario_show = scenario_sub.add_parser(
        "show", help="print one scenario definition as JSON"
    )
    scenario_show.add_argument(
        "scenario", metavar="NAME_OR_FILE", help="catalog name or .toml/.json path"
    )
    scenario_run = scenario_sub.add_parser(
        "run", help="run scenarios by catalog name or file path"
    )
    scenario_run.add_argument(
        "scenarios",
        nargs="+",
        metavar="NAME_OR_FILE",
        help="catalog names and/or .toml/.json scenario files",
    )
    _add_execution_options(scenario_run)

    equivalence_parser = subparsers.add_parser(
        "equivalence",
        help="check the vector-vs-serial statistical-equivalence contract",
    )
    equivalence_parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME_OR_FILE",
        help=(
            "check the vectorizable groups of this scenario instead of the "
            "default E1 batch core"
        ),
    )
    equivalence_parser.add_argument(
        "--scale",
        default="default",
        choices=SCALES,
        help="scale for --scenario runs",
    )
    equivalence_parser.add_argument(
        "--replications",
        type=int,
        default=16,
        metavar="N",
        help="replications per configuration (default: 16)",
    )
    equivalence_parser.add_argument(
        "--batch-sizes",
        default="50,100",
        metavar="N,N",
        help="batch sizes for the default E1-core check (default: 50,100)",
    )
    return parser


def _normalise_ids(raw_ids: Iterable[str], parser: argparse.ArgumentParser) -> list[str]:
    ids = []
    for raw in raw_ids:
        exp_id = raw.upper()
        if exp_id not in ALL_EXPERIMENTS:
            parser.error(
                f"unknown experiment id {raw!r}; choose from "
                f"{', '.join(sorted(ALL_EXPERIMENTS))}"
            )
        ids.append(exp_id)
    return ids


def _parse_seeds(raw: str | None, parser: argparse.ArgumentParser) -> list[int] | None:
    if raw is None:
        return None
    try:
        seeds = [int(token) for token in raw.split(",") if token.strip()]
    except ValueError:
        parser.error(f"--seeds must be comma-separated integers, got {raw!r}")
    if not seeds:
        parser.error("--seeds must name at least one seed")
    return seeds


def _parse_positive_ints(
    raw: str, parser: argparse.ArgumentParser, option: str
) -> list[int]:
    try:
        values = [int(token) for token in raw.split(",") if token.strip()]
    except ValueError:
        parser.error(f"{option} must be comma-separated integers, got {raw!r}")
    if not values or any(value <= 0 for value in values):
        parser.error(f"{option} must name at least one positive integer, got {raw!r}")
    return values


def _backend_builder(args: argparse.Namespace, parser: argparse.ArgumentParser):
    """A zero-argument backend factory, validated before anything runs."""
    if args.workers is not None and args.backend != "processes":
        parser.error("--workers only applies to --backend processes")

    def build_backend():
        try:
            return make_backend(
                args.backend, workers=args.workers, cache_dir=args.cache_dir
            )
        except ValueError as exc:
            parser.error(str(exc))

    build_backend()  # validate the options before running anything
    return build_backend


def _experiment_rows() -> list[dict[str, str]]:
    from repro.experiments import experiments as exp_module

    rows = []
    for exp_id in sorted(ALL_EXPERIMENTS):
        spec = getattr(exp_module, f"{exp_id}_SPEC")
        rows.append(
            {"id": exp_id, "title": spec.title, "bench_target": spec.bench_target}
        )
    return rows


def _scenario_rows() -> list[dict[str, object]]:
    from repro.scenarios.catalog import builtin_scenarios

    rows = []
    for scenario_id in sorted(builtin_scenarios()):
        scenario = builtin_scenarios()[scenario_id]
        rows.append(
            {
                "id": scenario.scenario_id,
                "title": scenario.title,
                "protocols": list(scenario.protocols),
                "tags": list(scenario.tags),
                "max_slots": scenario.max_slots,
                "replications": scenario.replications,
                "content_hash": scenario.content_hash(),
            }
        )
    return rows


def _print_scenario_table(scenarios: list[dict[str, object]]) -> None:
    width = max(len(row["id"]) for row in scenarios)
    for row in scenarios:
        tags = f" [{', '.join(row['tags'])}]" if row["tags"] else ""
        print(f"{row['id']:<{width}}  {row['title']}{tags}")


def _command_list(args: argparse.Namespace) -> int:
    experiments = _experiment_rows()
    scenarios = _scenario_rows()
    if args.json:
        print(
            json.dumps(
                {"experiments": experiments, "scenarios": scenarios}, indent=2
            )
        )
        return 0
    width = max(len(row["id"]) for row in experiments)
    for row in experiments:
        print(f"{row['id']:<{width}}  {row['title']}  [{row['bench_target']}]")
    print()
    print("Scenarios (python -m repro scenario run <id>):")
    _print_scenario_table(scenarios)
    return 0


def _prepare_out_dir(
    raw: str | None, parser: argparse.ArgumentParser
) -> pathlib.Path | None:
    """Create ``--out`` up front so a bad path fails before anything runs."""
    if raw is None:
        return None
    out_dir = pathlib.Path(raw)
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        parser.error(f"cannot create --out directory {raw!r}: {exc}")
    return out_dir


def _write_report_json(
    out_dir: pathlib.Path, name: str, payload: dict, label: str
) -> None:
    path = out_dir / f"{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    print(f"[{label}] wrote {path}")


def _command_run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    ids = _normalise_ids(args.experiments, parser)
    seeds = _parse_seeds(args.seeds, parser)
    build_backend = _backend_builder(args, parser)
    out_dir = _prepare_out_dir(args.out, parser)
    for exp_id in ids:
        # A fresh backend per experiment keeps the counters it reports
        # (cache hits/misses, vectorized/fallback splits) attributed to
        # this experiment alone; the on-disk cache still persists across
        # experiments because it is keyed by directory, not by instance.
        backend = build_backend()
        started = time.perf_counter()
        report = ALL_EXPERIMENTS[exp_id](
            scale=args.scale, seeds=seeds, backend=backend
        )
        elapsed = time.perf_counter() - started
        print(render_report(report))
        print(f"\n[{exp_id}] {elapsed:.2f}s on backend {backend.describe()}\n")
        if args.bench_out is not None:
            from repro.experiments.bench import record_bench

            record_bench(
                args.bench_out,
                exp_id,
                seconds=elapsed,
                scale=args.scale,
                backend=backend.describe(),
            )
            print(f"[{exp_id}] merged wall-clock record into {args.bench_out}")
        if out_dir is not None:
            from repro.experiments.experiments import _seeds

            payload = report_to_dict(report)
            payload["scale"] = args.scale
            # Record the seeds actually used, including the scale's default
            # seed list, so archived reports are self-describing.
            payload["seeds"] = list(_seeds(args.scale, seeds))
            payload["backend"] = backend.describe()
            payload["elapsed_seconds"] = round(elapsed, 4)
            _write_report_json(out_dir, exp_id.lower(), payload, exp_id)
    return 0


def _command_scenario(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.scenarios.spec import ScenarioError, resolve_scenario

    if args.scenario_command == "list":
        scenarios = _scenario_rows()
        if args.json:
            print(json.dumps({"scenarios": scenarios}, indent=2))
            return 0
        _print_scenario_table(scenarios)
        return 0

    if args.scenario_command == "show":
        try:
            scenario = resolve_scenario(args.scenario)
        except ScenarioError as exc:
            parser.error(str(exc))
        from repro.scenarios.runner import build_plan

        payload = scenario.to_dict()
        payload["content_hash"] = scenario.content_hash()
        plan = build_plan(scenario)
        summary = plan.vector_summary()
        payload["vector_support"] = {
            group.protocol_name: summary["fallback_groups"].get(
                group.group_id, "vectorizable"
            )
            for group in plan.groups
        }
        print(json.dumps(payload, indent=2))
        return 0

    # scenario run
    from repro.scenarios.runner import run_scenario, scenario_max_slots, scenario_seeds

    seeds = _parse_seeds(args.seeds, parser)
    build_backend = _backend_builder(args, parser)
    try:
        scenarios = [resolve_scenario(name) for name in args.scenarios]
    except ScenarioError as exc:
        parser.error(str(exc))
    seen_ids: dict[str, str] = {}
    for argument, scenario in zip(args.scenarios, scenarios):
        previous = seen_ids.setdefault(scenario.scenario_id, str(argument))
        if previous != str(argument):
            # Reports and bench records are keyed by scenario id, so two
            # definitions sharing one id would silently overwrite each other.
            parser.error(
                f"scenario id {scenario.scenario_id!r} requested twice "
                f"(from {previous!r} and {argument!r})"
            )
    out_dir = _prepare_out_dir(args.out, parser)
    for scenario in scenarios:
        backend = build_backend()
        started = time.perf_counter()
        report = run_scenario(
            scenario, scale=args.scale, seeds=seeds, backend=backend
        )
        elapsed = time.perf_counter() - started
        label = scenario.scenario_id
        print(render_report(report))
        print(f"\n[{label}] {elapsed:.2f}s on backend {backend.describe()}\n")
        if args.bench_out is not None:
            from repro.experiments.bench import record_bench

            record_bench(
                args.bench_out,
                f"scenario:{label}",
                seconds=elapsed,
                scale=args.scale,
                backend=backend.describe(),
                extra={"content_hash": scenario.content_hash()},
            )
            print(f"[{label}] merged wall-clock record into {args.bench_out}")
        if out_dir is not None:
            payload = report_to_dict(report)
            payload["scenario"] = scenario.to_dict()
            payload["content_hash"] = scenario.content_hash()
            payload["scale"] = args.scale
            payload["seeds"] = list(scenario_seeds(scenario, args.scale, seeds))
            payload["max_slots"] = scenario_max_slots(scenario, args.scale)
            payload["backend"] = backend.describe()
            payload["elapsed_seconds"] = round(elapsed, 4)
            _write_report_json(out_dir, f"scenario-{label}", payload, label)
    return 0


def _command_equivalence(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    if args.replications < 1:
        parser.error("--replications must be at least 1")
    failures = 0
    if args.scenario is not None:
        from repro.analysis.equivalence import verify_plan_equivalence
        from repro.scenarios.runner import build_plan
        from repro.scenarios.spec import ScenarioError, resolve_scenario

        try:
            scenario = resolve_scenario(args.scenario)
        except ScenarioError as exc:
            parser.error(str(exc))
        seeds = [scenario.base_seed + index for index in range(args.replications)]
        plan = build_plan(scenario, scale=args.scale, seeds=seeds)
        reports = verify_plan_equivalence(plan)
        if not reports:
            parser.error(
                f"scenario {scenario.scenario_id!r} has no vectorizable group; "
                "nothing to compare"
            )
        for group_id, report in sorted(reports.items()):
            protocol = plan.groups[group_id].protocol_name
            print(f"-- {scenario.scenario_id} [{protocol}] x{args.replications}")
            print(report.render())
            failures += 0 if report.passed else 1
    else:
        from repro.adversary.arrivals import BatchArrivals
        from repro.adversary.composite import CompositeAdversary
        from repro.analysis.equivalence import verify_vector_equivalence
        from repro.experiments.plan import RunSpec, factory
        from repro.protocols.binary_exponential import BinaryExponentialBackoff
        from repro.protocols.fixed_probability import FixedProbabilityProtocol
        from repro.protocols.polynomial_backoff import PolynomialBackoff

        batch_sizes = _parse_positive_ints(args.batch_sizes, parser, "--batch-sizes")
        seeds = range(1, args.replications + 1)
        for n in batch_sizes:
            adversary = factory(CompositeAdversary, factory(BatchArrivals, n))
            for protocol in (
                BinaryExponentialBackoff(),
                PolynomialBackoff(),
                FixedProbabilityProtocol.tuned_for(n),
            ):
                specs = [
                    RunSpec(protocol=protocol, adversary=adversary, seed=seed)
                    for seed in seeds
                ]
                report = verify_vector_equivalence(specs)
                print(f"-- {protocol.name} n={n} x{args.replications}")
                print(report.render())
                failures += 0 if report.passed else 1
    if failures:
        print(f"\nequivalence: {failures} configuration(s) FAILED")
        return 1
    print("\nequivalence: all configurations passed")
    return 0


def main(argv: Iterable[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "list":
        return _command_list(args)
    if args.command == "scenario":
        return _command_scenario(args, parser)
    if args.command == "equivalence":
        return _command_equivalence(args, parser)
    return _command_run(args, parser)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
