"""The ``python -m repro`` command line.

Subcommands:

``list``
    Print the experiment table and the scenario catalog.  With ``--json``
    the listing is machine-readable (ids, titles, tags, content hashes,
    and each entry's vectorization coverage — spec/kernel-launch counts
    plus named fallback reasons), so CI and scripts can enumerate what is
    runnable and what vectorizes.

``run``
    Run experiments by id on a chosen execution backend and print their
    rendered reports::

        python -m repro run e3 --scale full --backend processes --workers 8 --out results/

    With ``--out``, each experiment also writes a JSON report
    (``<out>/<id>.json``) containing the rows, verdicts, backend description
    and wall-clock time, so sweeps can be archived and diffed.  With
    ``--bench-out PATH``, a wall-clock record per experiment is merged into
    the given BENCH JSON file (history accumulates across runs — see
    :mod:`repro.experiments.bench`).

    ``--backend vector`` batches every vectorizable replication group
    through the lockstep numpy engine (compatible groups stacked into
    mega-batches) and runs the rest serially; the backend description in
    the report shows the vectorized/fallback split and the launch count.
    ``--explain`` prints the per-group vectorization table — which groups
    get a vector kernel, and the support-registry reason for each scalar
    fallback — without running anything.

``scenario``
    The scenario catalog and file format (see :mod:`repro.scenarios`)::

        python -m repro scenario list
        python -m repro scenario show onoff-jamming
        python -m repro scenario run onoff-jamming my-workload.toml --backend vector

    ``run`` accepts catalog names and/or ``.toml``/``.json`` scenario
    files, and takes the same backend/report options as ``run``.

``equivalence``
    Run the vector-vs-serial statistical-equivalence harness
    (:mod:`repro.analysis.equivalence`) outside pytest: by default on the
    vectorizable E1 batch core, or on a scenario's vectorizable groups
    with ``--scenario``.  Exits non-zero when any comparison fails.

``campaign``
    Durable, resumable replication campaigns over the results store
    (:mod:`repro.store` / :mod:`repro.campaigns`)::

        python -m repro campaign run onoff-jamming --backend vector --store runs/
        python -m repro campaign resume onoff-jamming-1a2b3c4d --store runs/
        python -m repro campaign status --store runs/ --json
        python -m repro campaign show onoff-jamming-1a2b3c4d --store runs/
        python -m repro campaign diff CAMPAIGN_A CAMPAIGN_B --store runs/

    ``run`` checkpoints progress per unit, so a killed campaign resumes
    with ``resume`` and converges to a store bit-identical to an
    uninterrupted run.  ``diff`` compares two campaigns metric-by-metric
    (Welch/KS) and exits non-zero on a statistical regression; with
    ``--bench`` it instead checks the campaign's wall clock against
    recorded BENCH history.

``telemetry``
    Observability tooling (:mod:`repro.telemetry`).  ``run``, ``scenario
    run``, ``campaign run`` and ``campaign resume`` accept ``--telemetry
    PATH`` (append structured JSONL events: spans, counters, named events)
    and ``--progress`` (live completion/rate/ETA on stderr); then::

        python -m repro telemetry summarize PATH [--json]

    aggregates a JSONL file into per-phase/per-backend wall-clock tables
    (count, total, mean, p50, p95, max), counter totals, event
    histograms, and a coverage figure (share of root wall-clock explained
    by phase spans).  ``--run ID`` (repeatable, prefix-matched) and
    ``--last`` restrict the summary to specific sessions of a shared
    file; a worker-utilization table (per-pid busy fractions, queue-wait
    distribution, imbalance index) is appended when the file carries
    process-pool spans.  The run commands also accept
    ``--sample-resources [SECONDS]`` (with ``--telemetry``) to stream
    ``/proc`` RSS/CPU/fd samples into the same file.  Telemetry is RNG-
    and result-inert: fingerprints with it on and off are bit-identical.

``perf``
    Store-backed performance history and drift detection
    (:mod:`repro.observe.perf`)::

        python -m repro perf record onoff-jamming --store runs/ --backend vector
        python -m repro perf history --store runs/
        python -m repro perf regress --store runs/

    ``record`` executes a scenario's plan once, timed, and appends a
    wall-clock sample to the store's ``perf_samples`` table (keyed by
    spec hash, backend layout, and host fingerprint; excluded from the
    store fingerprint).  ``regress`` Welch-tests the latest window of
    each group against its rolling baseline and exits ``1`` on sustained
    drift, ``0`` otherwise (``2`` for usage errors).

``report``
    Exportable observability (:mod:`repro.observe`)::

        python -m repro report html --campaign ID --store runs/ --out report.html
        python -m repro report html --telemetry trace.jsonl --out report.html
        python -m repro report metrics --telemetry trace.jsonl --format prometheus

    ``html`` renders a self-contained single-file dashboard (SVG
    sparklines, phase wall-clock bars, counter/utilization tables, perf
    history) for a run or campaign; ``metrics`` folds telemetry into the
    typed registry and exports it as Prometheus text exposition or JSON.

``dynamics``
    Windowed simulation-dynamics trajectories (:mod:`repro.dynamics`).
    ``run``, ``scenario run``, ``campaign run`` and ``campaign resume``
    accept ``--dynamics [W]`` (sample throughput/backlog/contention/...
    every ``W`` slots into a compact per-run trajectory; stored runs
    persist it in the results store); then::

        python -m repro dynamics show --store runs/
        python -m repro dynamics show 1a2b3c --seed 7 --store runs/
        python -m repro dynamics export 1a2b3c --seed 7 --format csv
        python -m repro dynamics compare CAMPAIGN_A CAMPAIGN_B --store runs/

    ``show`` lists or sparkline-renders stored trajectories, ``export``
    emits JSON/CSV, and ``compare`` diffs two campaigns window by window
    (Welch + Benjamini–Hochberg), exiting non-zero on a mid-run
    regression even when end-of-run aggregates agree.  Like telemetry,
    dynamics are RNG- and result-inert: store fingerprints with
    ``--dynamics`` on and off are bit-identical.

``cache``
    Operational tooling for the result cache / results store::

        python -m repro cache stats --cache-dir .sim-cache
        python -m repro cache prune --cache-dir .sim-cache --older-than-days 30

    ``prune`` drops cache-sourced entries by age and/or total size
    (campaign-recorded runs are never pruned) and sweeps orphaned
    artifacts.

Experiment ids are case-insensitive (``e3`` and ``E3`` both work).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time
from typing import Iterable

from repro.exec import BACKEND_NAMES, make_backend
from repro.experiments.experiments import ALL_EXPERIMENTS
from repro.experiments.reporting import render_report, report_to_dict
from repro.experiments.spec import SCALES


def _add_execution_options(parser: argparse.ArgumentParser) -> None:
    """Backend/report options shared by ``run`` and ``scenario run``."""
    parser.add_argument("--scale", default="default", choices=SCALES)
    parser.add_argument(
        "--seeds",
        default=None,
        help="comma-separated replicate seeds (default: the scale's seed list)",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        choices=BACKEND_NAMES,
        help="execution backend for the sweep's replicates",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --backend processes (default: cpu count)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk result cache (off when omitted)",
    )
    _add_dynamics_option(parser)
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write one JSON report per experiment/scenario into DIR",
    )
    parser.add_argument(
        "--bench-out",
        default=None,
        metavar="PATH",
        help=(
            "merge a wall-clock record per experiment/scenario into a BENCH "
            "JSON file (per-id history accumulates across runs)"
        ),
    )
    _add_telemetry_options(parser)


def _add_dynamics_option(parser: argparse.ArgumentParser) -> None:
    """``--dynamics [W]`` shared by run/scenario run/campaign run|resume."""
    parser.add_argument(
        "--dynamics",
        nargs="?",
        const=-1,  # bare flag: use the library default window
        type=int,
        default=None,
        metavar="W",
        help=(
            "record a windowed dynamics trajectory per run, sampled every W "
            "slots (bare flag: default window); inspect with "
            "'python -m repro dynamics show'"
        ),
    )


def _dynamics_window(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Resolve ``--dynamics`` to a sampling window (0 = off)."""
    raw = getattr(args, "dynamics", None)
    if raw is None:
        return 0
    if raw == -1:
        from repro.dynamics import DEFAULT_WINDOW

        return DEFAULT_WINDOW
    if raw < 1:
        parser.error("--dynamics window must be a positive slot count")
    return raw


def _add_telemetry_options(parser: argparse.ArgumentParser) -> None:
    """Telemetry flags shared by ``run``/``scenario run``/``campaign``."""
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help=(
            "append structured telemetry events (JSONL) to PATH; aggregate "
            "with 'python -m repro telemetry summarize PATH'"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="render live completion/rate/ETA on stderr while running",
    )
    parser.add_argument(
        "--sample-resources",
        nargs="?",
        const=-1.0,  # bare flag: use the library default interval
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "sample parent-process RSS/CPU/fds every SECONDS into the "
            "--telemetry stream (bare flag: default interval); pool "
            "workers add job-boundary samples automatically"
        ),
    )


def _telemetry_session(args: argparse.Namespace):
    """Build the run's telemetry session from the CLI flags (or ``None``).

    Telemetry is RNG- and result-inert, so turning it on can never change
    what a command computes — only what it reports while computing it.
    """
    from repro.telemetry import JsonlSink, ProgressSink, TelemetrySession

    sinks = []
    if getattr(args, "telemetry", None):
        sinks.append(JsonlSink(args.telemetry))
    if getattr(args, "progress", False):
        sinks.append(ProgressSink())
    if not sinks:
        return None
    return TelemetrySession(sinks)


def _resource_sampler(args: argparse.Namespace, parser: argparse.ArgumentParser, session):
    """Resolve ``--sample-resources`` to a running-or-null sampler CM.

    Sampling rides the telemetry stream, so asking for it without
    ``--telemetry`` is a loud error rather than silently dropped samples.
    ``session`` is the *activated* session the wrapped command runs under.
    """
    from repro.observe import DEFAULT_INTERVAL, NULL_SAMPLER, ResourceSampler

    raw = getattr(args, "sample_resources", None)
    if raw is None:
        return NULL_SAMPLER
    if not getattr(args, "telemetry", None):
        parser.error(
            "--sample-resources requires --telemetry PATH "
            "(samples are emitted as telemetry events)"
        )
    interval = DEFAULT_INTERVAL if raw == -1.0 else raw
    if interval <= 0:
        parser.error("--sample-resources interval must be positive seconds")
    return ResourceSampler(session, interval=interval)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the paper-claim experiments (E1-E9, A1) and scenarios.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "list", help="list available experiments and scenarios"
    )
    list_parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable listing of experiment and scenario ids",
    )

    run_parser = subparsers.add_parser("run", help="run experiments by id")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        metavar="ID",
        help="experiment ids to run (e.g. e1 e3; case-insensitive)",
    )
    run_parser.add_argument(
        "--explain",
        action="store_true",
        help=(
            "print each experiment's per-group vectorization table (vector "
            "kernel vs scalar fallback, with the support-registry reason) "
            "instead of running anything"
        ),
    )
    _add_execution_options(run_parser)

    scenario_parser = subparsers.add_parser(
        "scenario", help="inspect and run declarative scenarios"
    )
    scenario_sub = scenario_parser.add_subparsers(dest="scenario_command", required=True)
    scenario_list = scenario_sub.add_parser("list", help="list the scenario catalog")
    scenario_list.add_argument("--json", action="store_true")
    scenario_show = scenario_sub.add_parser(
        "show", help="print one scenario definition as JSON"
    )
    scenario_show.add_argument(
        "scenario", metavar="NAME_OR_FILE", help="catalog name or .toml/.json path"
    )
    scenario_run = scenario_sub.add_parser(
        "run", help="run scenarios by catalog name or file path"
    )
    scenario_run.add_argument(
        "scenarios",
        nargs="+",
        metavar="NAME_OR_FILE",
        help="catalog names and/or .toml/.json scenario files",
    )
    _add_execution_options(scenario_run)

    equivalence_parser = subparsers.add_parser(
        "equivalence",
        help="check the vector-vs-serial statistical-equivalence contract",
    )
    equivalence_parser.add_argument(
        "--scenario",
        default=None,
        metavar="NAME_OR_FILE",
        help=(
            "check the vectorizable groups of this scenario instead of the "
            "default E1 batch core"
        ),
    )
    equivalence_parser.add_argument(
        "--scale",
        default="default",
        choices=SCALES,
        help="scale for --scenario runs",
    )
    equivalence_parser.add_argument(
        "--replications",
        type=int,
        default=16,
        metavar="N",
        help="replications per configuration (default: 16)",
    )
    equivalence_parser.add_argument(
        "--batch-sizes",
        default="50,100",
        metavar="N,N",
        help="batch sizes for the default E1-core check (default: 50,100)",
    )
    equivalence_parser.add_argument(
        "--protocols",
        default="core",
        choices=("core", "sensing", "all"),
        help=(
            "which protocol tier the default E1-core check sweeps: the "
            "send-only 'core' (BEB/polynomial/fixed-probability), the "
            "'sensing' tier (low-sensing/sawtooth/full-sensing MW), or "
            "'all' (default: core)"
        ),
    )

    campaign_parser = subparsers.add_parser(
        "campaign", help="durable, resumable replication campaigns"
    )
    campaign_sub = campaign_parser.add_subparsers(
        dest="campaign_command", required=True
    )

    def _add_store_option(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store",
            default=".repro-store",
            metavar="DIR",
            help="results-store directory (default: .repro-store)",
        )

    campaign_run = campaign_sub.add_parser(
        "run", help="start a new campaign for a scenario"
    )
    campaign_run.add_argument(
        "scenario", metavar="NAME_OR_FILE", help="catalog name or .toml/.json path"
    )
    _add_store_option(campaign_run)
    campaign_run.add_argument("--scale", default="default", choices=SCALES)
    campaign_run.add_argument(
        "--seeds", default=None, help="comma-separated replicate seeds"
    )
    campaign_run.add_argument(
        "--backend",
        default="serial",
        choices=("serial", "processes", "vector"),
        help="execution backend for the campaign's runs",
    )
    campaign_run.add_argument("--workers", type=int, default=None)
    campaign_run.add_argument(
        "--id",
        dest="campaign_id",
        default=None,
        help="campaign id (default: derived from scenario hash + options)",
    )
    campaign_run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="scalar runs per checkpoint transaction (default: 8)",
    )
    _add_dynamics_option(campaign_run)
    _add_telemetry_options(campaign_run)

    campaign_resume = campaign_sub.add_parser(
        "resume", help="complete an interrupted campaign"
    )
    campaign_resume.add_argument("campaign_id", metavar="CAMPAIGN_ID")
    _add_store_option(campaign_resume)
    campaign_resume.add_argument("--workers", type=int, default=None)
    campaign_resume.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N"
    )
    _add_dynamics_option(campaign_resume)
    _add_telemetry_options(campaign_resume)

    campaign_status = campaign_sub.add_parser(
        "status", help="list campaigns and their progress"
    )
    _add_store_option(campaign_status)
    campaign_status.add_argument("--json", action="store_true")

    campaign_show = campaign_sub.add_parser(
        "show", help="render one stored campaign as a report"
    )
    campaign_show.add_argument("campaign_id", metavar="CAMPAIGN_ID")
    _add_store_option(campaign_show)
    campaign_show.add_argument("--json", action="store_true")

    campaign_diff = campaign_sub.add_parser(
        "diff",
        help="compare two campaigns (or one campaign vs BENCH history); "
        "non-zero exit on regression",
    )
    campaign_diff.add_argument("left", metavar="CAMPAIGN_A")
    campaign_diff.add_argument(
        "right",
        metavar="CAMPAIGN_B",
        nargs="?",
        default=None,
        help="second campaign (omit when using --bench)",
    )
    _add_store_option(campaign_diff)
    campaign_diff.add_argument(
        "--bench",
        default=None,
        metavar="PATH",
        help="compare CAMPAIGN_A's wall clock against this BENCH history file",
    )
    campaign_diff.add_argument(
        "--bench-id",
        default=None,
        help="bench entry id (default: campaign:<scenario_id>)",
    )
    campaign_diff.add_argument(
        "--factor",
        type=float,
        default=1.5,
        help="allowed wall-clock slowdown factor for --bench (default: 1.5)",
    )
    campaign_diff.add_argument("--alpha", type=float, default=0.001)
    campaign_diff.add_argument("--mean-alpha", type=float, default=0.002)
    campaign_diff.add_argument(
        "--trajectories",
        action="store_true",
        help=(
            "additionally compare the runs' dynamics trajectories window by "
            "window (catches mid-run regressions whose end-of-run aggregates "
            "cancel out)"
        ),
    )
    campaign_diff.add_argument(
        "--trajectory-window",
        type=int,
        default=None,
        metavar="W",
        help="slots per comparison window (default: derived from run length)",
    )
    campaign_diff.add_argument(
        "--trajectory-alpha",
        type=float,
        default=0.01,
        help="per-metric FDR level for the windowed tests (default: 0.01)",
    )

    telemetry_parser = subparsers.add_parser(
        "telemetry", help="aggregate telemetry JSONL files"
    )
    telemetry_sub = telemetry_parser.add_subparsers(
        dest="telemetry_command", required=True
    )
    telemetry_summarize = telemetry_sub.add_parser(
        "summarize",
        help=(
            "per-phase/per-backend wall-clock breakdown (plus counters, "
            "events, and coverage) of a --telemetry JSONL file"
        ),
    )
    telemetry_summarize.add_argument(
        "path", metavar="PATH", help="JSONL file written by --telemetry"
    )
    telemetry_summarize.add_argument(
        "--run",
        action="append",
        default=None,
        metavar="ID",
        help=(
            "restrict to one session by run-id prefix (repeatable; "
            "session ids appear in session_start events)"
        ),
    )
    telemetry_summarize.add_argument(
        "--last",
        action="store_true",
        help="restrict to the file's most recent session",
    )
    telemetry_summarize.add_argument("--json", action="store_true")

    dynamics_parser = subparsers.add_parser(
        "dynamics", help="inspect stored simulation-dynamics trajectories"
    )
    dynamics_sub = dynamics_parser.add_subparsers(
        dest="dynamics_command", required=True
    )
    dynamics_show = dynamics_sub.add_parser(
        "show",
        help=(
            "list stored trajectories, or render one (spec prefix + --seed) "
            "as per-metric sparklines"
        ),
    )
    dynamics_show.add_argument(
        "spec",
        metavar="SPEC_PREFIX",
        nargs="?",
        default=None,
        help="spec-hash prefix selecting one run's trajectory",
    )
    _add_store_option(dynamics_show)
    dynamics_show.add_argument(
        "--seed", type=int, default=None, help="replicate seed to select"
    )
    dynamics_show.add_argument("--json", action="store_true")
    dynamics_export = dynamics_sub.add_parser(
        "export", help="export one trajectory as JSON or CSV"
    )
    dynamics_export.add_argument(
        "spec", metavar="SPEC_PREFIX", help="spec-hash prefix selecting the run"
    )
    _add_store_option(dynamics_export)
    dynamics_export.add_argument("--seed", type=int, default=None)
    dynamics_export.add_argument(
        "--format",
        dest="export_format",
        default="json",
        choices=("json", "csv"),
        help="export format (default: json)",
    )
    dynamics_export.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write to PATH instead of stdout",
    )
    dynamics_compare = dynamics_sub.add_parser(
        "compare",
        help=(
            "window-by-window trajectory regression diff of two stored "
            "campaigns; non-zero exit on regression"
        ),
    )
    dynamics_compare.add_argument("left", metavar="CAMPAIGN_A")
    dynamics_compare.add_argument("right", metavar="CAMPAIGN_B")
    _add_store_option(dynamics_compare)
    dynamics_compare.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="W",
        help="slots per comparison window (default: derived from run length)",
    )
    dynamics_compare.add_argument(
        "--alpha",
        type=float,
        default=0.01,
        help="per-metric FDR level for the windowed tests (default: 0.01)",
    )

    perf_parser = subparsers.add_parser(
        "perf",
        help=(
            "store-backed wall-clock history and drift detection "
            "(record | history | regress)"
        ),
    )
    perf_sub = perf_parser.add_subparsers(dest="perf_command", required=True)
    perf_record = perf_sub.add_parser(
        "record",
        help=(
            "execute a scenario's plan once, timed, and append a "
            "wall-clock sample to the store's perf history"
        ),
    )
    perf_record.add_argument(
        "scenario", metavar="SCENARIO", help="catalog name or scenario file"
    )
    _add_store_option(perf_record)
    perf_record.add_argument("--scale", default="default", metavar="SCALE")
    perf_record.add_argument(
        "--seeds",
        default=None,
        metavar="S1,S2,...",
        help="replicate seeds (default: the scenario's own)",
    )
    perf_record.add_argument(
        "--backend", default="serial", choices=BACKEND_NAMES
    )
    perf_record.add_argument("--workers", type=int, default=None, metavar="N")
    perf_record.add_argument(
        "--label", default=None, help="history label (default: scenario@scale)"
    )
    perf_record.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="record N samples back-to-back (default: 1)",
    )
    perf_record.add_argument("--json", action="store_true")
    perf_history = perf_sub.add_parser(
        "history", help="list recorded perf samples, oldest first"
    )
    _add_store_option(perf_history)
    perf_history.add_argument(
        "--spec", default=None, metavar="PREFIX", help="spec-hash prefix filter"
    )
    perf_history.add_argument("--json", action="store_true")
    perf_regress = perf_sub.add_parser(
        "regress",
        help=(
            "Welch-test the latest samples of each (workload, layout, host) "
            "group against its rolling baseline; exit 1 on sustained drift"
        ),
    )
    _add_store_option(perf_regress)
    perf_regress.add_argument("--spec", default=None, metavar="PREFIX")
    perf_regress.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="latest samples under test (default: 2)",
    )
    perf_regress.add_argument(
        "--baseline",
        type=int,
        default=None,
        metavar="N",
        help="rolling baseline size (default: 8)",
    )
    perf_regress.add_argument(
        "--alpha",
        type=float,
        default=None,
        help="Welch significance level (default: 0.05)",
    )
    perf_regress.add_argument(
        "--factor",
        type=float,
        default=None,
        help="material-slowdown ratio gate (default: 1.2)",
    )
    perf_regress.add_argument("--json", action="store_true")

    report_parser = subparsers.add_parser(
        "report", help="exportable observability (html dashboard, metrics)"
    )
    report_sub = report_parser.add_subparsers(dest="report_command", required=True)
    report_html = report_sub.add_parser(
        "html",
        help=(
            "single-file static HTML dashboard (SVG sparklines, phase "
            "bars, utilization tables, perf history) for a run or campaign"
        ),
    )
    _add_store_option(report_html)
    report_html.add_argument(
        "--campaign", default=None, metavar="ID", help="campaign to report on"
    )
    report_html.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="telemetry JSONL file to fold into the report",
    )
    report_html.add_argument("--title", default=None)
    report_html.add_argument(
        "--out", default=None, metavar="PATH", help="write to PATH (default: stdout)"
    )
    report_metrics = report_sub.add_parser(
        "metrics",
        help=(
            "fold a telemetry JSONL file into the typed metrics registry "
            "and export it"
        ),
    )
    report_metrics.add_argument(
        "telemetry", metavar="PATH", help="JSONL file written by --telemetry"
    )
    report_metrics.add_argument(
        "--format",
        dest="export_format",
        default="prometheus",
        choices=("prometheus", "json"),
        help="export format (default: prometheus text exposition)",
    )
    report_metrics.add_argument(
        "--out", default=None, metavar="PATH", help="write to PATH (default: stdout)"
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect and prune the on-disk result cache"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser("stats", help="entry counts and sizes")
    cache_stats.add_argument(
        "--cache-dir", required=True, metavar="DIR", help="cache/store directory"
    )
    cache_stats.add_argument("--json", action="store_true")
    cache_prune = cache_sub.add_parser(
        "prune", help="drop cache entries by age and/or total size"
    )
    cache_prune.add_argument("--cache-dir", required=True, metavar="DIR")
    cache_prune.add_argument(
        "--older-than-days",
        type=float,
        default=None,
        metavar="DAYS",
        help="drop cache entries older than DAYS",
    )
    cache_prune.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="drop oldest cache entries until artifacts fit in BYTES",
    )
    cache_prune.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without touching anything",
    )
    return parser


def _normalise_ids(raw_ids: Iterable[str], parser: argparse.ArgumentParser) -> list[str]:
    ids = []
    for raw in raw_ids:
        exp_id = raw.upper()
        if exp_id not in ALL_EXPERIMENTS:
            parser.error(
                f"unknown experiment id {raw!r}; choose from "
                f"{', '.join(sorted(ALL_EXPERIMENTS))}"
            )
        ids.append(exp_id)
    return ids


def _parse_seeds(raw: str | None, parser: argparse.ArgumentParser) -> list[int] | None:
    if raw is None:
        return None
    try:
        seeds = [int(token) for token in raw.split(",") if token.strip()]
    except ValueError:
        parser.error(f"--seeds must be comma-separated integers, got {raw!r}")
    if not seeds:
        parser.error("--seeds must name at least one seed")
    return seeds


def _parse_positive_ints(
    raw: str, parser: argparse.ArgumentParser, option: str
) -> list[int]:
    try:
        values = [int(token) for token in raw.split(",") if token.strip()]
    except ValueError:
        parser.error(f"{option} must be comma-separated integers, got {raw!r}")
    if not values or any(value <= 0 for value in values):
        parser.error(f"{option} must name at least one positive integer, got {raw!r}")
    return values


def _backend_builder(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser,
    *,
    dynamics_window: int = 0,
):
    """A zero-argument backend factory, validated before anything runs.

    ``dynamics_window`` wraps the backend in a
    :class:`~repro.exec.DynamicsBackend` — used by the experiments ``run``
    path, where the sweep plan is built inside the experiment function and
    the backend is the only seam the CLI controls.  Scenario and campaign
    runs thread the window through their plans instead.
    """
    if args.workers is not None and args.backend != "processes":
        parser.error("--workers only applies to --backend processes")

    def build_backend():
        try:
            return make_backend(
                args.backend,
                workers=args.workers,
                cache_dir=args.cache_dir,
                dynamics_window=dynamics_window or None,
            )
        except ValueError as exc:
            parser.error(str(exc))

    build_backend()  # validate the options before running anything
    return build_backend


def _fallback_histogram(plan, summary) -> dict[str, int]:
    """Aggregate fallback reasons into a reason -> spec-count histogram.

    Identical reasons repeat per group on large plans; the histogram
    surfaces "how much falls back, and why" at a glance.
    """
    histogram: dict[str, int] = {}
    for group_id, reason in summary["fallback_groups"].items():
        histogram[reason] = histogram.get(reason, 0) + len(
            plan.groups[group_id].spec_indices
        )
    return dict(sorted(histogram.items(), key=lambda item: (-item[1], item[0])))


def _vectorization_payload(plan) -> dict[str, object]:
    """JSON-friendly vectorization summary of one sweep plan."""
    summary = plan.vector_summary()
    return {
        "total_specs": summary["total_specs"],
        "vectorizable_specs": summary["vectorizable_specs"],
        "vector_groups": summary["vector_groups"],
        "mega_batches": summary["mega_batches"],
        "fallbacks": [
            {
                "group": group_id,
                "protocol": plan.groups[group_id].protocol_name,
                "reason": reason,
            }
            for group_id, reason in sorted(summary["fallback_groups"].items())
        ],
        "fallback_histogram": _fallback_histogram(plan, summary),
        "mega_exclusions": [
            {
                "group": group_id,
                "protocol": plan.groups[group_id].protocol_name,
                "reason": reason,
            }
            for group_id, reason in sorted(summary["mega_exclusions"].items())
        ],
    }


def _print_vectorization_table(label: str, plan, scale: str) -> None:
    """Render one plan's per-group kernel-vs-fallback table."""
    summary = plan.vector_summary()
    print(
        f"[{label}] scale={scale}: "
        f"{summary['vectorizable_specs']}/{summary['total_specs']} specs "
        f"vectorize; {summary['vector_groups']} lockstep group(s) -> "
        f"{summary['mega_batches']} mega-batch launch(es)"
    )
    fallback = summary["fallback_groups"]
    rows = [("group", "protocol", "configuration", "reps", "status")]
    for group in plan.groups:
        columns = ", ".join(f"{key}={value}" for key, value in group.columns)
        status = (
            "vector kernel"
            if group.group_id not in fallback
            else f"fallback: {fallback[group.group_id]}"
        )
        rows.append(
            (
                str(group.group_id),
                group.protocol_name,
                columns or "-",
                str(len(group.seeds)),
                status,
            )
        )
    widths = [
        max(len(row[column]) for row in rows) for column in range(4)
    ]
    for row in rows:
        print(
            "  "
            + "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
            + "  "
            + row[4]
        )
    histogram = _fallback_histogram(plan, summary)
    if histogram:
        print("  fallback reasons (spec counts):")
        for reason, count in histogram.items():
            print(f"    {count:>4}  {reason}")
    print()


def _experiment_rows(*, vectorization: bool = False) -> list[dict[str, object]]:
    from repro.experiments import experiments as exp_module
    from repro.experiments.experiments import EXPERIMENT_PLANS

    rows: list[dict[str, object]] = []
    for exp_id in sorted(ALL_EXPERIMENTS):
        spec = getattr(exp_module, f"{exp_id}_SPEC")
        row: dict[str, object] = {
            "id": exp_id, "title": spec.title, "bench_target": spec.bench_target
        }
        if vectorization:
            row["vectorization"] = _vectorization_payload(
                EXPERIMENT_PLANS[exp_id]()
            )
        rows.append(row)
    return rows


def _scenario_rows(*, vectorization: bool = False) -> list[dict[str, object]]:
    from repro.scenarios.catalog import builtin_scenarios

    rows = []
    for scenario_id in sorted(builtin_scenarios()):
        scenario = builtin_scenarios()[scenario_id]
        row: dict[str, object] = {
            "id": scenario.scenario_id,
            "title": scenario.title,
            "protocols": list(scenario.protocols),
            "tags": list(scenario.tags),
            "max_slots": scenario.max_slots,
            "replications": scenario.replications,
            "content_hash": scenario.content_hash(),
        }
        if vectorization:
            from repro.scenarios.runner import build_plan

            row["vectorization"] = _vectorization_payload(build_plan(scenario))
        rows.append(row)
    return rows


def _print_scenario_table(scenarios: list[dict[str, object]]) -> None:
    width = max(len(row["id"]) for row in scenarios)
    for row in scenarios:
        tags = f" [{', '.join(row['tags'])}]" if row["tags"] else ""
        print(f"{row['id']:<{width}}  {row['title']}{tags}")


def _command_list(args: argparse.Namespace) -> int:
    # The machine-readable listing carries each entry's vectorization
    # coverage (kernel counts + named fallback reasons); the plain table
    # skips the probe to stay instant.
    experiments = _experiment_rows(vectorization=args.json)
    scenarios = _scenario_rows(vectorization=args.json)
    if args.json:
        print(
            json.dumps(
                {"experiments": experiments, "scenarios": scenarios}, indent=2
            )
        )
        return 0
    width = max(len(row["id"]) for row in experiments)
    for row in experiments:
        print(f"{row['id']:<{width}}  {row['title']}  [{row['bench_target']}]")
    print()
    print("Scenarios (python -m repro scenario run <id>):")
    _print_scenario_table(scenarios)
    return 0


def _prepare_out_dir(
    raw: str | None, parser: argparse.ArgumentParser
) -> pathlib.Path | None:
    """Create ``--out`` up front so a bad path fails before anything runs."""
    if raw is None:
        return None
    out_dir = pathlib.Path(raw)
    try:
        out_dir.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        parser.error(f"cannot create --out directory {raw!r}: {exc}")
    return out_dir


def _prepare_bench_out(
    raw: str | None, parser: argparse.ArgumentParser
) -> pathlib.Path | None:
    """Probe ``--bench-out`` writability before anything runs.

    A sweep can run for hours; discovering an unwritable bench path only
    when the first record merges would lose the whole run's timing.  The
    probe opens the file for append (creating parents) and removes it
    again if it did not exist, so an untouched path stays untouched.
    """
    if raw is None:
        return None
    path = pathlib.Path(raw)
    try:
        if path.is_dir():
            raise IsADirectoryError(f"{raw!r} is a directory")
        path.parent.mkdir(parents=True, exist_ok=True)
        existed = path.exists()
        with path.open("a", encoding="utf-8"):
            pass
        if not existed:
            path.unlink()
    except OSError as exc:
        parser.error(f"cannot write --bench-out {raw!r}: {exc}")
    return path


def _write_report_json(
    out_dir: pathlib.Path, name: str, payload: dict, label: str
) -> None:
    path = out_dir / f"{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    print(f"[{label}] wrote {path}")


def _command_run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    ids = _normalise_ids(args.experiments, parser)
    seeds = _parse_seeds(args.seeds, parser)
    if args.explain:
        from repro.experiments.experiments import EXPERIMENT_PLANS

        for exp_id in ids:
            plan = EXPERIMENT_PLANS[exp_id](scale=args.scale, seeds=seeds)
            _print_vectorization_table(exp_id, plan, args.scale)
        return 0
    build_backend = _backend_builder(
        args, parser, dynamics_window=_dynamics_window(args, parser)
    )
    out_dir = _prepare_out_dir(args.out, parser)
    _prepare_bench_out(args.bench_out, parser)
    from repro.telemetry import activated

    with activated(_telemetry_session(args)) as tele:
        with _resource_sampler(args, parser, tele):
            return _run_experiments(args, ids, seeds, build_backend, out_dir, tele)


def _run_experiments(args, ids, seeds, build_backend, out_dir, tele) -> int:
    for exp_id in ids:
        # A fresh backend per experiment keeps the counters it reports
        # (cache hits/misses, vectorized/fallback splits) attributed to
        # this experiment alone; the on-disk cache still persists across
        # experiments because it is keyed by directory, not by instance.
        backend = build_backend()
        try:
            started = time.perf_counter()
            with tele.span(
                "sweep", kind="root", backend=args.backend, experiment=exp_id
            ):
                report = ALL_EXPERIMENTS[exp_id](
                    scale=args.scale, seeds=seeds, backend=backend
                )
            elapsed = time.perf_counter() - started
        finally:
            backend.close()
        print(render_report(report))
        print(f"\n[{exp_id}] {elapsed:.2f}s on backend {backend.describe()}\n")
        if args.bench_out is not None:
            from repro.experiments.bench import record_bench

            record_bench(
                args.bench_out,
                exp_id,
                seconds=elapsed,
                scale=args.scale,
                backend=backend.describe(),
            )
            print(f"[{exp_id}] merged wall-clock record into {args.bench_out}")
        if out_dir is not None:
            from repro.experiments.experiments import _seeds

            payload = report_to_dict(report)
            payload["scale"] = args.scale
            # Record the seeds actually used, including the scale's default
            # seed list, so archived reports are self-describing.
            payload["seeds"] = list(_seeds(args.scale, seeds))
            payload["backend"] = backend.describe()
            payload["elapsed_seconds"] = round(elapsed, 4)
            _write_report_json(out_dir, exp_id.lower(), payload, exp_id)
    return 0


def _warn_on_majority_fallback(scenario, scale: str, seeds) -> None:
    """One-line warning when a vector run is mostly serial in disguise."""
    from repro.scenarios.runner import build_plan

    plan = build_plan(scenario, scale, seeds)
    summary = plan.vector_summary()
    total = summary["total_specs"]
    fallback_specs = total - summary["vectorizable_specs"]
    if total and fallback_specs * 2 > total:
        histogram = _fallback_histogram(plan, summary)
        top_reason = next(iter(histogram))
        print(
            f"[{scenario.scenario_id}] warning: {fallback_specs}/{total} jobs "
            f"fall back to the serial engine (top reason: {top_reason})"
        )


def _command_scenario(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.scenarios.spec import ScenarioError, resolve_scenario

    if args.scenario_command == "list":
        scenarios = _scenario_rows()
        if args.json:
            print(json.dumps({"scenarios": scenarios}, indent=2))
            return 0
        _print_scenario_table(scenarios)
        return 0

    if args.scenario_command == "show":
        try:
            scenario = resolve_scenario(args.scenario)
        except ScenarioError as exc:
            parser.error(str(exc))
        from repro.scenarios.runner import build_plan

        payload = scenario.to_dict()
        payload["content_hash"] = scenario.content_hash()
        plan = build_plan(scenario)
        summary = plan.vector_summary()
        payload["vector_support"] = {
            group.protocol_name: summary["fallback_groups"].get(
                group.group_id, "vectorizable"
            )
            for group in plan.groups
        }
        print(json.dumps(payload, indent=2))
        return 0

    # scenario run
    seeds = _parse_seeds(args.seeds, parser)
    build_backend = _backend_builder(args, parser)
    try:
        scenarios = [resolve_scenario(name) for name in args.scenarios]
    except ScenarioError as exc:
        parser.error(str(exc))
    seen_ids: dict[str, str] = {}
    for argument, scenario in zip(args.scenarios, scenarios):
        previous = seen_ids.setdefault(scenario.scenario_id, str(argument))
        if previous != str(argument):
            # Reports and bench records are keyed by scenario id, so two
            # definitions sharing one id would silently overwrite each other.
            parser.error(
                f"scenario id {scenario.scenario_id!r} requested twice "
                f"(from {previous!r} and {argument!r})"
            )
    out_dir = _prepare_out_dir(args.out, parser)
    _prepare_bench_out(args.bench_out, parser)
    dynamics_window = _dynamics_window(args, parser)
    from repro.telemetry import activated

    with activated(_telemetry_session(args)) as tele:
        with _resource_sampler(args, parser, tele):
            return _run_scenarios(
                args, scenarios, seeds, build_backend, out_dir, tele, dynamics_window
            )


def _run_scenarios(
    args, scenarios, seeds, build_backend, out_dir, tele, dynamics_window=0
) -> int:
    from repro.scenarios.runner import run_scenario, scenario_max_slots, scenario_seeds

    for scenario in scenarios:
        if args.backend == "vector":
            _warn_on_majority_fallback(scenario, args.scale, seeds)
        backend = build_backend()
        try:
            started = time.perf_counter()
            with tele.span(
                "scenario",
                kind="root",
                backend=args.backend,
                scenario=scenario.scenario_id,
            ):
                report = run_scenario(
                    scenario,
                    scale=args.scale,
                    seeds=seeds,
                    backend=backend,
                    dynamics_window=dynamics_window,
                )
            elapsed = time.perf_counter() - started
        finally:
            backend.close()
        label = scenario.scenario_id
        print(render_report(report))
        print(f"\n[{label}] {elapsed:.2f}s on backend {backend.describe()}\n")
        if args.bench_out is not None:
            from repro.experiments.bench import record_bench

            record_bench(
                args.bench_out,
                f"scenario:{label}",
                seconds=elapsed,
                scale=args.scale,
                backend=backend.describe(),
                extra={"content_hash": scenario.content_hash()},
            )
            print(f"[{label}] merged wall-clock record into {args.bench_out}")
        if out_dir is not None:
            payload = report_to_dict(report)
            payload["scenario"] = scenario.to_dict()
            payload["content_hash"] = scenario.content_hash()
            payload["scale"] = args.scale
            payload["seeds"] = list(scenario_seeds(scenario, args.scale, seeds))
            payload["max_slots"] = scenario_max_slots(scenario, args.scale)
            payload["backend"] = backend.describe()
            payload["elapsed_seconds"] = round(elapsed, 4)
            _write_report_json(out_dir, f"scenario-{label}", payload, label)
    return 0


def _command_equivalence(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    if args.replications < 1:
        parser.error("--replications must be at least 1")
    failures = 0
    if args.scenario is not None:
        from repro.analysis.equivalence import verify_plan_equivalence
        from repro.scenarios.runner import build_plan
        from repro.scenarios.spec import ScenarioError, resolve_scenario

        try:
            scenario = resolve_scenario(args.scenario)
        except ScenarioError as exc:
            parser.error(str(exc))
        seeds = [scenario.base_seed + index for index in range(args.replications)]
        plan = build_plan(scenario, scale=args.scale, seeds=seeds)
        reports = verify_plan_equivalence(plan)
        if not reports:
            parser.error(
                f"scenario {scenario.scenario_id!r} has no vectorizable group; "
                "nothing to compare"
            )
        for group_id, report in sorted(reports.items()):
            protocol = plan.groups[group_id].protocol_name
            print(f"-- {scenario.scenario_id} [{protocol}] x{args.replications}")
            print(report.render())
            failures += 0 if report.passed else 1
    else:
        from repro.adversary.arrivals import BatchArrivals
        from repro.adversary.composite import CompositeAdversary
        from repro.analysis.equivalence import verify_vector_equivalence
        from repro.core.low_sensing import LowSensingBackoff
        from repro.experiments.plan import RunSpec, factory
        from repro.protocols.binary_exponential import BinaryExponentialBackoff
        from repro.protocols.fixed_probability import FixedProbabilityProtocol
        from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights
        from repro.protocols.polynomial_backoff import PolynomialBackoff
        from repro.protocols.sawtooth import SawtoothBackoff

        batch_sizes = _parse_positive_ints(args.batch_sizes, parser, "--batch-sizes")
        seeds = range(1, args.replications + 1)
        sensing_protocols = (
            LowSensingBackoff(),
            SawtoothBackoff(),
            FullSensingMultiplicativeWeights(),
        )
        for n in batch_sizes:
            adversary = factory(CompositeAdversary, factory(BatchArrivals, n))
            core_protocols = (
                BinaryExponentialBackoff(),
                PolynomialBackoff(),
                FixedProbabilityProtocol.tuned_for(n),
            )
            if args.protocols == "core":
                protocols = core_protocols
            elif args.protocols == "sensing":
                protocols = sensing_protocols
            else:
                protocols = core_protocols + sensing_protocols
            for protocol in protocols:
                specs = [
                    RunSpec(protocol=protocol, adversary=adversary, seed=seed)
                    for seed in seeds
                ]
                report = verify_vector_equivalence(specs)
                print(f"-- {protocol.name} n={n} x{args.replications}")
                print(report.render())
                failures += 0 if report.passed else 1
    if failures:
        print(f"\nequivalence: {failures} configuration(s) FAILED")
        return 1
    print("\nequivalence: all configurations passed")
    return 0


def _open_store(raw: str, parser: argparse.ArgumentParser, *, create: bool = False):
    """Open the results store at ``raw``.

    Only ``campaign run`` may create a store (``create=True``); every
    read-side command requires one to exist already, so a mistyped
    ``--store``/``--cache-dir`` is a loud error instead of a silently
    created empty store reporting zero of everything.
    """
    import sqlite3

    from repro.store import ResultsStore, StoreError

    if not create and not (pathlib.Path(raw) / "store.db").exists():
        parser.error(
            f"no results store at {raw!r} (expected {raw}/store.db; "
            "'campaign run' or a --cache-dir sweep creates one)"
        )
    try:
        return ResultsStore(raw)
    except (OSError, sqlite3.Error, StoreError) as exc:
        parser.error(f"cannot open results store at {raw!r}: {exc}")


def _print_outcome(outcome) -> None:
    print(
        f"[{outcome.campaign_id}] {outcome.status}: "
        f"{outcome.executed_runs} executed, {outcome.skipped_runs} skipped "
        f"of {outcome.total_runs} runs in {outcome.elapsed_seconds:.2f}s"
    )


def _fail_after_units_env(parser: argparse.ArgumentParser) -> int | None:
    """Deterministic interruption hook for CI/smoke (unit count from env)."""
    raw = os.environ.get("REPRO_CAMPAIGN_FAIL_AFTER_UNITS")
    if raw is None:
        return None
    try:
        value = int(raw)
        if value < 1:
            raise ValueError
    except ValueError:
        parser.error(
            f"REPRO_CAMPAIGN_FAIL_AFTER_UNITS must be a positive integer, got {raw!r}"
        )
    return value


def _command_campaign(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.campaigns import (
        CampaignError,
        CampaignInterrupted,
        campaign_report,
        campaign_status_rows,
        diff_campaign_vs_bench,
        diff_campaigns,
        resume_campaign,
        start_campaign,
    )
    from repro.campaigns.runner import DEFAULT_CHECKPOINT_EVERY

    # Validate everything that can fail cheaply BEFORE the store opens:
    # `campaign run` creates the store directory, and a typo'd scenario
    # name must not leave an empty store behind.
    if args.campaign_command == "run":
        from repro.scenarios.spec import ScenarioError, resolve_scenario

        try:
            scenario = resolve_scenario(args.scenario)
        except ScenarioError as exc:
            parser.error(str(exc))
        seeds = _parse_seeds(args.seeds, parser)
    if args.campaign_command in ("run", "resume"):
        checkpoint = (
            DEFAULT_CHECKPOINT_EVERY
            if args.checkpoint_every is None
            else args.checkpoint_every
        )
        if checkpoint < 1:
            parser.error("--checkpoint-every must be at least 1")
    from repro.telemetry import activated

    with _open_store(
        args.store, parser, create=args.campaign_command == "run"
    ) as store:
        try:
            if args.campaign_command == "run":
                with activated(_telemetry_session(args)) as tele:
                    with _resource_sampler(args, parser, tele), tele.span(
                        "campaign",
                        kind="root",
                        backend=args.backend,
                        scenario=scenario.scenario_id,
                    ):
                        outcome = start_campaign(
                            store,
                            scenario,
                            scale=args.scale,
                            seeds=seeds,
                            backend_name=args.backend,
                            workers=args.workers,
                            campaign_id=args.campaign_id,
                            checkpoint_every=checkpoint,
                            fail_after_units=_fail_after_units_env(parser),
                            dynamics_window=_dynamics_window(args, parser),
                        )
                _print_outcome(outcome)
                return 0

            if args.campaign_command == "resume":
                with activated(_telemetry_session(args)) as tele:
                    with _resource_sampler(args, parser, tele), tele.span(
                        "campaign",
                        kind="root",
                        campaign=args.campaign_id,
                        op="resume",
                    ):
                        outcome = resume_campaign(
                            store,
                            args.campaign_id,
                            workers=args.workers,
                            checkpoint_every=checkpoint,
                            fail_after_units=_fail_after_units_env(parser),
                            dynamics_window=_dynamics_window(args, parser),
                        )
                _print_outcome(outcome)
                return 0

            if args.campaign_command == "status":
                rows = campaign_status_rows(store)
                if args.json:
                    print(
                        json.dumps(
                            {
                                "campaigns": rows,
                                "store_fingerprint": store.fingerprint(),
                            },
                            indent=2,
                        )
                    )
                    return 0
                if not rows:
                    print("(no campaigns)")
                    return 0
                width = max(len(row["campaign_id"]) for row in rows)
                for row in rows:
                    timing = f"{row['elapsed_seconds']:.2f}s"
                    if row["units_done"]:
                        timing += (
                            f" over {row['units_done']} unit(s), "
                            f"slowest {row['slowest_unit_seconds']:.2f}s"
                        )
                        if row["unit_imbalance"] is not None:
                            timing += f", imbalance {row['unit_imbalance']:.2f}x"
                    if row["eta_seconds"] is not None:
                        timing += f", eta ~{row['eta_seconds']:.1f}s"
                    print(
                        f"{row['campaign_id']:<{width}}  {row['status']:<9} "
                        f"{row['runs_done']}/{row['total_runs']} runs  "
                        f"backend={row['backend']} scale={row['scale']} "
                        f"{timing}"
                    )
                return 0

            if args.campaign_command == "show":
                report = campaign_report(store, args.campaign_id)
                if args.json:
                    payload = report_to_dict(report)
                    payload["campaign"] = store.get_campaign(args.campaign_id)
                    payload["store_fingerprint"] = store.fingerprint()
                    print(json.dumps(payload, indent=2))
                    return 0
                print(render_report(report))
                return 0

            # campaign diff
            if args.bench is not None:
                if args.right is not None:
                    parser.error("--bench compares one campaign; drop CAMPAIGN_B")
                verdict = diff_campaign_vs_bench(
                    store,
                    args.left,
                    args.bench,
                    bench_id=args.bench_id,
                    factor=args.factor,
                )
                status = "PASS" if verdict["passed"] else "REGRESSION"
                print(
                    f"campaign {verdict['campaign_id']} vs bench "
                    f"{verdict['bench_id']}: {status} "
                    f"({verdict['campaign_seconds']}s vs recorded "
                    f"{verdict['recorded_seconds']}s, budget "
                    f"{verdict['budget_seconds']}s)"
                )
                return 0 if verdict["passed"] else 1
            if args.right is None:
                parser.error("diff needs CAMPAIGN_B (or --bench PATH)")
            if args.trajectory_window is not None and args.trajectory_window < 1:
                parser.error("--trajectory-window must be at least 1")
            diff = diff_campaigns(
                store,
                args.left,
                right_id=args.right,
                alpha=args.alpha,
                mean_alpha=args.mean_alpha,
                trajectories=args.trajectories,
                trajectory_window=args.trajectory_window,
                trajectory_alpha=args.trajectory_alpha,
            )
            print(diff.render())
            return 0 if diff.passed else 1
        except CampaignInterrupted as exc:
            # The deterministic interruption hook mimics a kill: report and
            # exit non-zero so wrappers treat it as the crash it simulates.
            print(str(exc))
            return 1
        except CampaignError as exc:
            parser.error(str(exc))
    raise AssertionError("unreachable")  # pragma: no cover


def _command_telemetry(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    from repro.observe import render_worker_table, worker_utilization
    from repro.telemetry import (
        filter_events,
        read_events,
        render_summary,
        summarize_events,
    )

    path = pathlib.Path(args.path)
    if not path.is_file():
        parser.error(
            f"no telemetry file at {args.path!r} "
            "(produce one with --telemetry PATH on run/scenario run/campaign run)"
        )
    events = read_events(path)
    if not events:
        parser.error(f"telemetry file {args.path!r} contains no parseable events")
    if args.run or args.last:
        events = filter_events(events, runs=args.run, last=args.last)
        if not events:
            parser.error(
                f"no events in {args.path!r} match the requested session(s); "
                "run ids are listed in the unfiltered summary header"
            )
    summary = summarize_events(events)
    utilization = worker_utilization(events)
    if args.json:
        if utilization is not None:
            summary["workers"] = utilization
        print(json.dumps(summary, indent=2))
        return 0
    print(render_summary(summary))
    if utilization is not None:
        print()
        print(render_worker_table(utilization))
    return 0


def _select_trajectory_row(
    store, args: argparse.Namespace, parser: argparse.ArgumentParser
) -> dict:
    """Resolve a spec-hash prefix (+ optional ``--seed``) to one row."""
    rows = store.trajectory_rows(spec_prefix=args.spec)
    if args.seed is not None:
        rows = [row for row in rows if row["seed"] == args.seed]
    if not rows:
        parser.error(
            f"no stored trajectory matches spec prefix {args.spec!r}"
            + (f" with seed {args.seed}" if args.seed is not None else "")
            + "; list them with 'python -m repro dynamics show'"
        )
    if len(rows) > 1:
        candidates = ", ".join(
            f"{row['spec_hash'][:12]}/seed={row['seed']}/{row['backend_layout']}"
            for row in rows[:8]
        )
        parser.error(
            f"spec prefix {args.spec!r} is ambiguous ({len(rows)} trajectories: "
            f"{candidates}{', ...' if len(rows) > 8 else ''}); "
            "narrow the prefix or add --seed"
        )
    return rows[0]


def _load_trajectory(store, row: dict, parser: argparse.ArgumentParser):
    trajectory = store.get_trajectory(
        row["spec_hash"], row["seed"], row["backend_layout"]
    )
    if trajectory is None:
        parser.error(
            f"trajectory artifact for {row['spec_hash'][:12]}/seed={row['seed']} "
            "is missing or corrupt — re-run with --dynamics"
        )
    return trajectory


def _command_dynamics(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    with _open_store(args.store, parser) as store:
        if args.dynamics_command == "show":
            if args.spec is None:
                rows = store.trajectory_rows()
                if args.json:
                    print(json.dumps({"trajectories": rows}, indent=2))
                    return 0
                if not rows:
                    print(
                        "(no stored trajectories; record them with --dynamics "
                        "on campaign run or a --cache-dir sweep)"
                    )
                    return 0
                print(
                    f"{'spec':<14} {'seed':>6} {'layout':<24} {'window':>7} "
                    f"{'slots':>8} protocol"
                )
                for row in rows:
                    print(
                        f"{row['spec_hash'][:12]:<14} {row['seed']:>6} "
                        f"{row['backend_layout']:<24.24} {row['window']:>7} "
                        f"{row['num_slots']:>8} {row['protocol'] or '-'}"
                    )
                return 0
            from repro.dynamics import render_trajectory

            row = _select_trajectory_row(store, args, parser)
            trajectory = _load_trajectory(store, row, parser)
            if args.json:
                print(json.dumps(trajectory.to_dict(), indent=2))
                return 0
            label = (
                f"{row['protocol'] or '?'} spec={row['spec_hash'][:12]} "
                f"seed={row['seed']} [{row['backend_layout']}]"
            )
            print(render_trajectory(trajectory, label=label))
            return 0

        if args.dynamics_command == "export":
            from repro.dynamics import trajectory_to_csv, trajectory_to_json

            row = _select_trajectory_row(store, args, parser)
            trajectory = _load_trajectory(store, row, parser)
            rendered = (
                trajectory_to_csv(trajectory)
                if args.export_format == "csv"
                else trajectory_to_json(trajectory)
            )
            if args.out is None:
                print(rendered, end="" if rendered.endswith("\n") else "\n")
                return 0
            out_path = pathlib.Path(args.out)
            try:
                out_path.parent.mkdir(parents=True, exist_ok=True)
                out_path.write_text(
                    rendered if rendered.endswith("\n") else rendered + "\n",
                    encoding="utf-8",
                )
            except OSError as exc:
                parser.error(f"cannot write --out {args.out!r}: {exc}")
            print(
                f"wrote {args.export_format} trajectory "
                f"{row['spec_hash'][:12]}/seed={row['seed']} to {out_path}"
            )
            return 0

        # dynamics compare
        from repro.campaigns import CampaignError, diff_campaign_trajectories

        if args.window is not None and args.window < 1:
            parser.error("--window must be at least 1")
        try:
            diffs = diff_campaign_trajectories(
                store,
                args.left,
                right_id=args.right,
                window=args.window,
                alpha=args.alpha,
            )
        except CampaignError as exc:
            parser.error(str(exc))
        if not diffs:
            parser.error(
                f"campaigns {args.left!r} and {args.right!r} share no protocol "
                "groups; nothing to compare"
            )
        failures = 0
        for protocol in sorted(diffs):
            diff = diffs[protocol]
            print(f"-- [{protocol}]")
            print("\n".join("  " + line for line in diff.render().splitlines()))
            failures += 0 if diff.passed else 1
        verdict = "PASS" if not failures else "REGRESSION"
        print(
            f"\ntrajectory compare {args.left} vs {args.right}: {verdict} "
            f"({len(diffs) - failures}/{len(diffs)} protocol group(s) clean)"
        )
        return 0 if not failures else 1


def _command_cache(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    # Open through the cache backend, not the raw store: an existing
    # directory of legacy loose-pickle entries (no store.db yet) is
    # exactly what these commands must be able to inspect and prune, and
    # the backend's lazy open migrates those entries into the store.
    # Only a missing directory is a hard error (mistyped path).
    root = pathlib.Path(args.cache_dir)
    if not root.is_dir():
        parser.error(
            f"no cache directory at {args.cache_dir!r} "
            "(a --cache-dir sweep or 'campaign run' creates one)"
        )
    from repro.exec.cache import ResultCacheBackend

    with ResultCacheBackend(root) as backend:
        store = backend.store
        if args.cache_command == "stats":
            stats = store.stats()
            if args.json:
                print(json.dumps(stats, indent=2))
                return 0
            print(f"store: {stats['root']}")
            print(
                f"runs: {stats['runs']} "
                f"(by source: {stats['runs_by_source'] or '{}'}; "
                f"by layout: {stats['runs_by_layout'] or '{}'})"
            )
            print(f"campaigns: {stats['campaigns']}")
            print(f"trajectories: {stats.get('trajectories', 0)}")
            print(
                f"artifacts: {stats['artifacts']} files, "
                f"{stats['artifact_bytes']} bytes "
                f"(registry: {stats['db_bytes']} bytes)"
            )
            return 0

        # cache prune
        if args.older_than_days is None and args.max_bytes is None:
            parser.error("prune needs --older-than-days and/or --max-bytes")
        if args.older_than_days is not None and args.older_than_days < 0:
            parser.error("--older-than-days must be >= 0")
        if args.max_bytes is not None and args.max_bytes < 0:
            parser.error("--max-bytes must be >= 0")
        removed = store.prune(
            older_than_days=args.older_than_days,
            max_bytes=args.max_bytes,
            dry_run=args.dry_run,
        )
        prefix = "would remove" if removed["dry_run"] else "removed"
        print(
            f"{prefix} {removed['removed_runs']} cache entries and "
            f"{removed['removed_artifacts']} artifacts "
            f"({removed['removed_bytes']} bytes)"
        )
        return 0


def _command_perf(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.observe.perf import (
        DEFAULT_ALPHA,
        DEFAULT_BASELINE,
        DEFAULT_FACTOR,
        DEFAULT_WINDOW,
        record_scenario_perf,
        regress_groups,
    )

    if args.perf_command == "record":
        from repro.scenarios.spec import ScenarioError, resolve_scenario

        try:
            scenario = resolve_scenario(args.scenario)
        except ScenarioError as exc:
            parser.error(str(exc))
        seeds = _parse_seeds(args.seeds, parser)
        if args.repeat < 1:
            parser.error("--repeat must be at least 1")
        with _open_store(args.store, parser, create=True) as store:
            samples = [
                record_scenario_perf(
                    store,
                    scenario,
                    scale=args.scale,
                    seeds=seeds,
                    backend_name=args.backend,
                    workers=args.workers,
                    label=args.label,
                )
                for _ in range(args.repeat)
            ]
        if args.json:
            print(json.dumps({"samples": samples}, indent=2))
            return 0
        for sample in samples:
            rate = (
                f"{sample['slots_per_second']:.0f} slots/s"
                if sample["slots_per_second"] is not None
                else "-"
            )
            print(
                f"recorded {sample['label']} [{sample['backend_layout']}] "
                f"host={sample['host']}: {sample['seconds']:.4f}s "
                f"({sample['runs']} runs, {rate})"
            )
        return 0

    with _open_store(args.store, parser) as store:
        rows = store.perf_sample_rows(spec_prefix=args.spec)

    if args.perf_command == "history":
        if args.json:
            print(json.dumps({"samples": rows}, indent=2))
            return 0
        if not rows:
            print("(no perf samples; record them with 'python -m repro perf record')")
            return 0
        print(
            f"{'label':<28} {'layout':<18} {'host':<14} {'runs':>5} "
            f"{'seconds':>10} {'slots/s':>10} recorded_at"
        )
        for row in rows:
            rate = (
                f"{row['slots_per_second']:.0f}"
                if row["slots_per_second"] is not None
                else "-"
            )
            print(
                f"{(row['label'] or row['spec_hash'][:12]):<28.28} "
                f"{row['backend_layout']:<18.18} {row['host']:<14.14} "
                f"{row['runs']:>5} {row['seconds']:>10.4f} {rate:>10} "
                f"{row['created_at']}"
            )
        return 0

    # regress
    verdicts = regress_groups(
        rows,
        window=args.window if args.window is not None else DEFAULT_WINDOW,
        baseline=args.baseline if args.baseline is not None else DEFAULT_BASELINE,
        alpha=args.alpha if args.alpha is not None else DEFAULT_ALPHA,
        factor=args.factor if args.factor is not None else DEFAULT_FACTOR,
    )
    drifted = [v for v in verdicts if v["status"] == "drift"]
    if args.json:
        print(
            json.dumps(
                {"groups": verdicts, "drifted": len(drifted)},
                indent=2,
            )
        )
        return 1 if drifted else 0
    if not verdicts:
        print("(no perf samples to test; record some first)")
        return 0
    for verdict in verdicts:
        name = verdict.get("label") or verdict["spec_hash"][:12]
        prefix = f"{name} [{verdict['backend_layout']}] host={verdict['host']}"
        if verdict["status"] == "insufficient":
            print(
                f"{prefix}: insufficient history "
                f"({verdict['samples']}/{verdict['needed']} samples)"
            )
            continue
        p_rendered = (
            f"p={verdict['p_value']:.4f}"
            if verdict["p_value"] is not None
            else "p=n/a"
        )
        print(
            f"{prefix}: {verdict['status']} — latest "
            f"{verdict['latest_mean']:.4f}s vs baseline "
            f"{verdict['baseline_mean']:.4f}s "
            f"(x{verdict['ratio']:.2f}, {p_rendered}, "
            f"{verdict['window']}/{verdict['baseline']} samples)"
        )
    if drifted:
        print(f"DRIFT: {len(drifted)} group(s) regressed")
        return 1
    return 0


def _command_report(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.report_command == "metrics":
        from repro.observe import fold_events, to_json, to_prometheus
        from repro.telemetry import read_events

        path = pathlib.Path(args.telemetry)
        if not path.is_file():
            parser.error(f"no telemetry file at {args.telemetry!r}")
        registry = fold_events(read_events(path))
        rendered = (
            to_prometheus(registry)
            if args.export_format == "prometheus"
            else to_json(registry) + "\n"
        )
        return _write_or_print(rendered, args.out, parser)

    # report html
    from repro.observe import render_html_report
    from repro.telemetry import read_events

    events = None
    if args.telemetry:
        path = pathlib.Path(args.telemetry)
        if not path.is_file():
            parser.error(f"no telemetry file at {args.telemetry!r}")
        events = read_events(path)
    store_path = pathlib.Path(args.store)
    open_store = args.campaign is not None or store_path.is_dir()
    if not open_store and events is None:
        parser.error(
            "report html needs at least one input: --telemetry PATH "
            "and/or a results store (--store DIR, --campaign ID)"
        )
    try:
        if open_store:
            with _open_store(args.store, parser) as store:
                rendered = render_html_report(
                    store=store,
                    campaign_id=args.campaign,
                    events=events,
                    title=args.title,
                )
        else:
            rendered = render_html_report(events=events, title=args.title)
    except Exception as exc:
        from repro.campaigns import CampaignError

        if isinstance(exc, CampaignError):
            parser.error(str(exc))
        raise
    return _write_or_print(rendered, args.out, parser)


def _write_or_print(
    rendered: str, out: str | None, parser: argparse.ArgumentParser
) -> int:
    if out is None:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
        return 0
    out_path = pathlib.Path(out)
    try:
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_text(
            rendered if rendered.endswith("\n") else rendered + "\n",
            encoding="utf-8",
        )
    except OSError as exc:
        parser.error(f"cannot write {out!r}: {exc}")
    print(f"wrote {out_path}")
    return 0


def main(argv: Iterable[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "list":
        return _command_list(args)
    if args.command == "scenario":
        return _command_scenario(args, parser)
    if args.command == "equivalence":
        return _command_equivalence(args, parser)
    if args.command == "campaign":
        return _command_campaign(args, parser)
    if args.command == "telemetry":
        return _command_telemetry(args, parser)
    if args.command == "dynamics":
        return _command_dynamics(args, parser)
    if args.command == "cache":
        return _command_cache(args, parser)
    if args.command == "perf":
        return _command_perf(args, parser)
    if args.command == "report":
        return _command_report(args, parser)
    return _command_run(args, parser)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
