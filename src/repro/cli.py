"""The ``python -m repro`` command line.

Two subcommands:

``list``
    Print the experiment table (id, title, bench target).

``run``
    Run experiments by id on a chosen execution backend and print their
    rendered reports::

        python -m repro run e3 --scale full --backend processes --workers 8 --out results/

    With ``--out``, each experiment also writes a JSON report
    (``<out>/<id>.json``) containing the rows, verdicts, backend description
    and wall-clock time, so sweeps can be archived and diffed.  With
    ``--bench-out PATH``, a wall-clock record per experiment is merged into
    the given BENCH JSON file (history accumulates across runs — see
    :mod:`repro.experiments.bench`).

    ``--backend vector`` batches every vectorizable replication group
    through the lockstep numpy engine and runs the rest serially; the
    backend description in the report shows the vectorized/fallback split.

Experiment ids are case-insensitive (``e3`` and ``E3`` both work).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from typing import Iterable

from repro.exec import BACKEND_NAMES, make_backend
from repro.experiments.experiments import ALL_EXPERIMENTS
from repro.experiments.reporting import render_report, report_to_dict
from repro.experiments.spec import SCALES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run the paper-claim experiments (E1-E9, A1).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run experiments by id")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        metavar="ID",
        help="experiment ids to run (e.g. e1 e3; case-insensitive)",
    )
    run_parser.add_argument("--scale", default="default", choices=SCALES)
    run_parser.add_argument(
        "--seeds",
        default=None,
        help="comma-separated replicate seeds (default: the scale's seed list)",
    )
    run_parser.add_argument(
        "--backend",
        default="serial",
        choices=BACKEND_NAMES,
        help="execution backend for the sweep's replicates",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --backend processes (default: cpu count)",
    )
    run_parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory for the on-disk result cache (off when omitted)",
    )
    run_parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write one JSON report per experiment into DIR",
    )
    run_parser.add_argument(
        "--bench-out",
        default=None,
        metavar="PATH",
        help=(
            "merge a wall-clock record per experiment into a BENCH JSON "
            "file (per-experiment history accumulates across runs)"
        ),
    )
    return parser


def _normalise_ids(raw_ids: Iterable[str], parser: argparse.ArgumentParser) -> list[str]:
    ids = []
    for raw in raw_ids:
        exp_id = raw.upper()
        if exp_id not in ALL_EXPERIMENTS:
            parser.error(
                f"unknown experiment id {raw!r}; choose from "
                f"{', '.join(sorted(ALL_EXPERIMENTS))}"
            )
        ids.append(exp_id)
    return ids


def _parse_seeds(raw: str | None, parser: argparse.ArgumentParser) -> list[int] | None:
    if raw is None:
        return None
    try:
        seeds = [int(token) for token in raw.split(",") if token.strip()]
    except ValueError:
        parser.error(f"--seeds must be comma-separated integers, got {raw!r}")
    if not seeds:
        parser.error("--seeds must name at least one seed")
    return seeds


def _command_list() -> int:
    from repro.experiments import experiments as exp_module

    width = max(len(exp_id) for exp_id in ALL_EXPERIMENTS)
    for exp_id in sorted(ALL_EXPERIMENTS):
        spec = getattr(exp_module, f"{exp_id}_SPEC")
        print(f"{exp_id:<{width}}  {spec.title}  [{spec.bench_target}]")
    return 0


def _command_run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    ids = _normalise_ids(args.experiments, parser)
    seeds = _parse_seeds(args.seeds, parser)
    if args.workers is not None and args.backend != "processes":
        parser.error("--workers only applies to --backend processes")

    def build_backend():
        try:
            return make_backend(
                args.backend, workers=args.workers, cache_dir=args.cache_dir
            )
        except ValueError as exc:
            parser.error(str(exc))

    build_backend()  # validate the options before running anything
    out_dir = pathlib.Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for exp_id in ids:
        # A fresh backend per experiment keeps the counters it reports
        # (cache hits/misses, vectorized/fallback splits) attributed to
        # this experiment alone; the on-disk cache still persists across
        # experiments because it is keyed by directory, not by instance.
        backend = build_backend()
        started = time.perf_counter()
        report = ALL_EXPERIMENTS[exp_id](
            scale=args.scale, seeds=seeds, backend=backend
        )
        elapsed = time.perf_counter() - started
        print(render_report(report))
        print(f"\n[{exp_id}] {elapsed:.2f}s on backend {backend.describe()}\n")
        if args.bench_out is not None:
            from repro.experiments.bench import record_bench

            record_bench(
                args.bench_out,
                exp_id,
                seconds=elapsed,
                scale=args.scale,
                backend=backend.describe(),
            )
            print(f"[{exp_id}] merged wall-clock record into {args.bench_out}")
        if out_dir is not None:
            from repro.experiments.experiments import _seeds

            payload = report_to_dict(report)
            payload["scale"] = args.scale
            # Record the seeds actually used, including the scale's default
            # seed list, so archived reports are self-describing.
            payload["seeds"] = list(_seeds(args.scale, seeds))
            payload["backend"] = backend.describe()
            payload["elapsed_seconds"] = round(elapsed, 4)
            path = out_dir / f"{exp_id.lower()}.json"
            path.write_text(
                json.dumps(payload, indent=2, sort_keys=False) + "\n",
                encoding="utf-8",
            )
            print(f"[{exp_id}] wrote {path}")
    return 0


def main(argv: Iterable[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "list":
        return _command_list()
    return _command_run(args, parser)


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
