"""repro — reproduction of "Fully Energy-Efficient Randomized Backoff" (PODC 2024).

The package implements the paper's LOW-SENSING BACKOFF algorithm, the shared
multiple-access channel model it runs on, the adaptive/reactive adversaries
it is analysed against, the baseline protocols it is compared with, and the
measurement and experiment machinery that reproduces the paper's claims.

Quickstart::

    from repro import run_simulation, LowSensingBackoff, BatchArrivals

    result = run_simulation(
        LowSensingBackoff(), arrivals=BatchArrivals(200), seed=1
    )
    print(result.throughput, result.energy_statistics().mean_accesses)

See README.md for an architecture overview and EXPERIMENTS.md for the
paper-claim-by-claim reproduction results.
"""

from repro.adversary import (
    AdaptiveContentionJammer,
    AdversarialQueueingArrivals,
    BatchArrivals,
    BernoulliJamming,
    BudgetedRandomJamming,
    BurstJamming,
    CompositeAdversary,
    NoArrivals,
    NoJamming,
    PeriodicBurstArrivals,
    PeriodicJamming,
    PoissonArrivals,
    ReactiveSuccessJammer,
    ReactiveTargetedJammer,
    ScheduledArrivals,
    ScheduledJamming,
    TraceArrivals,
)
from repro.core import (
    LowSensingBackoff,
    LowSensingParameters,
    PotentialTracker,
)
from repro.protocols import (
    BinaryExponentialBackoff,
    FixedProbabilityProtocol,
    FullSensingMultiplicativeWeights,
    PolynomialBackoff,
    SawtoothBackoff,
    SlottedAloha,
    available_protocols,
    get_protocol,
)
from repro.exec import (
    ProcessPoolBackend,
    ResultCacheBackend,
    SerialBackend,
    VectorBackend,
    make_backend,
)
from repro.campaigns import resume_campaign, start_campaign
from repro.queueing import QueueingConstraint
from repro.scenarios.schedule import Phase, Schedule
from repro.sim import (
    SimulationConfig,
    SimulationResult,
    Simulator,
    replicate,
    run_simulation,
)
from repro.store import ResultsStore

__version__ = "1.0.0"

__all__ = [
    "AdaptiveContentionJammer",
    "AdversarialQueueingArrivals",
    "BatchArrivals",
    "BernoulliJamming",
    "BinaryExponentialBackoff",
    "BudgetedRandomJamming",
    "BurstJamming",
    "CompositeAdversary",
    "FixedProbabilityProtocol",
    "FullSensingMultiplicativeWeights",
    "LowSensingBackoff",
    "LowSensingParameters",
    "NoArrivals",
    "NoJamming",
    "PeriodicBurstArrivals",
    "PeriodicJamming",
    "Phase",
    "PoissonArrivals",
    "PolynomialBackoff",
    "PotentialTracker",
    "ProcessPoolBackend",
    "QueueingConstraint",
    "ResultCacheBackend",
    "ResultsStore",
    "Schedule",
    "ScheduledArrivals",
    "ScheduledJamming",
    "SerialBackend",
    "ReactiveSuccessJammer",
    "ReactiveTargetedJammer",
    "SawtoothBackoff",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "SlottedAloha",
    "TraceArrivals",
    "VectorBackend",
    "available_protocols",
    "get_protocol",
    "make_backend",
    "replicate",
    "resume_campaign",
    "run_simulation",
    "start_campaign",
    "__version__",
]
