"""Contention-resolution protocols.

Every protocol — the paper's LOW-SENSING BACKOFF (in :mod:`repro.core`) and
the baselines it is compared against — implements the same two-object API
defined in :mod:`repro.protocols.base`:

* a :class:`~repro.protocols.base.BackoffProtocol` factory describing the
  protocol and its parameters, and
* a per-packet :class:`~repro.protocols.base.PacketState` that decides an
  action each slot and updates itself from channel feedback.

The registry maps protocol names to factories so experiments and benchmarks
can sweep over protocols by name.
"""

from repro.protocols.base import BackoffProtocol, PacketState
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.fixed_probability import FixedProbabilityProtocol, SlottedAloha
from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights
from repro.protocols.polynomial_backoff import PolynomialBackoff
from repro.protocols.registry import (
    available_protocols,
    get_protocol,
    register_protocol,
)
from repro.protocols.sawtooth import SawtoothBackoff

__all__ = [
    "BackoffProtocol",
    "BinaryExponentialBackoff",
    "FixedProbabilityProtocol",
    "FullSensingMultiplicativeWeights",
    "PacketState",
    "PolynomialBackoff",
    "SawtoothBackoff",
    "SlottedAloha",
    "available_protocols",
    "get_protocol",
    "register_protocol",
]
