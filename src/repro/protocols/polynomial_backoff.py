"""Polynomial backoff.

A send-only (oblivious) baseline in which the window grows polynomially in
the number of collisions rather than exponentially: after ``k`` collisions
the window is ``initial_window * (k + 1) ** degree``.  Polynomial backoff is
known to trade longer batch makespan for better stability under stochastic
arrivals than binary exponential backoff [Håstad–Leighton–Rogoff, STOC'87];
it appears in the experiments as a second oblivious point of comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Any

from repro.channel.actions import Action
from repro.channel.feedback import FeedbackReport
from repro.protocols.base import BackoffProtocol, PacketState


class PolynomialPacketState(PacketState):
    """Per-packet state: collision count and the derived window."""

    __slots__ = ("collisions", "_initial_window", "_degree")

    def __init__(self, initial_window: float, degree: float) -> None:
        self.collisions = 0
        self._initial_window = float(initial_window)
        self._degree = float(degree)

    @property
    def window(self) -> float:
        return self._initial_window * (self.collisions + 1) ** self._degree

    def decide(self, rng: Random) -> Action:
        if rng.random() < 1.0 / self.window:
            return Action.send()
        return Action.sleep()

    def observe(self, report: FeedbackReport, rng: Random) -> None:
        if report.sent and not report.succeeded:
            self.collisions += 1

    def sending_probability(self) -> float:
        return 1.0 / self.window

    def describe(self) -> dict[str, Any]:
        return {"collisions": self.collisions, "window": self.window}


@dataclass(frozen=True)
class PolynomialBackoff(BackoffProtocol):
    """Polynomial backoff with configurable degree.

    Parameters
    ----------
    initial_window:
        Window for a fresh packet (before any collision).
    degree:
        Polynomial degree of window growth in the collision count;
        2.0 gives quadratic backoff.
    """

    initial_window: float = 2.0
    degree: float = 2.0

    name: str = "polynomial"
    vectorizable = True

    def __post_init__(self) -> None:
        if self.initial_window < 1.0:
            raise ValueError("initial_window must be at least 1")
        if self.degree <= 0.0:
            raise ValueError("degree must be positive")

    def new_packet_state(self) -> PolynomialPacketState:
        return PolynomialPacketState(
            initial_window=self.initial_window, degree=self.degree
        )

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "initial_window": self.initial_window,
            "degree": self.degree,
        }
