"""Fixed-probability senders (slotted ALOHA).

Two related baselines:

* :class:`FixedProbabilityProtocol` — every packet sends with the same fixed
  probability ``p`` in every slot and never adapts.  With ``p = 1/n`` for a
  batch of ``n`` packets this is the genie-assisted slotted ALOHA whose
  throughput approaches ``1/e`` (the classical benchmark the paper mentions
  when discussing Chang–Jin–Pettie).  Without knowledge of ``n`` the fixed
  probability is badly mismatched, which is exactly why adaptive protocols
  exist; the experiments include it to anchor the throughput axis.

* :class:`SlottedAloha` — a convenience subclass with the textbook default
  ``p = 1/e``-flavoured configuration (``p = 0.1``), included to have a
  deliberately naive contender in comparison tables.

Both are send-only: they never listen, so channel accesses equal sends.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Any

from repro.channel.actions import Action
from repro.channel.feedback import FeedbackReport
from repro.protocols.base import BackoffProtocol, PacketState


class FixedProbabilityPacketState(PacketState):
    """Per-packet state: just the (constant) sending probability."""

    __slots__ = ("probability",)

    def __init__(self, probability: float) -> None:
        self.probability = float(probability)

    def decide(self, rng: Random) -> Action:
        if rng.random() < self.probability:
            return Action.send()
        return Action.sleep()

    def observe(self, report: FeedbackReport, rng: Random) -> None:
        # Oblivious: feedback never changes the sending probability.
        return None

    def sending_probability(self) -> float:
        return self.probability

    def describe(self) -> dict[str, Any]:
        return {"probability": self.probability}


@dataclass(frozen=True)
class FixedProbabilityProtocol(BackoffProtocol):
    """Send with a constant probability ``probability`` in every slot."""

    probability: float = 0.05

    name: str = "fixed-probability"
    vectorizable = True

    def __post_init__(self) -> None:
        if not 0.0 < self.probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")

    def new_packet_state(self) -> FixedProbabilityPacketState:
        return FixedProbabilityPacketState(self.probability)

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "probability": self.probability}

    @classmethod
    def tuned_for(cls, expected_packets: int) -> "FixedProbabilityProtocol":
        """A genie-tuned instance with ``p = 1/expected_packets``.

        This is the idealised slotted-ALOHA configuration used in E1 to show
        the ``1/e`` ceiling that adaptive protocols approach without knowing
        the batch size.
        """
        if expected_packets < 1:
            raise ValueError("expected_packets must be positive")
        return cls(probability=1.0 / expected_packets)


@dataclass(frozen=True)
class SlottedAloha(FixedProbabilityProtocol):
    """Slotted ALOHA with a fixed, deliberately untuned sending probability."""

    probability: float = 0.1
    name: str = "slotted-aloha"
