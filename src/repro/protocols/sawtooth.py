"""Truncated sawtooth backoff (re-backoff), after Bender et al. [26, 27].

"Scaling exponential backoff" (SODA'16 / JACM'19) achieves constant expected
throughput with polylog sending attempts by running repeated *sawtooth*
phases: within a phase the packet's window is repeatedly halved (backing on
aggressively), and across phases the starting window grows.  The variant
implemented here is a faithful, simplified form of that idea under the same
per-packet API used by every other protocol in this library:

* a packet keeps a phase size ``W`` (starting at ``initial_window``) and a
  current window ``w`` initialised to ``W`` at the start of each phase;
* in every slot it sends with probability ``1/w``;
* after every ``monitor_interval`` slots spent at the current window, the
  window halves (the sawtooth's downward ramp); when the window would drop
  below 2, the phase ends, ``W`` doubles, and the next sawtooth begins.

The protocol is send-only (it never listens), so like binary exponential
backoff it is listening-efficient by construction, but unlike BEB it sweeps
its sending probability *upwards* within each phase which is what restores
constant throughput on batches.  It serves as the strongest send-only
baseline in E1/E8.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Any

from repro.channel.actions import Action
from repro.channel.feedback import FeedbackReport
from repro.protocols.base import BackoffProtocol, PacketState


class SawtoothPacketState(PacketState):
    """Per-packet state: phase size, current window, slots at this window."""

    __slots__ = ("phase_window", "window", "_slots_at_window", "_initial_window")

    def __init__(self, initial_window: float) -> None:
        self._initial_window = max(2.0, float(initial_window))
        self.phase_window = self._initial_window
        self.window = self.phase_window
        self._slots_at_window = 0

    def decide(self, rng: Random) -> Action:
        if rng.random() < 1.0 / self.window:
            return Action.send()
        return Action.sleep()

    def observe(self, report: FeedbackReport, rng: Random) -> None:
        if report.succeeded:
            return
        self._slots_at_window += 1
        # Spend roughly `window` slots at each window level before halving,
        # so a full sawtooth of phase size W lasts Θ(W) slots.
        if self._slots_at_window >= self.window:
            self._slots_at_window = 0
            self.window /= 2.0
            if self.window < 2.0:
                self.phase_window *= 2.0
                self.window = self.phase_window

    def sending_probability(self) -> float:
        return 1.0 / self.window

    def describe(self) -> dict[str, Any]:
        return {"phase_window": self.phase_window, "window": self.window}


@dataclass(frozen=True)
class SawtoothBackoff(BackoffProtocol):
    """Truncated sawtooth (re-backoff) protocol.

    Parameters
    ----------
    initial_window:
        Size of the first sawtooth phase (and the window it starts at).
    """

    initial_window: float = 4.0

    name: str = "sawtooth"

    vectorizable = True

    def __post_init__(self) -> None:
        if self.initial_window < 2.0:
            raise ValueError("initial_window must be at least 2")

    def new_packet_state(self) -> SawtoothPacketState:
        return SawtoothPacketState(self.initial_window)

    def describe(self) -> dict[str, Any]:
        return {"name": self.name, "initial_window": self.initial_window}
