"""Name-based protocol registry.

Experiments and benchmarks refer to protocols by short names (for example
``"low-sensing"``, ``"binary-exponential"``) so that sweeps over protocols
are data, not code.  The registry maps each name to a zero-argument factory
returning a protocol configured with its experiment-default parameters;
callers that need non-default parameters construct protocol objects directly.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.protocols.base import BackoffProtocol

_REGISTRY: dict[str, Callable[[], BackoffProtocol]] = {}


def register_protocol(name: str, factory: Callable[[], BackoffProtocol]) -> None:
    """Register ``factory`` under ``name``.

    Re-registering an existing name raises ``ValueError`` to catch accidental
    collisions between modules.
    """
    if name in _REGISTRY:
        raise ValueError(f"protocol name already registered: {name!r}")
    _REGISTRY[name] = factory


def get_protocol(name: str) -> BackoffProtocol:
    """Instantiate the protocol registered under ``name`` with defaults."""
    ensure_defaults_registered()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown protocol {name!r}; known protocols: {known}") from None
    return factory()


def available_protocols() -> Iterable[str]:
    """Sorted names of all registered protocols."""
    ensure_defaults_registered()
    return sorted(_REGISTRY)


def _register_defaults() -> None:
    """Register the default factories for all built-in protocols.

    Imports are local to avoid circular imports at package-import time (the
    core package imports :mod:`repro.protocols.base` as well).
    """
    from repro.core.low_sensing import LowSensingBackoff
    from repro.protocols.binary_exponential import BinaryExponentialBackoff
    from repro.protocols.fixed_probability import FixedProbabilityProtocol, SlottedAloha
    from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights
    from repro.protocols.polynomial_backoff import PolynomialBackoff
    from repro.protocols.sawtooth import SawtoothBackoff

    defaults: dict[str, Callable[[], BackoffProtocol]] = {
        "low-sensing": LowSensingBackoff,
        "binary-exponential": BinaryExponentialBackoff,
        "polynomial": PolynomialBackoff,
        "fixed-probability": FixedProbabilityProtocol,
        "slotted-aloha": SlottedAloha,
        "sawtooth": SawtoothBackoff,
        "full-sensing-mw": FullSensingMultiplicativeWeights,
    }
    for name, factory in defaults.items():
        if name not in _REGISTRY:
            _REGISTRY[name] = factory


def ensure_defaults_registered() -> None:
    """Idempotently register the built-in protocol factories."""
    _register_defaults()
