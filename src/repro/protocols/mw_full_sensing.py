"""Full-sensing multiplicative-weights backoff (Chang–Jin–Pettie style [36]).

The representative "short feedback loop" protocol: a packet listens in
*every* slot and multiplicatively updates its sending probability from the
ternary feedback.  This family achieves Θ(1) throughput under adversarial
arrivals — the property the paper preserves — but at the cost of one channel
access per active slot per packet, which is exactly the energy inefficiency
LOW-SENSING BACKOFF removes.  Experiments E1 and E8 use it as the
constant-throughput / high-energy reference point.

Update rule (a standard multiplicative-weights scheme in the spirit of
[36, 19, 130, 136–138]): with sending probability ``p``,

* silence   -> ``p <- min(p * increase, p_max)``  (the channel is under-used);
* noise     -> ``p <- max(p / decrease, p_min)``  (the channel is over-used);
* success by another packet -> ``p`` unchanged.

The packet sends with probability ``p`` and listens otherwise, so every
active slot costs one channel access.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Any

from repro.channel.actions import Action
from repro.channel.feedback import Feedback, FeedbackReport
from repro.protocols.base import BackoffProtocol, PacketState


class FullSensingPacketState(PacketState):
    """Per-packet state: the current sending probability."""

    __slots__ = ("probability", "_increase", "_decrease", "_p_min", "_p_max")

    def __init__(
        self, initial_probability: float, increase: float, decrease: float,
        p_min: float, p_max: float,
    ) -> None:
        self.probability = float(initial_probability)
        self._increase = float(increase)
        self._decrease = float(decrease)
        self._p_min = float(p_min)
        self._p_max = float(p_max)

    def decide(self, rng: Random) -> Action:
        if rng.random() < self.probability:
            return Action.send()
        return Action.listen()

    def observe(self, report: FeedbackReport, rng: Random) -> None:
        if report.succeeded:
            return
        if report.feedback is Feedback.EMPTY:
            self.probability = min(self.probability * self._increase, self._p_max)
        elif report.feedback is Feedback.NOISE:
            self.probability = max(self.probability / self._decrease, self._p_min)
        # SUCCESS heard from another packet: no change.

    def sending_probability(self) -> float:
        return self.probability

    def describe(self) -> dict[str, Any]:
        return {"probability": self.probability}


@dataclass(frozen=True)
class FullSensingMultiplicativeWeights(BackoffProtocol):
    """Full-sensing multiplicative-weights protocol.

    Parameters
    ----------
    initial_probability:
        Sending probability for a freshly injected packet.
    increase, decrease:
        Multiplicative factors applied on silence / noise respectively.
    p_min, p_max:
        Clamps on the sending probability.
    """

    initial_probability: float = 0.25
    increase: float = 1.1
    decrease: float = 1.1
    p_min: float = 1e-6
    p_max: float = 0.5

    name: str = "full-sensing-mw"

    vectorizable = True

    def __post_init__(self) -> None:
        if not 0.0 < self.initial_probability <= 1.0:
            raise ValueError("initial_probability must be in (0, 1]")
        if self.increase <= 1.0 or self.decrease <= 1.0:
            raise ValueError("increase and decrease factors must exceed 1")
        if not 0.0 < self.p_min <= self.p_max <= 1.0:
            raise ValueError("require 0 < p_min <= p_max <= 1")
        if not self.p_min <= self.initial_probability <= self.p_max:
            raise ValueError("initial_probability must lie within [p_min, p_max]")

    def new_packet_state(self) -> FullSensingPacketState:
        return FullSensingPacketState(
            initial_probability=self.initial_probability,
            increase=self.increase,
            decrease=self.decrease,
            p_min=self.p_min,
            p_max=self.p_max,
        )

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "initial_probability": self.initial_probability,
            "increase": self.increase,
            "decrease": self.decrease,
            "p_min": self.p_min,
            "p_max": self.p_max,
        }
