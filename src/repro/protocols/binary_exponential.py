"""Binary exponential backoff (Metcalfe–Boggs style, probabilistic form).

The classical oblivious baseline the paper contrasts against in Section 1.
A packet maintains a window ``w``; in every slot it sends with probability
``1/w`` and otherwise sleeps.  When a transmission collides (the packet sent
but did not succeed) the window doubles.  The packet never listens, so it
receives no feedback in slots where it stays silent — this is exactly the
"oblivious" property that limits BEB to O(1/ln N) throughput on batch
arrivals [Bender et al., SPAA'05], which experiment E1 reproduces.

Energy accounting: every send is one channel access; there are no listens.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Any

from repro.channel.actions import Action
from repro.channel.feedback import FeedbackReport
from repro.protocols.base import BackoffProtocol, PacketState


class BinaryExponentialPacketState(PacketState):
    """Per-packet state: the current window size."""

    __slots__ = ("window", "_initial_window", "_backoff_factor", "_max_window")

    def __init__(
        self, initial_window: float, backoff_factor: float, max_window: float | None
    ) -> None:
        self.window = float(initial_window)
        self._initial_window = float(initial_window)
        self._backoff_factor = float(backoff_factor)
        self._max_window = max_window

    def decide(self, rng: Random) -> Action:
        if rng.random() < 1.0 / self.window:
            return Action.send()
        return Action.sleep()

    def observe(self, report: FeedbackReport, rng: Random) -> None:
        if report.sent and not report.succeeded:
            self.window *= self._backoff_factor
            if self._max_window is not None:
                self.window = min(self.window, self._max_window)

    def sending_probability(self) -> float:
        return 1.0 / self.window

    def describe(self) -> dict[str, Any]:
        return {"window": self.window}


@dataclass(frozen=True)
class BinaryExponentialBackoff(BackoffProtocol):
    """Binary exponential backoff with configurable base window and factor.

    Parameters
    ----------
    initial_window:
        Window size assigned to a newly injected packet; the classical
        protocol uses 1 or 2.
    backoff_factor:
        Multiplicative window growth applied after each collision; 2 gives
        *binary* exponential backoff.
    max_window:
        Optional cap on the window (a "truncated" BEB as used by Ethernet);
        ``None`` means unbounded.
    """

    initial_window: float = 2.0
    backoff_factor: float = 2.0
    max_window: float | None = None

    name: str = "binary-exponential"
    vectorizable = True

    def __post_init__(self) -> None:
        if self.initial_window < 1.0:
            raise ValueError("initial_window must be at least 1")
        if self.backoff_factor <= 1.0:
            raise ValueError("backoff_factor must exceed 1")
        if self.max_window is not None and self.max_window < self.initial_window:
            raise ValueError("max_window must be at least initial_window")

    def new_packet_state(self) -> BinaryExponentialPacketState:
        return BinaryExponentialPacketState(
            initial_window=self.initial_window,
            backoff_factor=self.backoff_factor,
            max_window=self.max_window,
        )

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "initial_window": self.initial_window,
            "backoff_factor": self.backoff_factor,
            "max_window": self.max_window,
        }
