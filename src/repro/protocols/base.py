"""Protocol interface shared by LOW-SENSING BACKOFF and all baselines.

The interface mirrors the paper's model exactly: a packet is an independent
agent; in every slot it chooses to sleep, listen, or send, using only its own
internal state and private randomness; at the end of the slot it receives a
:class:`~repro.channel.feedback.FeedbackReport` (ternary feedback if it
accessed the channel, nothing if it slept) and may update its state.

Packets are indistinguishable: the state object receives no identity, no
global clock, and no information about other packets.
"""

from __future__ import annotations

import abc
from random import Random
from typing import Any

from repro.channel.actions import Action
from repro.channel.feedback import FeedbackReport


class PacketState(abc.ABC):
    """Per-packet protocol state.

    Subclasses hold whatever state the protocol needs (window size, sending
    probability, collision count, ...) and implement the two phase methods
    called by the engine every slot.
    """

    @abc.abstractmethod
    def decide(self, rng: Random) -> Action:
        """Choose this packet's action for the current slot.

        Parameters
        ----------
        rng:
            The packet's private random source.  Implementations must draw
            all randomness from it so executions are reproducible per seed.
        """

    @abc.abstractmethod
    def observe(self, report: FeedbackReport, rng: Random) -> None:
        """Update state from the end-of-slot feedback.

        ``report.feedback`` is ``None`` when the packet slept.  The engine
        removes a packet that succeeded before the next slot, but ``observe``
        is still called on it so protocols can keep statistics consistent.
        """

    def sending_probability(self) -> float | None:
        """The marginal probability that this packet sends in the next slot.

        Optional; used by contention instrumentation and by adaptive
        adversaries that (per the adaptive-adversary model) can inspect full
        internal state.  Protocols for which the quantity is awkward may
        return ``None``.
        """
        return None

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly snapshot of the state, for traces and debugging."""
        return {}


class BackoffProtocol(abc.ABC):
    """Factory for per-packet protocol state.

    A protocol object is immutable configuration (parameters only); all
    mutable state lives in the :class:`PacketState` objects it creates, one
    per packet.
    """

    #: Short machine-readable protocol name (used by the registry and in
    #: experiment reports).
    name: str = "abstract"

    #: Whether :mod:`repro.sim.vector` ships a batched (numpy) kernel for
    #: this protocol.  Deliberately a plain class attribute (not a dataclass
    #: field) so frozen protocol dataclasses inherit it without it entering
    #: their __init__/__eq__.  The vector engine additionally requires an
    #: exact type match, so subclasses that override behaviour do not
    #: silently inherit a kernel that no longer describes them.
    vectorizable = False

    @abc.abstractmethod
    def new_packet_state(self) -> PacketState:
        """Create fresh state for a newly injected packet."""

    def describe(self) -> dict[str, Any]:
        """A JSON-friendly snapshot of the protocol parameters."""
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{key}={value!r}" for key, value in self.describe().items() if key != "name"
        )
        return f"{type(self).__name__}({params})"
