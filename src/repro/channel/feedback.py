"""Ternary feedback alphabet and slot outcomes.

The paper's ternary feedback model (Section 1.1) lets a listening packet
learn whether a slot was (0) empty, (1) successful, or (2+) noisy.  A jammed
slot is always full and noisy regardless of how many packets transmitted, and
listeners cannot distinguish jamming noise from collision noise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Feedback(enum.Enum):
    """What a listener hears on the channel during a slot.

    ``EMPTY``    — no packet transmitted and the slot was not jammed.
    ``SUCCESS``  — exactly one packet transmitted and the slot was not jammed.
    ``NOISE``    — two or more packets transmitted, or the slot was jammed.
    """

    EMPTY = 0
    SUCCESS = 1
    NOISE = 2

    @property
    def is_busy(self) -> bool:
        """True when the channel carried energy (success or noise)."""
        return self is not Feedback.EMPTY


class SlotOutcome(enum.Enum):
    """Ground-truth classification of a slot, for metrics and traces.

    Unlike :class:`Feedback`, the outcome distinguishes a jammed slot from a
    collision between packets, because throughput accounting with jamming
    (Section 1.1, "Extending to adversarial jamming") treats jammed slots as
    slots the algorithm could not have used.
    """

    EMPTY = "empty"
    SUCCESS = "success"
    COLLISION = "collision"
    JAMMED = "jammed"

    @property
    def feedback(self) -> Feedback:
        """The ternary feedback that listeners hear for this outcome."""
        if self is SlotOutcome.EMPTY:
            return Feedback.EMPTY
        if self is SlotOutcome.SUCCESS:
            return Feedback.SUCCESS
        return Feedback.NOISE

    @property
    def is_wasted(self) -> bool:
        """True for slots the algorithm wasted (silence or collision).

        Jammed slots are *not* wasted in the paper's accounting: throughput
        with jamming is (T_t + J_t) / S_t, i.e. jammed slots count as slots
        the algorithm could not have used.
        """
        return self in (SlotOutcome.EMPTY, SlotOutcome.COLLISION)


@dataclass(frozen=True, slots=True)
class FeedbackReport:
    """Feedback delivered to a single packet at the end of a slot.

    Attributes
    ----------
    feedback:
        The ternary channel feedback, or ``None`` if the packet slept and
        therefore learned nothing about the slot.
    sent:
        Whether this packet transmitted during the slot.
    succeeded:
        Whether this packet's transmission was the unique, unjammed one.
    """

    feedback: Feedback | None
    sent: bool = False
    succeeded: bool = False

    def __post_init__(self) -> None:
        if self.succeeded and not self.sent:
            raise ValueError("a packet cannot succeed without sending")
        if self.sent and self.feedback is None:
            raise ValueError("a sender always learns the state of the slot")


#: Report delivered to a sleeping packet: it learns nothing.
SLEEP_REPORT = FeedbackReport(feedback=None, sent=False, succeeded=False)
