"""Slot resolution for the multiple-access channel.

The channel is memoryless: each slot is resolved independently from the set
of transmitting packets and the adversary's jamming decision.  The rules are
exactly those of Section 1.1 of the paper:

* no senders, not jammed           -> the slot is empty (silence);
* exactly one sender, not jammed   -> that packet succeeds and departs;
* two or more senders              -> collision; every sender stays;
* jammed                           -> the slot is full and noisy no matter
                                      how many packets sent; no one succeeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.channel.feedback import Feedback, SlotOutcome

PacketId = Hashable


@dataclass(frozen=True, slots=True)
class SlotResolution:
    """The resolved state of a single slot.

    Attributes
    ----------
    outcome:
        Ground-truth classification (empty / success / collision / jammed).
    senders:
        Ids of the packets that transmitted in the slot.
    winner:
        Id of the packet that succeeded, or ``None``.
    jammed:
        Whether the adversary jammed the slot.
    """

    outcome: SlotOutcome
    senders: tuple[PacketId, ...] = field(default_factory=tuple)
    winner: PacketId | None = None
    jammed: bool = False

    @property
    def feedback(self) -> Feedback:
        """Ternary feedback heard by any listener during this slot."""
        return self.outcome.feedback

    @property
    def num_senders(self) -> int:
        return len(self.senders)


class MultipleAccessChannel:
    """Resolves slots of a synchronous multiple-access channel.

    The channel itself is stateless; it exists as a class so that alternative
    channel models (e.g. capture effects, multi-channel) can subclass it and
    plug into the same simulation engine.
    """

    def resolve(
        self, senders: Sequence[PacketId], jammed: bool = False
    ) -> SlotResolution:
        """Resolve a slot given the set of senders and the jamming decision.

        Parameters
        ----------
        senders:
            Ids of packets transmitting in the slot (order irrelevant;
            duplicates are rejected).
        jammed:
            Whether the adversary broadcasts noise into the slot.

        Returns
        -------
        SlotResolution
            The outcome, the winner (if any), and bookkeeping fields.
        """
        sender_tuple = tuple(senders)
        if len(set(sender_tuple)) != len(sender_tuple):
            raise ValueError("duplicate sender ids in a single slot")

        if jammed:
            return SlotResolution(
                outcome=SlotOutcome.JAMMED,
                senders=sender_tuple,
                winner=None,
                jammed=True,
            )
        if not sender_tuple:
            return SlotResolution(outcome=SlotOutcome.EMPTY)
        if len(sender_tuple) == 1:
            return SlotResolution(
                outcome=SlotOutcome.SUCCESS,
                senders=sender_tuple,
                winner=sender_tuple[0],
            )
        return SlotResolution(
            outcome=SlotOutcome.COLLISION,
            senders=sender_tuple,
        )
