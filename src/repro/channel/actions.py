"""Per-slot packet actions.

In every slot a packet takes one of three actions (Section 1.1): sleep,
listen, or send.  Per Footnote 2 and Section 3 of the paper, a sending
packet does not need to listen separately to learn the channel state — if it
is still in the system after sending, the slot was noisy — so sending counts
as a single channel access.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ActionKind(enum.Enum):
    """The three per-slot actions of the ternary feedback model."""

    SLEEP = "sleep"
    LISTEN = "listen"
    SEND = "send"


@dataclass(frozen=True, slots=True)
class Action:
    """A packet's decision for a single slot.

    Use the class-level constructors :meth:`sleep`, :meth:`listen`, and
    :meth:`send` rather than instantiating directly.
    """

    kind: ActionKind

    @classmethod
    def sleep(cls) -> "Action":
        """The packet neither sends nor listens; it learns nothing."""
        return _SLEEP

    @classmethod
    def listen(cls) -> "Action":
        """The packet listens and learns the slot's ternary feedback."""
        return _LISTEN

    @classmethod
    def send(cls) -> "Action":
        """The packet transmits (and implicitly learns the slot state)."""
        return _SEND

    @property
    def accesses_channel(self) -> bool:
        """True when the action consumes a channel access (listen or send)."""
        return self.kind is not ActionKind.SLEEP

    @property
    def is_send(self) -> bool:
        return self.kind is ActionKind.SEND

    @property
    def is_listen(self) -> bool:
        return self.kind is ActionKind.LISTEN

    @property
    def is_sleep(self) -> bool:
        return self.kind is ActionKind.SLEEP


_SLEEP = Action(ActionKind.SLEEP)
_LISTEN = Action(ActionKind.LISTEN)
_SEND = Action(ActionKind.SEND)
