"""Execution traces.

A trace records, per slot, everything needed to recompute every metric in the
paper: the outcome, the number of active packets, arrivals, jamming, and the
identities of senders/listeners.  Traces are optional (the engine can run
with metrics only) because storing per-slot records costs memory on long
executions, but they are invaluable in tests and for the potential-function
experiments (E9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Sequence

from repro.channel.feedback import SlotOutcome

PacketId = Hashable


@dataclass(frozen=True, slots=True)
class SlotRecord:
    """Everything that happened in one slot."""

    slot: int
    outcome: SlotOutcome
    jammed: bool
    arrivals: tuple[PacketId, ...]
    senders: tuple[PacketId, ...]
    listeners: tuple[PacketId, ...]
    winner: PacketId | None
    active_before: int
    active_after: int
    contention: float | None = None
    potential: float | None = None

    @property
    def is_active(self) -> bool:
        """True when at least one packet was in the system during the slot."""
        return self.active_before > 0

    @property
    def is_success(self) -> bool:
        return self.outcome is SlotOutcome.SUCCESS


@dataclass
class ExecutionTrace:
    """An append-only sequence of :class:`SlotRecord`.

    The trace exposes convenience accessors used throughout the test-suite
    and the analysis code (counts of successes, jammed slots, active slots,
    and slices over slot ranges).
    """

    records: list[SlotRecord] = field(default_factory=list)

    def append(self, record: SlotRecord) -> None:
        if self.records and record.slot != self.records[-1].slot + 1:
            raise ValueError(
                "trace records must be appended in consecutive slot order: "
                f"got slot {record.slot} after {self.records[-1].slot}"
            )
        if not self.records and record.slot != 0:
            raise ValueError("the first trace record must be slot 0")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[SlotRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> SlotRecord:
        return self.records[index]

    # -- Aggregates -------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return len(self.records)

    @property
    def num_active_slots(self) -> int:
        return sum(1 for r in self.records if r.is_active)

    @property
    def num_successes(self) -> int:
        return sum(1 for r in self.records if r.is_success)

    @property
    def num_jammed(self) -> int:
        return sum(1 for r in self.records if r.jammed)

    @property
    def num_arrivals(self) -> int:
        return sum(len(r.arrivals) for r in self.records)

    @property
    def num_collisions(self) -> int:
        return sum(1 for r in self.records if r.outcome is SlotOutcome.COLLISION)

    @property
    def num_empty(self) -> int:
        return sum(1 for r in self.records if r.outcome is SlotOutcome.EMPTY)

    def window(self, start: int, stop: int) -> Sequence[SlotRecord]:
        """Records for slots in ``[start, stop)``."""
        if start < 0 or stop < start:
            raise ValueError("invalid window bounds")
        return self.records[start:stop]

    def active_slot_indices(self) -> list[int]:
        """Indices of slots with at least one active packet."""
        return [r.slot for r in self.records if r.is_active]

    def outcome_counts(self) -> dict[SlotOutcome, int]:
        counts = {outcome: 0 for outcome in SlotOutcome}
        for record in self.records:
            counts[record.outcome] += 1
        return counts
