"""Shared multiple-access channel substrate.

This subpackage implements the communication model from Section 1.1 of the
paper: time is divided into synchronized slots, each slot is resolved from
the set of transmitting packets plus the adversary's jamming decision, and
listeners receive ternary feedback (empty / success / noisy).

The main entry points are:

* :class:`repro.channel.feedback.Feedback` — the ternary feedback alphabet.
* :class:`repro.channel.actions.Action` — what a packet does in a slot.
* :class:`repro.channel.channel.MultipleAccessChannel` — resolves one slot.
* :class:`repro.channel.trace.ExecutionTrace` — a recorded execution.
"""

from repro.channel.actions import Action, ActionKind
from repro.channel.channel import MultipleAccessChannel, SlotResolution
from repro.channel.events import (
    ArrivalEvent,
    DepartureEvent,
    Event,
    JamEvent,
    SlotEvent,
)
from repro.channel.feedback import Feedback, SlotOutcome
from repro.channel.trace import ExecutionTrace, SlotRecord

__all__ = [
    "Action",
    "ActionKind",
    "ArrivalEvent",
    "DepartureEvent",
    "Event",
    "ExecutionTrace",
    "Feedback",
    "JamEvent",
    "MultipleAccessChannel",
    "SlotEvent",
    "SlotOutcome",
    "SlotRecord",
    "SlotResolution",
]
