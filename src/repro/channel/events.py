"""Structured event records produced by the simulation engine.

Events are lightweight, immutable records; the trace module groups them per
slot.  They are primarily consumed by metrics collectors and tests, and they
double as a human-readable audit log for debugging adversary strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.channel.feedback import SlotOutcome

PacketId = Hashable


@dataclass(frozen=True, slots=True)
class Event:
    """Base class for all events; ``slot`` is the slot index (0-based)."""

    slot: int


@dataclass(frozen=True, slots=True)
class ArrivalEvent(Event):
    """A packet was injected into the system at the start of ``slot``."""

    packet_id: PacketId


@dataclass(frozen=True, slots=True)
class DepartureEvent(Event):
    """A packet succeeded during ``slot`` and departed the system."""

    packet_id: PacketId
    latency: int
    channel_accesses: int


@dataclass(frozen=True, slots=True)
class JamEvent(Event):
    """The adversary jammed ``slot``; ``reactive`` marks reactive jamming."""

    reactive: bool = False


@dataclass(frozen=True, slots=True)
class SlotEvent(Event):
    """Summary of a resolved slot."""

    outcome: SlotOutcome
    num_senders: int
    num_listeners: int
    num_active: int
    jammed: bool
