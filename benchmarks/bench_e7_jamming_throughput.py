"""E7 — Throughput with adversarial jamming (Corollary 1.4 with J > 0).

Regenerates the E7 table: throughput (T+J)/S of LOW-SENSING BACKOFF,
full-sensing MW, and BEB under several jamming strategies (random, burst,
adaptive contention-targeted, reactive success-jamming).  The reproduced
shape: LOW-SENSING BACKOFF's throughput stays bounded away from zero under
every adaptive strategy and all packets are still delivered.
"""

from repro.experiments.experiments import run_e7_jamming_throughput

from conftest import run_experiment_benchmark


def test_e7_jamming_throughput(benchmark):
    report = run_experiment_benchmark(benchmark, run_e7_jamming_throughput)
    lsb_rows = [r for r in report.rows if r["protocol"] == "low-sensing"]
    adaptive_rows = [r for r in lsb_rows if r["jammer"] != "reactive-success"]
    assert all(row["drained"] for row in lsb_rows)
    assert min(row["throughput"] for row in adaptive_rows) > 0.12
    # BEB remains far below LSB even with the channel partially jammed.
    for jammer in {row["jammer"] for row in report.rows}:
        lsb = next(r for r in lsb_rows if r["jammer"] == jammer)
        beb = next(
            r
            for r in report.rows
            if r["protocol"] == "binary-exponential" and r["jammer"] == jammer
        )
        assert lsb["throughput"] > beb["throughput"]
