"""E1 — Throughput on batch arrivals (Corollary 1.4 vs BEB's O(1/ln N)).

Regenerates the E1 table: overall throughput of every protocol over a sweep
of batch sizes N.  The reproduced shape: LOW-SENSING BACKOFF and full-sensing
multiplicative weights stay flat in N, while binary exponential backoff's
throughput decays roughly like 1/ln N.
"""

from repro.experiments.experiments import run_e1_throughput_batch

from conftest import run_experiment_benchmark


def test_e1_throughput_batch(benchmark):
    report = run_experiment_benchmark(benchmark, run_e1_throughput_batch)
    lsb = [r for r in report.rows if r["protocol"] == "low-sensing"]
    beb = [r for r in report.rows if r["protocol"] == "binary-exponential"]
    # Shape assertions: LSB does not collapse with N; BEB declines with N
    # (theory predicts ~1/ln N, i.e. a modest but steady slide over one
    # decade of N) and declines strictly faster than LSB.
    assert min(r["throughput"] for r in lsb) > 0.15
    lsb_ratio = lsb[-1]["throughput"] / lsb[0]["throughput"]
    beb_ratio = beb[-1]["throughput"] / beb[0]["throughput"]
    assert lsb_ratio >= 0.6
    assert beb_ratio < 0.85
    assert beb_ratio < lsb_ratio
    assert min(r["throughput"] for r in lsb) > max(r["throughput"] for r in beb)
