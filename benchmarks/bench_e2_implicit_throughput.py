"""E2 — Implicit throughput under adversarial-queuing arrivals (Theorem 1.3).

Regenerates the E2 table: the minimum of the per-slot implicit throughput
(N_t + J_t)/S_t over long executions with (λ, S) arrivals.  The reproduced
shape: the minimum stays bounded away from zero for every configuration.
"""

from repro.experiments.experiments import run_e2_implicit_throughput

from conftest import run_experiment_benchmark


def test_e2_implicit_throughput(benchmark):
    report = run_experiment_benchmark(benchmark, run_e2_implicit_throughput)
    assert all(row["min_implicit_throughput"] > 0.05 for row in report.rows)
    assert all(row["final_throughput"] > 0.1 for row in report.rows)
