"""Benchmark: the feedback-coupled (reactive) vector kernels.

One perf bar guards the lockstep feedback loop added for the reactive
tier: the E6 reactive core (LOW-SENSING BACKOFF under a
``ReactiveTargetedJammer`` aimed at one victim packet, 24 replications
per jamming budget) through the vector backend vs the serial backend.
Before the reactive kernels existed this entire workload hit the serial
fallback, so the >= 3x bar pins the reactive tier to the fast path.

The measured speedup lands in ``BENCH_reactive.json`` (history accumulates
across runs, mirrored to the repo root) and the asserted bar can be
relaxed on noisy shared runners via ``BENCH_REACTIVE_SPEEDUP_TARGET`` —
the recorded numbers keep the acceptance criteria auditable while the
hard assertion does not flake on contended hardware.
"""

from __future__ import annotations

import os
import time

from conftest import RESULTS_DIR, mirror_path

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import ReactiveTargetedJammer
from repro.core.low_sensing import LowSensingBackoff
from repro.exec import SerialBackend, VectorBackend
from repro.experiments.bench import record_bench
from repro.experiments.plan import SweepPlan, factory

BENCH_REACTIVE_PATH = RESULTS_DIR / "BENCH_reactive.json"

#: Replications per jamming budget (matches the sensing benchmark, so the
#: two tiers' speedups are comparable).
REPLICATIONS = 24

#: The E6 reactive core at default scale: one victim, growing budgets.
BATCH_SIZE = 100
JAM_BUDGETS = (25, 100)

REACTIVE_SPEEDUP_TARGET = float(
    os.environ.get("BENCH_REACTIVE_SPEEDUP_TARGET", "3.0")
)


def build_reactive_plan() -> SweepPlan:
    """The E6 reactive core: one group per jamming budget."""
    seeds = list(range(1, REPLICATIONS + 1))
    plan = SweepPlan()
    for budget in JAM_BUDGETS:
        plan.add_group(
            LowSensingBackoff(),
            factory(
                CompositeAdversary,
                factory(BatchArrivals, BATCH_SIZE),
                factory(ReactiveTargetedJammer, budget=budget, target_index=0),
            ),
            seeds,
            columns={"n": BATCH_SIZE, "jam_budget": budget},
            max_slots=500_000,
        )
    return plan


def test_reactive_vector_speedup(benchmark):
    plan = build_reactive_plan()
    summary = plan.vector_summary()
    assert summary["vectorizable_specs"] == len(plan), (
        "the E6 reactive core must vectorize entirely; fallbacks: "
        f"{summary['fallback_groups']}"
    )

    vector_backend = VectorBackend()
    started = time.perf_counter()
    vector_results = benchmark.pedantic(
        lambda: plan.run(vector_backend), rounds=1, iterations=1, warmup_rounds=0
    )
    vector_seconds = time.perf_counter() - started

    started = time.perf_counter()
    serial_results = plan.run(SerialBackend())
    serial_seconds = time.perf_counter() - started

    # Same workload on both sides; the jamming budgets must be visible in
    # the outcomes on both engines.
    for vector_row, serial_row in zip(
        vector_results.group_rows(), serial_results.group_rows()
    ):
        assert vector_row["arrivals"] == serial_row["arrivals"]
        assert vector_row["drained"] == serial_row["drained"]

    reactive_speedup = serial_seconds / vector_seconds

    record_bench(
        BENCH_REACTIVE_PATH,
        "E6_reactive_core",
        seconds=vector_seconds,
        scale="default",
        backend=vector_backend.describe(),
        mirror=mirror_path(BENCH_REACTIVE_PATH),
        extra={
            "serial_seconds": round(serial_seconds, 4),
            "speedup": round(reactive_speedup, 2),
            "speedup_target": REACTIVE_SPEEDUP_TARGET,
            "replications": REPLICATIONS,
            "batch_size": BATCH_SIZE,
            "jam_budgets": list(JAM_BUDGETS),
            "protocols": ["low-sensing"],
        },
    )
    print(
        f"\nreactive core: vector {vector_seconds:.2f}s vs serial "
        f"{serial_seconds:.2f}s -> {reactive_speedup:.1f}x "
        f"(target >= {REACTIVE_SPEEDUP_TARGET}x) "
        f"[{len(plan)} runs across {len(JAM_BUDGETS)} budgets]"
    )
    assert reactive_speedup >= REACTIVE_SPEEDUP_TARGET, (
        f"reactive-tier vector speedup {reactive_speedup:.2f}x fell below "
        f"the {REACTIVE_SPEEDUP_TARGET}x acceptance bar"
    )
