"""E5 — Channel accesses per packet under adversarial queuing (Theorem 1.7).

Regenerates the E5 table: per-packet channel accesses over a sweep of the
granularity S at a fixed small arrival rate.  The reproduced shape: accesses
stay within a polylog(S) envelope and grow far slower than S.
"""

import math

from repro.experiments.experiments import run_e5_energy_queueing

from conftest import run_experiment_benchmark


def test_e5_energy_queueing(benchmark):
    report = run_experiment_benchmark(benchmark, run_e5_energy_queueing)
    for row in report.rows:
        assert row["mean_accesses"] < 3.0 * math.log(row["granularity"]) ** 3
    accesses = report.column("mean_accesses")
    granularities = report.column("granularity")
    assert accesses[-1] / accesses[0] < 0.6 * granularities[-1] / granularities[0]
