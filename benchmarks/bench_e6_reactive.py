"""E6 — Energy against a reactive adversary (Theorem 1.9).

Regenerates the E6 table: channel accesses of a packet persecuted by a
reactive jammer versus the average over all packets, as the jamming budget J
grows.  The reproduced shape: the victim's accesses grow (roughly linearly)
with J while the average stays near its no-jamming polylog value.
"""

from repro.experiments.experiments import run_e6_reactive

from conftest import run_experiment_benchmark


def _mean(values):
    values = list(values)
    return sum(values) / len(values)


def test_e6_reactive(benchmark):
    report = run_experiment_benchmark(benchmark, run_e6_reactive)
    budgets = sorted({row["jam_budget"] for row in report.rows})
    victim = {
        b: _mean(r["victim_accesses"] for r in report.rows_where(jam_budget=b))
        for b in budgets
    }
    average = {
        b: _mean(r["mean_accesses"] for r in report.rows_where(jam_budget=b))
        for b in budgets
    }
    largest = budgets[-1]
    # The victim pays at least one access per jammed send.
    assert victim[largest] >= largest
    # The average stays within a small factor of the unjammed average.
    assert average[largest] < 4.0 * average[0]
    # Worst case diverges from the average once jamming kicks in.
    assert victim[largest] > 3.0 * average[largest]
