"""Shared infrastructure for the benchmark suite.

Each benchmark regenerates one of the paper-claim experiments (see DESIGN.md
section 3).  The experiment functions are deterministic given their seed
list, so every benchmark runs its experiment exactly once
(``benchmark.pedantic(rounds=1)``): the interesting output is the table of
measurements, not the wall-clock time, although pytest-benchmark still
records the latter.

Every benchmark writes its rendered report to ``benchmarks/results/<id>.txt``
so that EXPERIMENTS.md can be refreshed from an actual run.
"""

from __future__ import annotations

import pathlib
import time

import pytest

from repro.experiments.bench import record_bench
from repro.experiments.reporting import render_report
from repro.experiments.spec import ExperimentReport

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Repo root, where headline BENCH artifacts are mirrored so the perf
#: trajectory is visible where tooling looks for ``BENCH_*.json`` (the
#: canonical history stays under ``benchmarks/results/``).
REPO_ROOT = pathlib.Path(__file__).parent.parent


def mirror_path(path: pathlib.Path) -> pathlib.Path:
    """The repo-root mirror of a ``benchmarks/results/BENCH_*.json`` file."""
    return REPO_ROOT / path.name


#: Wall-clock-per-experiment artifact.  Each benchmark run *merges* its
#: timing into the file (per-experiment history accumulates; see
#: :mod:`repro.experiments.bench`), so the pipeline's speedup trajectory
#: builds up across runs and PRs instead of being overwritten.
BENCH_PIPELINE_PATH = RESULTS_DIR / "BENCH_pipeline.json"

#: Scale used by the benchmark suite.  "default" reproduces the shapes the
#: paper claims at laptop scale; switch to "full" for a slower, larger sweep.
BENCH_SCALE = "default"


def save_report(report: ExperimentReport) -> str:
    """Render ``report``, persist it under ``benchmarks/results/``, return it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    rendered = render_report(report)
    path = RESULTS_DIR / f"{report.spec.exp_id.lower()}.txt"
    path.write_text(rendered + "\n", encoding="utf-8")
    return rendered


def record_wall_clock(exp_id: str, seconds: float, scale: str) -> None:
    """Merge one experiment's wall-clock time into ``BENCH_pipeline.json``."""
    record_bench(
        BENCH_PIPELINE_PATH,
        exp_id,
        seconds=seconds,
        scale=scale,
        mirror=mirror_path(BENCH_PIPELINE_PATH),
    )


def run_experiment_benchmark(benchmark, experiment, scale: str = BENCH_SCALE):
    """Run ``experiment`` once under pytest-benchmark and persist its report."""
    started = time.perf_counter()
    report = benchmark.pedantic(
        lambda: experiment(scale=scale), rounds=1, iterations=1, warmup_rounds=0
    )
    record_wall_clock(report.spec.exp_id, time.perf_counter() - started, scale)
    rendered = save_report(report)
    print()
    print(rendered)
    return report


@pytest.fixture
def bench_scale() -> str:
    return BENCH_SCALE
