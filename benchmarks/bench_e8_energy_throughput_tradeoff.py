"""E8 — Energy vs throughput across protocols (the paper's motivating table).

Regenerates the E8 table: (throughput, accesses/packet, listens, sends) for
every protocol on batch workloads.  The reproduced shape: full-sensing MW
matches LOW-SENSING BACKOFF on throughput but pays a multiple of its channel
accesses; oblivious protocols access rarely but lose constant throughput.
"""

from repro.experiments.experiments import run_e8_energy_throughput_tradeoff

from conftest import run_experiment_benchmark


def test_e8_energy_throughput_tradeoff(benchmark):
    report = run_experiment_benchmark(benchmark, run_e8_energy_throughput_tradeoff)
    for n in sorted({row["n"] for row in report.rows}):
        rows = {row["protocol"]: row for row in report.rows_where(n=n)}
        lsb = rows["low-sensing"]
        mw = rows["full-sensing-mw"]
        beb = rows["binary-exponential"]
        # Full-sensing pays strictly more channel accesses for similar throughput.
        assert mw["mean_accesses"] > 1.5 * lsb["mean_accesses"]
        assert mw["throughput"] < 3.0 * lsb["throughput"]
        # Oblivious BEB is cheap but slow.
        assert beb["mean_accesses"] < lsb["mean_accesses"]
        assert lsb["throughput"] > 2.0 * beb["throughput"]
