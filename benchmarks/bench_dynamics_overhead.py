"""Benchmark: dynamics sampling overhead on the E1 vector core.

Runs the same vectorizable E1 batch-arrival workload as
``bench_vector_backend.py`` twice — once with dynamics off
(``dynamics_window=0``, the default) and once sampling a windowed
trajectory per run — and records the enabled/disabled wall-clock ratio
in ``benchmarks/results/BENCH_dynamics.json``.

The dynamics contract mirrors telemetry's: sampling happens *outside*
the per-slot hot loop (a cheap accumulator on the scalar engine, a
post-loop materialisation on the vector engine), so enabling it must
cost almost nothing and the disabled path must cost exactly nothing.
The asserted bar is a ratio <= 1.05x; on contended CI hardware it can
be relaxed via ``BENCH_DYNAMICS_OVERHEAD_TARGET``, and the measured
ratio is always written to the JSON artifact so the acceptance number
stays auditable.
"""

from __future__ import annotations

import os
import time

from conftest import RESULTS_DIR, mirror_path

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.exec import VectorBackend
from repro.experiments.bench import record_bench
from repro.experiments.plan import SweepPlan, factory
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.fixed_probability import FixedProbabilityProtocol
from repro.protocols.polynomial_backoff import PolynomialBackoff

BENCH_DYNAMICS_PATH = RESULTS_DIR / "BENCH_dynamics.json"

REPLICATIONS = 24

BATCH_SIZES = (100, 200)

#: Sampling interval for the enabled side of the comparison.
DYNAMICS_WINDOW = 500

#: Enabled/disabled wall-clock ratio the off-hot-path contract allows.
OVERHEAD_TARGET = float(os.environ.get("BENCH_DYNAMICS_OVERHEAD_TARGET", "1.05"))

#: Timed rounds per mode; the minimum is reported to shed scheduler noise.
ROUNDS = 3


def build_plan(dynamics_window: int) -> SweepPlan:
    seeds = list(range(1, REPLICATIONS + 1))
    plan = SweepPlan()
    for n in BATCH_SIZES:
        for protocol in (
            BinaryExponentialBackoff(),
            PolynomialBackoff(),
            FixedProbabilityProtocol.tuned_for(n),
        ):
            plan.add_group(
                protocol,
                factory(CompositeAdversary, factory(BatchArrivals, n)),
                seeds,
                columns={"n": n},
                dynamics_window=dynamics_window,
            )
    return plan


def _time_plan(plan: SweepPlan) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        plan.run(VectorBackend())
        best = min(best, time.perf_counter() - started)
    return best


def test_dynamics_overhead(benchmark):
    disabled_plan = build_plan(0)
    enabled_plan = build_plan(DYNAMICS_WINDOW)

    # Warm both paths once so imports/allocator state don't bias either side.
    warm_off = SweepPlan()
    warm_off.add_group(
        BinaryExponentialBackoff(),
        factory(CompositeAdversary, factory(BatchArrivals, 50)),
        [1, 2],
    )
    warm_on = SweepPlan()
    warm_on.add_group(
        BinaryExponentialBackoff(),
        factory(CompositeAdversary, factory(BatchArrivals, 50)),
        [1, 2],
        dynamics_window=DYNAMICS_WINDOW,
    )
    _time_plan(warm_off)
    _time_plan(warm_on)

    disabled_seconds = benchmark.pedantic(
        lambda: _time_plan(disabled_plan),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    enabled_seconds = _time_plan(enabled_plan)

    ratio = enabled_seconds / disabled_seconds
    record_bench(
        BENCH_DYNAMICS_PATH,
        "E1_vector_core_dynamics_overhead",
        seconds=disabled_seconds,
        scale="default",
        backend=VectorBackend().describe(),
        mirror=mirror_path(BENCH_DYNAMICS_PATH),
        extra={
            "enabled_seconds": round(enabled_seconds, 4),
            "disabled_seconds": round(disabled_seconds, 4),
            "overhead_ratio": round(ratio, 4),
            "overhead_target": OVERHEAD_TARGET,
            "dynamics_window": DYNAMICS_WINDOW,
            "rounds": ROUNDS,
            "replications": REPLICATIONS,
            "batch_sizes": list(BATCH_SIZES),
        },
    )
    print(
        f"\ndynamics enabled {enabled_seconds:.3f}s vs disabled "
        f"{disabled_seconds:.3f}s -> {ratio:.3f}x "
        f"(target <= {OVERHEAD_TARGET}x) [{len(disabled_plan)} runs]"
    )
    assert ratio <= OVERHEAD_TARGET, (
        f"dynamics overhead ratio {ratio:.3f}x exceeded the "
        f"{OVERHEAD_TARGET}x acceptance bar"
    )
