"""Benchmark: the vectorized sensing tier and cross-config mega-batching.

Two perf bars guard the two layers added for the sensing-tier work:

* **Sensing kernels** — the E1 LOW-SENSING BACKOFF core (the paper's
  headline protocol on batch arrivals, 24 replications per configuration)
  through the vector backend vs the serial backend.  The acceptance bar is
  a >= 4x speedup: before the sensing kernels existed this workload hit
  the serial fallback, so the bar pins the sensing tier to the fast path.
* **Mega-batching** — a 50-configuration LOW-SENSING sweep (w_min and
  batch size varied per config) through the vector backend with
  mega-batching on vs off.  Mega-batched execution is bit-identical to
  per-group execution (asserted below on the aggregate rows; the exact
  per-packet identity is enforced by tests), so the >= 1.3x bar is pure
  dispatch overhead reclaimed by stacking compatible groups into one
  ragged lockstep launch.

Both measured speedups land in ``BENCH_sensing.json`` (history accumulates
across runs, mirrored to the repo root) and the asserted bars can be
relaxed on noisy shared runners via ``BENCH_SENSING_SPEEDUP_TARGET`` /
``BENCH_MEGA_SPEEDUP_TARGET`` — the recorded numbers keep the acceptance
criteria auditable while the hard assertions do not flake on contended
hardware.
"""

from __future__ import annotations

import os
import time

from conftest import RESULTS_DIR, mirror_path

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.core.low_sensing import LowSensingBackoff
from repro.core.parameters import LowSensingParameters
from repro.exec import SerialBackend, VectorBackend
from repro.experiments.bench import record_bench
from repro.experiments.plan import SweepPlan, factory

BENCH_SENSING_PATH = RESULTS_DIR / "BENCH_sensing.json"

#: Replications per configuration for the sensing-speedup bar (matches the
#: vector-backend benchmark, so the two speedups are comparable).
REPLICATIONS = 24

BATCH_SIZES = (100, 200)

#: Configurations in the mega-batching sweep (the acceptance bar requires
#: at least 50) and replications per configuration.
MEGA_CONFIGS = 50
MEGA_REPLICATIONS = 3

SENSING_SPEEDUP_TARGET = float(os.environ.get("BENCH_SENSING_SPEEDUP_TARGET", "4.0"))
MEGA_SPEEDUP_TARGET = float(os.environ.get("BENCH_MEGA_SPEEDUP_TARGET", "1.3"))


def build_sensing_plan() -> SweepPlan:
    """The E1 LOW-SENSING core: one group per batch size, 24 replications."""
    seeds = list(range(1, REPLICATIONS + 1))
    plan = SweepPlan()
    for n in BATCH_SIZES:
        plan.add_group(
            LowSensingBackoff(),
            factory(CompositeAdversary, factory(BatchArrivals, n)),
            seeds,
            columns={"n": n},
        )
    return plan


def build_mega_plan() -> SweepPlan:
    """A 50-config LOW-SENSING sweep: w_min and batch size vary per config."""
    seeds = list(range(1, MEGA_REPLICATIONS + 1))
    plan = SweepPlan()
    for index in range(MEGA_CONFIGS):
        w_min = 32.0 + 4.0 * index
        n = 60 + 2 * index
        plan.add_group(
            LowSensingBackoff(params=LowSensingParameters(w_min=w_min)),
            factory(CompositeAdversary, factory(BatchArrivals, n)),
            seeds,
            columns={"w_min": w_min, "n": n},
        )
    return plan


def test_sensing_vector_speedup(benchmark):
    plan = build_sensing_plan()
    summary = plan.vector_summary()
    assert summary["vectorizable_specs"] == len(plan), (
        "the LOW-SENSING core must vectorize entirely; fallbacks: "
        f"{summary['fallback_groups']}"
    )

    vector_backend = VectorBackend()
    started = time.perf_counter()
    vector_results = benchmark.pedantic(
        lambda: plan.run(vector_backend), rounds=1, iterations=1, warmup_rounds=0
    )
    vector_seconds = time.perf_counter() - started

    started = time.perf_counter()
    serial_results = plan.run(SerialBackend())
    serial_seconds = time.perf_counter() - started

    # Same workload on both sides (statistically equivalent outcomes), and
    # the sensing tier must account for listens on both engines.
    for vector_row, serial_row in zip(
        vector_results.group_rows(), serial_results.group_rows()
    ):
        assert vector_row["arrivals"] == serial_row["arrivals"]
        assert vector_row["drained"] == serial_row["drained"]
        assert vector_row["mean_listens"] > 0
        assert serial_row["mean_listens"] > 0

    sensing_speedup = serial_seconds / vector_seconds

    # -- Mega-batching: one ragged lockstep launch vs one launch per group.
    mega_plan = build_mega_plan()
    mega_backend = VectorBackend(mega_batch=True)
    started = time.perf_counter()
    mega_results = mega_plan.run(mega_backend)
    mega_seconds = time.perf_counter() - started
    assert mega_backend.mega_batches == 1, (
        "the sweep shares one kernel family and must stack into one launch; "
        f"got {mega_backend.mega_batches}"
    )

    per_group_backend = VectorBackend(mega_batch=False)
    started = time.perf_counter()
    per_group_results = mega_plan.run(per_group_backend)
    per_group_seconds = time.perf_counter() - started
    assert per_group_backend.mega_batches == MEGA_CONFIGS

    # Mega-batching must not change results at all (full bit-identity is
    # enforced by the test suite; the aggregate rows pin it cheaply here).
    assert mega_results.group_rows() == per_group_results.group_rows()

    mega_speedup = per_group_seconds / mega_seconds

    record_bench(
        BENCH_SENSING_PATH,
        "E1_low_sensing_core",
        seconds=vector_seconds,
        scale="default",
        backend=vector_backend.describe(),
        mirror=mirror_path(BENCH_SENSING_PATH),
        extra={
            "serial_seconds": round(serial_seconds, 4),
            "speedup": round(sensing_speedup, 2),
            "speedup_target": SENSING_SPEEDUP_TARGET,
            "replications": REPLICATIONS,
            "batch_sizes": list(BATCH_SIZES),
            "protocols": ["low-sensing"],
        },
    )
    record_bench(
        BENCH_SENSING_PATH,
        "mega_batch_sweep",
        seconds=mega_seconds,
        scale="default",
        backend=mega_backend.describe(),
        mirror=mirror_path(BENCH_SENSING_PATH),
        extra={
            "per_group_seconds": round(per_group_seconds, 4),
            "speedup": round(mega_speedup, 2),
            "speedup_target": MEGA_SPEEDUP_TARGET,
            "configs": MEGA_CONFIGS,
            "replications": MEGA_REPLICATIONS,
            "protocols": ["low-sensing"],
        },
    )
    print(
        f"\nsensing core: vector {vector_seconds:.2f}s vs serial "
        f"{serial_seconds:.2f}s -> {sensing_speedup:.1f}x "
        f"(target >= {SENSING_SPEEDUP_TARGET}x) "
        f"[{len(plan)} runs, {REPLICATIONS} replications/config]"
    )
    print(
        f"mega-batching: 1 launch {mega_seconds:.2f}s vs {MEGA_CONFIGS} "
        f"launches {per_group_seconds:.2f}s -> {mega_speedup:.2f}x "
        f"(target >= {MEGA_SPEEDUP_TARGET}x) "
        f"[{len(mega_plan)} runs across {MEGA_CONFIGS} configs]"
    )
    assert sensing_speedup >= SENSING_SPEEDUP_TARGET, (
        f"sensing-tier vector speedup {sensing_speedup:.2f}x fell below the "
        f"{SENSING_SPEEDUP_TARGET}x acceptance bar"
    )
    assert mega_speedup >= MEGA_SPEEDUP_TARGET, (
        f"mega-batching speedup {mega_speedup:.2f}x fell below the "
        f"{MEGA_SPEEDUP_TARGET}x acceptance bar"
    )
