"""Benchmark: vector vs serial on a piecewise-constant catalog scenario.

Times the vectorizable core of the ``ramp-down-jamming`` catalog scenario
(a 100-packet batch under Bernoulli jamming that decays through
piecewise-constant schedule phases) through the vector and serial backends
at 24 replications per protocol, and merges the measured speedup into
``benchmarks/results/BENCH_scenarios.json`` (history accumulates across
runs — see :mod:`repro.experiments.bench`).

Only the scenario's vectorizable protocol groups are timed — the point of
the benchmark is the schedule-aware kernel path, not the scalar fallback.
As with ``bench_vector_backend.py``, the asserted bar can be relaxed on
noisy shared runners via ``BENCH_SCENARIO_SPEEDUP_TARGET`` while the
measured speedup is always recorded in the artifact.
"""

from __future__ import annotations

import dataclasses
import os
import time

from conftest import RESULTS_DIR, mirror_path

from repro.exec import SerialBackend, VectorBackend
from repro.experiments.bench import record_bench
from repro.scenarios.catalog import get_scenario
from repro.scenarios.runner import build_plan

BENCH_SCENARIOS_PATH = RESULTS_DIR / "BENCH_scenarios.json"

SCENARIO_ID = "ramp-down-jamming"

#: Replications per protocol group; the speedup target is defined at this
#: replication count (vector cost is nearly flat in it, serial is linear).
REPLICATIONS = 24

SPEEDUP_TARGET = float(os.environ.get("BENCH_SCENARIO_SPEEDUP_TARGET", "3.0"))


def build_vectorizable_plan():
    """The scenario's plan restricted to its vectorizable protocol groups.

    The timed plan is built by the same :func:`repro.scenarios.runner.build_plan`
    that ``scenario run`` uses (on a copy of the scenario whose protocol
    list keeps only the vectorizable groups), so the benchmark times
    exactly the workload the CLI would execute.
    """
    scenario = get_scenario(SCENARIO_ID)
    seeds = [scenario.base_seed + index for index in range(REPLICATIONS)]
    probe = build_plan(scenario, scale="default", seeds=[seeds[0]])
    fallback_groups = probe.vector_summary()["fallback_groups"]
    kept = [
        scenario.protocols[group.group_id]
        for group in probe.groups
        if group.group_id not in fallback_groups
    ]
    timed = dataclasses.replace(scenario, protocols=tuple(kept)) if kept else scenario
    plan = build_plan(timed, scale="default", seeds=seeds)
    return scenario, plan, kept


def test_scenario_vector_speedup(benchmark):
    scenario, plan, protocols = build_vectorizable_plan()
    assert protocols, "scenario has no vectorizable protocol group"
    assert plan.vector_summary()["vectorizable_specs"] == len(plan)

    vector_backend = VectorBackend()
    started = time.perf_counter()
    vector_results = benchmark.pedantic(
        lambda: plan.run(vector_backend), rounds=1, iterations=1, warmup_rounds=0
    )
    vector_seconds = time.perf_counter() - started

    started = time.perf_counter()
    serial_results = plan.run(SerialBackend())
    serial_seconds = time.perf_counter() - started

    # Same workload on both sides (statistically equivalent outcomes).
    for vector_row, serial_row in zip(
        vector_results.group_rows(), serial_results.group_rows()
    ):
        assert vector_row["arrivals"] == serial_row["arrivals"]
        assert vector_row["drained"] == serial_row["drained"]

    speedup = serial_seconds / vector_seconds
    record_bench(
        BENCH_SCENARIOS_PATH,
        f"scenario:{scenario.scenario_id}",
        seconds=vector_seconds,
        scale="default",
        backend=vector_backend.describe(),
        mirror=mirror_path(BENCH_SCENARIOS_PATH),
        extra={
            "serial_seconds": round(serial_seconds, 4),
            "speedup": round(speedup, 2),
            "speedup_target": SPEEDUP_TARGET,
            "replications": REPLICATIONS,
            "protocols": protocols,
            "content_hash": scenario.content_hash(),
        },
    )
    print(
        f"\n{scenario.scenario_id}: vector {vector_seconds:.2f}s vs serial "
        f"{serial_seconds:.2f}s -> {speedup:.1f}x (target >= {SPEEDUP_TARGET}x) "
        f"[{len(plan)} runs, {REPLICATIONS} replications/protocol]"
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"scenario vector speedup {speedup:.2f}x fell below the "
        f"{SPEEDUP_TARGET}x acceptance bar"
    )
