"""A1 — Ablation of LOW-SENSING BACKOFF design choices.

Regenerates the A1 table: throughput and energy of LOW-SENSING variants —
different (c, w_min) constants and the decoupled listen/send ablation — on a
fixed batch workload.  The reproduced shape: all variants keep constant-ish
throughput; larger constants trade throughput constants and energy for the
gentler updates the proofs assume; decoupling the coins is behaviourally
minor (the coupling mainly simplifies the paper's energy proof).
"""

from repro.experiments.experiments import run_a1_ablation

from conftest import run_experiment_benchmark


def test_a1_ablation(benchmark):
    report = run_experiment_benchmark(benchmark, run_a1_ablation)
    throughputs = report.column("throughput")
    assert min(throughputs) > 0.05
    assert all(row["drained"] for row in report.rows)
    default_row = next(r for r in report.rows if r["variant"].startswith("default"))
    decoupled_row = next(
        r for r in report.rows if "decoupled" in r["variant"]
    )
    # The ablated coin-coupling changes throughput by at most a small factor.
    assert 0.5 < decoupled_row["throughput"] / default_row["throughput"] < 2.0
