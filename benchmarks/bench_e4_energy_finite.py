"""E4 — Channel accesses per packet on finite streams (Theorem 1.6).

Regenerates the E4 table: mean and maximum per-packet channel accesses for a
sweep of N (with and without a jamming budget proportional to N), plus the
scaling-model fits.  The reproduced shape: accesses grow far slower than
linearly in N and are well described by a polylog fit.
"""

import math

from repro.experiments.experiments import run_e4_energy_finite

from conftest import run_experiment_benchmark


def test_e4_energy_finite(benchmark):
    report = run_experiment_benchmark(benchmark, run_e4_energy_finite)
    unjammed = report.rows_where(jam_budget=0)
    sizes = [row["n"] for row in unjammed]
    accesses = [row["mean_accesses"] for row in unjammed]
    # Polylog envelope and strongly sub-linear growth.
    for n, value in zip(sizes, accesses):
        assert value < 3.0 * math.log(n) ** 3
    growth = accesses[-1] / accesses[0]
    size_growth = sizes[-1] / sizes[0]
    assert growth < 0.6 * size_growth
