"""Benchmark: VectorBackend vs SerialBackend on the E1 batch replication set.

Times the vectorizable core of E1's batch-arrival grid — the oblivious
baseline protocols (binary exponential, polynomial, genie-tuned fixed
probability) replicated over seeds — through both backends at the same
replication count, and records the measured speedup in
``benchmarks/results/BENCH_vector.json`` (history accumulates across runs,
so the vector engine's perf trajectory is tracked across PRs).

The acceptance bar for the vector subsystem is a >= 5x speedup at this
replication count; the benchmark asserts it so regressions fail loudly.
On noisy shared machines (CI runners) the asserted bar can be relaxed via
``BENCH_VECTOR_SPEEDUP_TARGET`` — the *measured* speedup is always
recorded in the JSON artifact, so the acceptance number stays auditable
while the hard assertion does not flake on contended hardware.
"""

from __future__ import annotations

import os
import time

from conftest import RESULTS_DIR, mirror_path

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.exec import SerialBackend, VectorBackend
from repro.experiments.bench import record_bench
from repro.experiments.plan import SweepPlan, factory
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.fixed_probability import FixedProbabilityProtocol
from repro.protocols.polynomial_backoff import PolynomialBackoff

BENCH_VECTOR_PATH = RESULTS_DIR / "BENCH_vector.json"

#: Replications per configuration; the speedup target is defined at this
#: replication count (vector cost is nearly flat in it, serial is linear).
REPLICATIONS = 24

BATCH_SIZES = (100, 200)

SPEEDUP_TARGET = float(os.environ.get("BENCH_VECTOR_SPEEDUP_TARGET", "5.0"))


def build_plan() -> SweepPlan:
    seeds = list(range(1, REPLICATIONS + 1))
    plan = SweepPlan()
    for n in BATCH_SIZES:
        for protocol in (
            BinaryExponentialBackoff(),
            PolynomialBackoff(),
            FixedProbabilityProtocol.tuned_for(n),
        ):
            plan.add_group(
                protocol,
                factory(CompositeAdversary, factory(BatchArrivals, n)),
                seeds,
                columns={"n": n},
            )
    return plan


def test_vector_backend_speedup(benchmark):
    plan = build_plan()
    assert plan.vector_summary()["vectorizable_specs"] == len(plan)

    vector_backend = VectorBackend()
    started = time.perf_counter()
    vector_results = benchmark.pedantic(
        lambda: plan.run(vector_backend), rounds=1, iterations=1, warmup_rounds=0
    )
    vector_seconds = time.perf_counter() - started

    started = time.perf_counter()
    serial_results = plan.run(SerialBackend())
    serial_seconds = time.perf_counter() - started

    # Same workload on both sides (statistically equivalent outcomes).
    for vector_row, serial_row in zip(
        vector_results.group_rows(), serial_results.group_rows()
    ):
        assert vector_row["arrivals"] == serial_row["arrivals"]
        assert vector_row["drained"] == serial_row["drained"]

    speedup = serial_seconds / vector_seconds
    record_bench(
        BENCH_VECTOR_PATH,
        "E1_vector_core",
        seconds=vector_seconds,
        scale="default",
        backend=vector_backend.describe(),
        mirror=mirror_path(BENCH_VECTOR_PATH),
        extra={
            "serial_seconds": round(serial_seconds, 4),
            "speedup": round(speedup, 2),
            "speedup_target": SPEEDUP_TARGET,
            "replications": REPLICATIONS,
            "batch_sizes": list(BATCH_SIZES),
            "protocols": ["binary-exponential", "polynomial", "fixed-probability"],
        },
    )
    print(
        f"\nvector {vector_seconds:.2f}s vs serial {serial_seconds:.2f}s "
        f"-> {speedup:.1f}x (target >= {SPEEDUP_TARGET}x) "
        f"[{len(plan)} runs, {REPLICATIONS} replications/config]"
    )
    assert speedup >= SPEEDUP_TARGET, (
        f"vector backend speedup {speedup:.2f}x fell below the "
        f"{SPEEDUP_TARGET}x acceptance bar"
    )
