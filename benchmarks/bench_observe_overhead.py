"""Benchmark: the full observe stack must cost <= 1.05x on the E1 core.

Runs the same vectorizable E1 batch-arrival workload as
``bench_telemetry_overhead.py`` twice — once bare (NULL session) and once
with everything ``repro.observe`` adds on top of telemetry active at the
same time: a :class:`RegistrySink` folding every event into live metrics,
a JSONL sink, and a :class:`ResourceSampler` polling ``/proc`` on a tight
interval.  The enabled/disabled wall-clock ratio lands in
``benchmarks/results/BENCH_observe.json``.

The aggregation layer inherits telemetry's contract: it only ever *reads*
monotonic clocks, ``/proc``, and already-emitted events, so stacking it on
must stay inside the same <= 1.05x bar the base instrumentation meets.
On contended CI hardware the bar can be relaxed via
``BENCH_OBSERVE_OVERHEAD_TARGET``; the measured ratio is always written to
the JSON artifact so the acceptance number stays auditable.
"""

from __future__ import annotations

import os
import time

from conftest import RESULTS_DIR, mirror_path

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.exec import VectorBackend
from repro.experiments.bench import record_bench
from repro.experiments.plan import SweepPlan, factory
from repro.observe import RegistrySink, ResourceSampler
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.fixed_probability import FixedProbabilityProtocol
from repro.protocols.polynomial_backoff import PolynomialBackoff
from repro.telemetry import JsonlSink, TelemetrySession, activated

BENCH_OBSERVE_PATH = RESULTS_DIR / "BENCH_observe.json"

REPLICATIONS = 24

BATCH_SIZES = (100, 200)

#: Enabled/disabled wall-clock ratio the aggregation layer may cost.
OVERHEAD_TARGET = float(os.environ.get("BENCH_OBSERVE_OVERHEAD_TARGET", "1.05"))

#: Resource-sampler poll interval; deliberately much tighter than the
#: 0.25s default so the bar covers a worst-case sampling cadence.
SAMPLE_INTERVAL = 0.05

#: Timed rounds per mode; the minimum is reported to shed scheduler noise.
ROUNDS = 3


def build_plan() -> SweepPlan:
    seeds = list(range(1, REPLICATIONS + 1))
    plan = SweepPlan()
    for n in BATCH_SIZES:
        for protocol in (
            BinaryExponentialBackoff(),
            PolynomialBackoff(),
            FixedProbabilityProtocol.tuned_for(n),
        ):
            plan.add_group(
                protocol,
                factory(CompositeAdversary, factory(BatchArrivals, n)),
                seeds,
                columns={"n": n},
            )
    return plan


def _time_disabled(plan: SweepPlan) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        with activated(None):
            plan.run(VectorBackend())
        best = min(best, time.perf_counter() - started)
    return best


def _time_observed(plan: SweepPlan, jsonl_path) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        session = TelemetrySession([RegistrySink(), JsonlSink(jsonl_path)])
        started = time.perf_counter()
        with activated(session):
            with ResourceSampler(session, interval=SAMPLE_INTERVAL):
                plan.run(VectorBackend())
        best = min(best, time.perf_counter() - started)
    return best


def test_observe_overhead(benchmark, tmp_path):
    plan = build_plan()
    jsonl = tmp_path / "bench-observe.jsonl"

    # Warm both paths once so imports/allocator state don't bias either side.
    warm = SweepPlan()
    warm.add_group(
        BinaryExponentialBackoff(),
        factory(CompositeAdversary, factory(BatchArrivals, 50)),
        [1, 2],
    )
    _time_disabled(warm)
    _time_observed(warm, tmp_path / "warm.jsonl")

    disabled_seconds = benchmark.pedantic(
        lambda: _time_disabled(plan),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    enabled_seconds = _time_observed(plan, jsonl)

    ratio = enabled_seconds / disabled_seconds
    record_bench(
        BENCH_OBSERVE_PATH,
        "E1_vector_core_observe_overhead",
        seconds=disabled_seconds,
        scale="default",
        backend=VectorBackend().describe(),
        mirror=mirror_path(BENCH_OBSERVE_PATH),
        extra={
            "enabled_seconds": round(enabled_seconds, 4),
            "disabled_seconds": round(disabled_seconds, 4),
            "overhead_ratio": round(ratio, 4),
            "overhead_target": OVERHEAD_TARGET,
            "sample_interval": SAMPLE_INTERVAL,
            "rounds": ROUNDS,
            "replications": REPLICATIONS,
            "batch_sizes": list(BATCH_SIZES),
        },
    )
    print(
        f"\nobserve stack enabled {enabled_seconds:.3f}s vs disabled "
        f"{disabled_seconds:.3f}s -> {ratio:.3f}x "
        f"(target <= {OVERHEAD_TARGET}x) [{len(plan)} runs]"
    )
    assert ratio <= OVERHEAD_TARGET, (
        f"observe overhead ratio {ratio:.3f}x exceeded the "
        f"{OVERHEAD_TARGET}x acceptance bar"
    )
