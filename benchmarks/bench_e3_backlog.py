"""E3 — Backlog under adversarial-queuing arrivals (Corollary 1.5).

Regenerates the E3 table: maximum backlog relative to the granularity S for
a sweep of S.  The reproduced shape: max backlog grows linearly in S (i.e.
max_backlog / S is a roughly constant, small number).
"""

from repro.experiments.experiments import run_e3_backlog

from conftest import run_experiment_benchmark


def test_e3_backlog(benchmark):
    report = run_experiment_benchmark(benchmark, run_e3_backlog)
    ratios = report.column("max_backlog_over_s")
    assert max(ratios) < 2.0
    # The normalised backlog should not blow up as S grows.
    assert ratios[-1] < 3.0 * ratios[0]
