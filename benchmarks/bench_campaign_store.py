"""Benchmark: resume overhead of a vector-backend campaign.

Runs the ``ramp-down-jamming`` catalog scenario as a campaign on the vector
backend two ways — uninterrupted (the reference), then freshly interrupted
after its first checkpoint unit and resumed — and merges the wall clocks
plus the **resume-overhead ratio** into
``benchmarks/results/BENCH_campaigns.json`` (history accumulates across
runs — see :mod:`repro.experiments.bench`).

The checkpoint layer's promise is that resumption costs bookkeeping, not
recomputation, so two things are asserted:

* **no recomputation** — exactly: the runs executed across the
  interrupted leg plus the resumed leg must sum to the campaign's total
  (everything committed before the interruption is skipped, nothing is
  simulated twice);
* **bookkeeping stays under the bar** — the resume-overhead ratio is the
  two legs' wall clock divided by the same legs' store-recorded unit
  execution time, i.e. ``1 + bookkeeping/work``.  Both terms come from
  the *same* execution epoch, so CPU-speed drift between separate
  invocations (±10–15% on shared machines, far larger than the ~1%
  overhead being measured) cancels instead of deciding the verdict.
  The bar is ``<= 1.05x``, relaxable on pathological runners via
  ``BENCH_CAMPAIGN_RESUME_OVERHEAD``.

The raw wall-clock ratio against the measured uninterrupted reference is
also recorded in the artifact (``wall_ratio``) for the perf trajectory —
it carries the cross-invocation noise, which is why it is recorded, not
asserted.  The reference leg also anchors the subsystem's core contract:
the resumed store must fingerprint identically to the uninterrupted one.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import RESULTS_DIR, mirror_path

from repro.campaigns import CampaignInterrupted, resume_campaign, start_campaign
from repro.experiments.bench import record_bench
from repro.scenarios.catalog import get_scenario
from repro.store import ResultsStore

BENCH_CAMPAIGNS_PATH = RESULTS_DIR / "BENCH_campaigns.json"

SCENARIO_ID = "ramp-down-jamming"

#: Replications per protocol group; large enough that simulation time
#: dominates the store's bookkeeping by a wide margin.
REPLICATIONS = 24

OVERHEAD_TARGET = float(os.environ.get("BENCH_CAMPAIGN_RESUME_OVERHEAD", "1.05"))


def _run_campaign(root, campaign_id, *, scale="default", fail_after_units=None):
    scenario = get_scenario(SCENARIO_ID)
    seeds = [scenario.base_seed + index for index in range(REPLICATIONS)]
    with ResultsStore(root) as store:
        started = time.perf_counter()
        outcome = None
        try:
            outcome = start_campaign(
                store,
                scenario,
                scale=scale,
                seeds=seeds,
                backend_name="vector",
                campaign_id=campaign_id,
                fail_after_units=fail_after_units,
            )
        except CampaignInterrupted:
            pass
        elapsed = time.perf_counter() - started
        fingerprint = store.fingerprint() if outcome is not None else None
        return fingerprint, elapsed, outcome


def test_campaign_resume_overhead(benchmark, tmp_path):
    scenario = get_scenario(SCENARIO_ID)

    # Warm up numpy / the vector kernels outside the timed legs.
    _run_campaign(tmp_path / "warmup", "bench", scale="smoke")

    reference_fingerprint, uninterrupted_seconds, reference = benchmark.pedantic(
        lambda: _run_campaign(tmp_path / "reference", "bench"),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert reference_fingerprint is not None

    _, interrupted_seconds, _ = _run_campaign(
        tmp_path / "resumed", "bench", fail_after_units=1
    )
    started = time.perf_counter()
    with ResultsStore(tmp_path / "resumed") as store:
        interrupted_row = store.get_campaign("bench")
        committed_runs = len(store.campaign_run_rows("bench"))
        outcome = resume_campaign(store, "bench")
        resume_seconds = time.perf_counter() - started
        assert outcome.status == "complete"
        assert outcome.skipped_runs == committed_runs, (
            "resume re-ran work that was already committed"
        )
        assert outcome.executed_runs == outcome.total_runs - committed_runs, (
            "interrupted + resumed legs did not partition the campaign exactly"
        )
        resumed_fingerprint = store.fingerprint()
        # Cumulative unit execution time across BOTH legs, recorded by the
        # store as each unit committed — same epoch as the wall clocks.
        two_leg_exec = store.get_campaign("bench")["elapsed_seconds"]

    assert resumed_fingerprint == reference_fingerprint, (
        "resumed store diverged from the uninterrupted reference"
    )
    assert interrupted_row["status"] == "running"

    two_leg_wall = interrupted_seconds + resume_seconds
    ratio = two_leg_wall / two_leg_exec
    wall_ratio = two_leg_wall / uninterrupted_seconds
    record_bench(
        BENCH_CAMPAIGNS_PATH,
        f"campaign:{SCENARIO_ID}",
        seconds=uninterrupted_seconds,
        scale="default",
        backend={"backend": "vector"},
        mirror=mirror_path(BENCH_CAMPAIGNS_PATH),
        extra={
            "resume_overhead_ratio": round(ratio, 4),
            "wall_ratio": round(wall_ratio, 4),
            "interrupted_seconds": round(interrupted_seconds, 4),
            "resume_seconds": round(resume_seconds, 4),
            "two_leg_exec_seconds": round(two_leg_exec, 4),
            "overhead_target": OVERHEAD_TARGET,
            "replications": REPLICATIONS,
            "total_runs": len(scenario.protocols) * REPLICATIONS,
            "content_hash": scenario.content_hash(),
        },
    )
    print(
        f"\n{SCENARIO_ID}: uninterrupted {uninterrupted_seconds:.2f}s; "
        f"interrupted {interrupted_seconds:.2f}s + resume {resume_seconds:.2f}s "
        f"over {two_leg_exec:.2f}s of unit execution -> overhead {ratio:.3f}x "
        f"(target <= {OVERHEAD_TARGET}x; wall ratio {wall_ratio:.3f}x recorded) "
        f"[{len(scenario.protocols)} protocols x {REPLICATIONS} replications]"
    )
    assert ratio <= OVERHEAD_TARGET, (
        f"campaign resume overhead {ratio:.3f}x exceeded the "
        f"{OVERHEAD_TARGET}x acceptance bar"
    )


if __name__ == "__main__":  # pragma: no cover - direct invocation helper
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
