"""E9 — Potential-function drift (Theorem 5.18 / Corollary 5.22).

Regenerates the E9 table: for batch and bursty workloads with potential
instrumentation enabled, the fraction of analysis intervals over which Φ
decreases and the maximum potential relative to N+J.  The reproduced shape:
Φ trends downhill over intervals and its maximum stays within a constant
multiple of the number of arrivals plus jammed slots.
"""

from repro.experiments.experiments import run_e9_potential_drift

from conftest import run_experiment_benchmark


def test_e9_potential_drift(benchmark):
    report = run_experiment_benchmark(benchmark, run_e9_potential_drift)
    assert all(row["fraction_negative_drift"] > 0.3 for row in report.rows)
    assert all(row["max_potential_over_n_plus_j"] < 20.0 for row in report.rows)
    assert all(row["drained"] for row in report.rows)
