"""Benchmark: telemetry overhead on the E1 vector core must be near-zero.

Runs the same vectorizable E1 batch-arrival workload as
``bench_vector_backend.py`` twice — once with telemetry disabled (the
default NULL session) and once with an active :class:`TelemetrySession`
feeding a JSONL sink — and records the enabled/disabled wall-clock ratio
in ``benchmarks/results/BENCH_telemetry.json``.

The observability contract is that instrumentation samples *outside* the
per-slot hot loop, so enabling it must cost almost nothing: the asserted
bar is a ratio <= 1.05x.  On contended CI hardware the bar can be relaxed
via ``BENCH_TELEMETRY_OVERHEAD_TARGET``; the measured ratio is always
written to the JSON artifact so the acceptance number stays auditable.
"""

from __future__ import annotations

import os
import time

from conftest import RESULTS_DIR, mirror_path

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.exec import VectorBackend
from repro.experiments.bench import record_bench
from repro.experiments.plan import SweepPlan, factory
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.fixed_probability import FixedProbabilityProtocol
from repro.protocols.polynomial_backoff import PolynomialBackoff
from repro.telemetry import JsonlSink, TelemetrySession, activated

BENCH_TELEMETRY_PATH = RESULTS_DIR / "BENCH_telemetry.json"

REPLICATIONS = 24

BATCH_SIZES = (100, 200)

#: Enabled/disabled wall-clock ratio the disabled-path contract allows.
OVERHEAD_TARGET = float(os.environ.get("BENCH_TELEMETRY_OVERHEAD_TARGET", "1.05"))

#: Timed rounds per mode; the minimum is reported to shed scheduler noise.
ROUNDS = 3


def build_plan() -> SweepPlan:
    seeds = list(range(1, REPLICATIONS + 1))
    plan = SweepPlan()
    for n in BATCH_SIZES:
        for protocol in (
            BinaryExponentialBackoff(),
            PolynomialBackoff(),
            FixedProbabilityProtocol.tuned_for(n),
        ):
            plan.add_group(
                protocol,
                factory(CompositeAdversary, factory(BatchArrivals, n)),
                seeds,
                columns={"n": n},
            )
    return plan


def _time_plan(plan: SweepPlan, session_factory) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        started = time.perf_counter()
        with activated(session_factory()):
            plan.run(VectorBackend())
        best = min(best, time.perf_counter() - started)
    return best


def test_telemetry_overhead(benchmark, tmp_path):
    plan = build_plan()
    jsonl = tmp_path / "bench-telemetry.jsonl"

    # Warm both paths once so imports/allocator state don't bias either side.
    warm = SweepPlan()
    warm.add_group(
        BinaryExponentialBackoff(),
        factory(CompositeAdversary, factory(BatchArrivals, 50)),
        [1, 2],
    )
    _time_plan(warm, lambda: None)
    _time_plan(warm, lambda: TelemetrySession([JsonlSink(jsonl)]))

    disabled_seconds = benchmark.pedantic(
        lambda: _time_plan(plan, lambda: None),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    enabled_seconds = _time_plan(
        plan, lambda: TelemetrySession([JsonlSink(jsonl)])
    )

    ratio = enabled_seconds / disabled_seconds
    record_bench(
        BENCH_TELEMETRY_PATH,
        "E1_vector_core_telemetry_overhead",
        seconds=disabled_seconds,
        scale="default",
        backend=VectorBackend().describe(),
        mirror=mirror_path(BENCH_TELEMETRY_PATH),
        extra={
            "enabled_seconds": round(enabled_seconds, 4),
            "disabled_seconds": round(disabled_seconds, 4),
            "overhead_ratio": round(ratio, 4),
            "overhead_target": OVERHEAD_TARGET,
            "rounds": ROUNDS,
            "replications": REPLICATIONS,
            "batch_sizes": list(BATCH_SIZES),
        },
    )
    print(
        f"\ntelemetry enabled {enabled_seconds:.3f}s vs disabled "
        f"{disabled_seconds:.3f}s -> {ratio:.3f}x "
        f"(target <= {OVERHEAD_TARGET}x) [{len(plan)} runs]"
    )
    assert ratio <= OVERHEAD_TARGET, (
        f"telemetry overhead ratio {ratio:.3f}x exceeded the "
        f"{OVERHEAD_TARGET}x acceptance bar"
    )
