"""Declarative sweeps on parallel backends.

Builds one E1-style throughput sweep as a :class:`SweepPlan`, runs it on the
serial backend and on a process pool, shows the tables are identical, and
demonstrates the on-disk result cache making the second execution free.

Run with::

    PYTHONPATH=src python examples/parallel_sweep.py
"""

from __future__ import annotations

import tempfile
import time

from repro import (
    BatchArrivals,
    CompositeAdversary,
    LowSensingBackoff,
    ProcessPoolBackend,
    ResultCacheBackend,
    SerialBackend,
)
from repro.experiments import SweepPlan, factory
from repro.protocols.binary_exponential import BinaryExponentialBackoff


def build_plan() -> SweepPlan:
    plan = SweepPlan()
    for n in (50, 100, 200):
        for protocol in (LowSensingBackoff(), BinaryExponentialBackoff()):
            plan.add_group(
                protocol,
                factory(CompositeAdversary, factory(BatchArrivals, n)),
                seeds=[11, 23, 47],
                columns={"n": n},
            )
    return plan


def main() -> None:
    print(f"plan: {len(build_plan())} runs "
          f"({len(build_plan().groups)} table rows x 3 seed replicates)\n")

    started = time.perf_counter()
    serial_rows = build_plan().run(SerialBackend()).group_rows()
    serial_time = time.perf_counter() - started

    started = time.perf_counter()
    parallel_rows = build_plan().run(ProcessPoolBackend(workers=4)).group_rows()
    parallel_time = time.perf_counter() - started

    assert parallel_rows == serial_rows, "backends must agree bit-for-bit"
    print(f"serial    : {serial_time:6.2f}s")
    print(f"processes : {parallel_time:6.2f}s (identical rows)")

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = ResultCacheBackend(cache_dir, inner=SerialBackend())
        build_plan().run(cache)
        started = time.perf_counter()
        cached_rows = build_plan().run(cache).group_rows()
        cached_time = time.perf_counter() - started
        assert cached_rows == serial_rows
        print(f"cache hit : {cached_time:6.2f}s ({cache.hits} hits)")

    print("\nthroughput by protocol and batch size:")
    for row in serial_rows:
        print(f"  {row['protocol']:<20} n={row['n']:<4} "
              f"throughput={row['throughput']:.3f}")


if __name__ == "__main__":
    main()
