"""Quickstart: run LOW-SENSING BACKOFF on a batch and inspect the metrics.

This is the smallest end-to-end use of the library:

1. pick a protocol (the paper's LOW-SENSING BACKOFF),
2. pick a workload (a batch of 200 packets arriving at slot 0),
3. run the simulation,
4. read off the paper's metrics: throughput, implicit throughput, and
   per-packet channel accesses (the energy measure),
5. compare against binary exponential backoff on the same workload.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    BatchArrivals,
    BinaryExponentialBackoff,
    LowSensingBackoff,
    run_simulation,
)
from repro.analysis.tables import format_table


def describe_run(label: str, result) -> list[object]:
    """One table row summarising an execution."""
    energy = result.energy_statistics()
    latency = result.latency_statistics()
    return [
        label,
        result.num_arrivals,
        result.num_active_slots,
        round(result.throughput, 3),
        round(energy.mean_accesses, 1),
        energy.max_accesses,
        round(energy.mean_sends, 1),
        round(energy.mean_listens, 1),
        latency.makespan,
    ]


def main() -> None:
    batch_size = 200
    seed = 2024

    low_sensing = run_simulation(
        LowSensingBackoff(), arrivals=BatchArrivals(batch_size), seed=seed
    )
    beb = run_simulation(
        BinaryExponentialBackoff(), arrivals=BatchArrivals(batch_size), seed=seed
    )

    headers = [
        "protocol",
        "packets",
        "active slots",
        "throughput",
        "mean accesses",
        "max accesses",
        "mean sends",
        "mean listens",
        "makespan",
    ]
    rows = [
        describe_run("low-sensing (paper)", low_sensing),
        describe_run("binary exponential", beb),
    ]
    print(f"Batch of {batch_size} packets, seed {seed}")
    print()
    print(format_table(headers, rows))
    print()
    print(
        "LOW-SENSING BACKOFF delivers the batch in a constant number of slots "
        "per packet (constant throughput) while each packet touches the channel "
        "only a polylogarithmic number of times; binary exponential backoff "
        "sends less but needs far more slots, i.e. its throughput is lower and "
        "keeps falling as the batch grows."
    )


if __name__ == "__main__":
    main()
