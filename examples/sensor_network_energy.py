"""Scenario: battery-budgeted sensor network under continuous traffic.

Energy is the paper's central resource: every slot in which a radio listens
or transmits costs battery, so a protocol that needs the radio on in every
slot drains a sensor node orders of magnitude faster than one that sleeps
almost always.  This example models a long-running sensor deployment with
adversarial-queuing arrivals (rate λ, granularity S: bursts of readings are
admitted as long as every S-slot window carries at most λ·S packets) and
translates each protocol's channel-access counts into a battery lifetime
estimate using a simple radio energy model.

The radio model is deliberately crude (a single per-access energy cost, an
idle cost of zero) because the comparison the paper makes is about the
*number* of accesses; refining the joule numbers would not change who wins.

Run with::

    python examples/sensor_network_energy.py
"""

from __future__ import annotations

from repro import (
    AdversarialQueueingArrivals,
    BinaryExponentialBackoff,
    FullSensingMultiplicativeWeights,
    LowSensingBackoff,
    run_simulation,
)
from repro.analysis.tables import format_table

#: Energy cost of one channel access (send or listen), in microjoules.  The
#: value is representative of a low-power 802.15.4-class radio; only ratios
#: matter for the comparison.
MICROJOULES_PER_ACCESS = 60.0

#: Battery budget each node dedicates to contention resolution, in joules.
BATTERY_BUDGET_JOULES = 2.0


def packets_per_battery(mean_accesses: float) -> float:
    """How many packets a node can deliver before exhausting its budget."""
    joules_per_packet = mean_accesses * MICROJOULES_PER_ACCESS * 1e-6
    return BATTERY_BUDGET_JOULES / joules_per_packet


def main() -> None:
    granularity = 300
    rate = 0.2
    horizon = granularity * 40
    protocols = [
        ("low-sensing (paper)", LowSensingBackoff()),
        ("full-sensing MW", FullSensingMultiplicativeWeights()),
        ("binary exponential", BinaryExponentialBackoff()),
    ]
    headers = [
        "protocol",
        "delivered",
        "throughput",
        "mean accesses",
        "p99 accesses",
        "uJ per packet",
        "packets per 2J battery",
    ]
    rows = []
    for label, protocol in protocols:
        arrivals = AdversarialQueueingArrivals(
            rate=rate, granularity=granularity, placement="front", horizon=horizon
        )
        result = run_simulation(
            protocol,
            arrivals=arrivals,
            seed=5,
            max_slots=horizon * 4,
        )
        energy = result.energy_statistics(departed_only=True)
        rows.append(
            [
                label,
                f"{result.num_delivered}/{result.num_arrivals}",
                round(result.throughput, 3),
                round(energy.mean_accesses, 1),
                energy.p99_accesses,
                round(energy.mean_accesses * MICROJOULES_PER_ACCESS, 1),
                int(packets_per_battery(energy.mean_accesses)),
            ]
        )
    print(
        f"Sensor deployment: ({rate}, {granularity}) adversarial-queuing arrivals "
        f"over {horizon} slots"
    )
    print()
    print(format_table(headers, rows))
    print()
    print(
        "All protocols deliver the offered load, but the battery arithmetic "
        "differs sharply: a node running the full-sensing protocol spends its "
        "radio budget listening, while LOW-SENSING BACKOFF gets comparable "
        "throughput for roughly half the accesses — and, unlike the send-only "
        "binary exponential backoff (cheapest here but with 2-3x worse "
        "throughput and latency that keep degrading as load or batch size "
        "grows), it holds that throughput constant at scale.  That combination "
        "is what 'fully energy-efficient' means in the paper."
    )


if __name__ == "__main__":
    main()
