"""Scenario: bursty Wi-Fi-style contention with periodic device wake-ups.

The paper motivates contention resolution with shared-channel settings such
as Wi-Fi and wireless sensor networks, where many stations wake up at nearly
the same moment (a meeting starts, a sensor epoch begins) and must all get a
frame through.  This example models that workload as periodic bursts of
packets and compares LOW-SENSING BACKOFF against the full-sensing
multiplicative-weights protocol (the representative "listen every slot"
design) and binary exponential backoff (the classical Ethernet/Wi-Fi
strategy), asking three questions:

* does the protocol keep up with the bursts (bounded backlog)?
* what throughput does it sustain over the whole run?
* how much energy (channel accesses) does each delivered packet cost?

Run with::

    python examples/wifi_bursty_arrivals.py
"""

from __future__ import annotations

from repro import (
    BinaryExponentialBackoff,
    FullSensingMultiplicativeWeights,
    LowSensingBackoff,
    PeriodicBurstArrivals,
    run_simulation,
)
from repro.analysis.tables import format_table


def run_scenario(protocol, seed: int = 7):
    """60 bursts of 25 stations, one burst every 400 slots."""
    arrivals = PeriodicBurstArrivals(
        burst_size=25, period=400, start=0, num_bursts=60
    )
    return run_simulation(
        protocol,
        arrivals=arrivals,
        seed=seed,
        max_slots=200_000,
    )


def main() -> None:
    protocols = [
        ("low-sensing (paper)", LowSensingBackoff()),
        ("full-sensing MW", FullSensingMultiplicativeWeights()),
        ("binary exponential", BinaryExponentialBackoff()),
    ]
    headers = [
        "protocol",
        "delivered",
        "throughput",
        "max backlog",
        "mean accesses",
        "p95 accesses",
        "mean latency",
        "p95 latency",
    ]
    rows = []
    for label, protocol in protocols:
        result = run_scenario(protocol)
        energy = result.energy_statistics(departed_only=True)
        latency = result.latency_statistics()
        rows.append(
            [
                label,
                f"{result.num_delivered}/{result.num_arrivals}",
                round(result.throughput, 3),
                max(result.backlog_series()),
                round(energy.mean_accesses, 1),
                energy.p95_accesses,
                round(latency.mean_latency, 1),
                latency.p95_latency,
            ]
        )
    print("Bursty arrivals: 60 bursts x 25 stations, one burst every 400 slots")
    print()
    print(format_table(headers, rows))
    print()
    print(
        "All three protocols keep up with this arrival rate, but they pay very "
        "differently: the full-sensing protocol listens in every slot a station "
        "is awake, binary exponential backoff needs far more slots per burst "
        "(higher latency and backlog), and LOW-SENSING BACKOFF clears each "
        "burst quickly while keeping per-station channel accesses small — the "
        "paper's 'fully energy-efficient' operating point."
    )


if __name__ == "__main__":
    main()
