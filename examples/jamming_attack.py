"""Scenario: surviving a jamming attack.

Jamming — malicious or accidental noise that makes every listener hear a busy
channel — is the second headline concern of the paper.  This example throws
four attacks at LOW-SENSING BACKOFF while it is clearing a 300-packet batch:

* a random jammer that corrupts 20% of slots until its budget runs out,
* a burst jammer that blanket-jams a long contiguous window,
* an adaptive jammer that reads the system state (the adaptive adversary may
  inspect every packet's window) and only jams slots whose contention is in
  the "good" regime — the slots most likely to carry a success,
* a reactive jammer that watches the channel and destroys would-be
  successful transmissions (Section 1.3).

For each attack we report the paper's jamming-aware throughput (T+J)/S, the
per-packet energy, and whether every packet was eventually delivered.

Run with::

    python examples/jamming_attack.py
"""

from __future__ import annotations

from repro import (
    AdaptiveContentionJammer,
    BatchArrivals,
    BernoulliJamming,
    BurstJamming,
    LowSensingBackoff,
    NoJamming,
    ReactiveSuccessJammer,
    run_simulation,
)
from repro.analysis.tables import format_table


def main() -> None:
    batch = 300
    seed = 99
    attacks = [
        ("no jamming", NoJamming()),
        ("random 20% (budget 300)", BernoulliJamming(probability=0.2, budget=300)),
        ("burst of 400 slots", BurstJamming(start=50, length=400)),
        (
            "adaptive, good-contention slots",
            AdaptiveContentionJammer(budget=300, target_regime="good"),
        ),
        ("reactive, kills successes", ReactiveSuccessJammer(budget=150)),
    ]
    headers = [
        "attack",
        "jammed slots",
        "delivered",
        "throughput (T+J)/S",
        "active slots",
        "mean accesses",
        "max accesses",
    ]
    rows = []
    for label, jammer in attacks:
        result = run_simulation(
            LowSensingBackoff(),
            arrivals=BatchArrivals(batch),
            jammer=jammer,
            seed=seed,
            max_slots=400_000,
        )
        energy = result.energy_statistics()
        rows.append(
            [
                label,
                result.num_jammed_active,
                f"{result.num_delivered}/{batch}",
                round(result.throughput, 3),
                result.num_active_slots,
                round(energy.mean_accesses, 1),
                energy.max_accesses,
            ]
        )
    print(f"LOW-SENSING BACKOFF clearing a {batch}-packet batch under attack")
    print()
    print(format_table(headers, rows))
    print()
    print(
        "Every attack is absorbed: all packets are delivered, the jamming-aware "
        "throughput (T+J)/S stays bounded away from zero, and per-packet channel "
        "accesses stay polylogarithmic.  The reactive attack is the most "
        "expensive per jammed slot — exactly the separation Theorem 1.9 "
        "describes — but even there the averages stay small."
    )


if __name__ == "__main__":
    main()
