"""Tests for packet-arrival processes."""

from random import Random

import pytest

from repro.adversary.arrivals import (
    AdversarialQueueingArrivals,
    BatchArrivals,
    NoArrivals,
    PeriodicBurstArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.adversary.base import SystemView
from repro.queueing.model import QueueingConstraint


def view_at(slot: int) -> SystemView:
    return SystemView(slot=slot, active_packets=())


def collect(process, horizon: int, seed: int = 0) -> list[int]:
    rng = Random(seed)
    return [process.arrivals(view_at(slot), rng) for slot in range(horizon)]


class TestNoArrivals:
    def test_never_arrives(self):
        assert sum(collect(NoArrivals(), 100)) == 0

    def test_always_exhausted(self):
        assert NoArrivals().exhausted(0)


class TestBatchArrivals:
    def test_all_packets_in_one_slot(self):
        counts = collect(BatchArrivals(25), 10)
        assert counts[0] == 25
        assert sum(counts[1:]) == 0

    def test_configurable_slot(self):
        counts = collect(BatchArrivals(5, slot=3), 10)
        assert counts[3] == 5 and sum(counts) == 5

    def test_exhaustion(self):
        process = BatchArrivals(5, slot=3)
        assert not process.exhausted(3)
        assert process.exhausted(4)

    def test_total_planned(self):
        assert BatchArrivals(7).total_planned() == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchArrivals(-1)
        with pytest.raises(ValueError):
            BatchArrivals(1, slot=-1)


class TestPoissonArrivals:
    def test_mean_matches_rate(self):
        counts = collect(PoissonArrivals(rate=0.5), 20_000, seed=3)
        assert sum(counts) / len(counts) == pytest.approx(0.5, rel=0.1)

    def test_horizon_stops_arrivals(self):
        counts = collect(PoissonArrivals(rate=2.0, horizon=100), 200, seed=1)
        assert sum(counts[100:]) == 0
        assert sum(counts[:100]) > 0

    def test_zero_rate(self):
        assert sum(collect(PoissonArrivals(rate=0.0), 100)) == 0

    def test_exhaustion_requires_horizon(self):
        assert not PoissonArrivals(rate=1.0).exhausted(10**6)
        assert PoissonArrivals(rate=1.0, horizon=10).exhausted(10)

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=-1.0)


class TestPeriodicBurstArrivals:
    def test_burst_pattern(self):
        counts = collect(PeriodicBurstArrivals(burst_size=4, period=10), 35)
        assert counts[0] == counts[10] == counts[20] == counts[30] == 4
        assert sum(counts) == 16

    def test_start_offset_and_burst_limit(self):
        process = PeriodicBurstArrivals(burst_size=2, period=5, start=3, num_bursts=2)
        counts = collect(process, 30)
        assert counts[3] == 2 and counts[8] == 2
        assert sum(counts) == 4
        assert process.exhausted(9)
        assert not process.exhausted(8)

    def test_total_planned(self):
        assert PeriodicBurstArrivals(3, 10, num_bursts=4).total_planned() == 12
        assert PeriodicBurstArrivals(3, 10).total_planned() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicBurstArrivals(burst_size=1, period=0)


class TestTraceArrivals:
    def test_replays_counts(self):
        process = TraceArrivals([1, 0, 3, 0, 2])
        assert collect(process, 8) == [1, 0, 3, 0, 2, 0, 0, 0]

    def test_exhaustion_and_total(self):
        process = TraceArrivals([1, 2])
        assert process.total_planned() == 3
        assert process.exhausted(2)
        assert not process.exhausted(1)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            TraceArrivals([1, -1])


class TestAdversarialQueueingArrivals:
    @pytest.mark.parametrize("placement", ["front", "uniform", "random"])
    def test_generated_stream_is_admissible(self, placement):
        rate, granularity, horizon = 0.3, 50, 600
        process = AdversarialQueueingArrivals(
            rate=rate, granularity=granularity, placement=placement, horizon=horizon
        )
        counts = collect(process, horizon, seed=9)
        constraint = QueueingConstraint(rate=rate, granularity=granularity, sliding=False)
        assert constraint.is_admissible(counts, [False] * len(counts))

    def test_front_placement_puts_budget_in_first_slot(self):
        process = AdversarialQueueingArrivals(rate=0.2, granularity=100, placement="front")
        counts = collect(process, 200)
        assert counts[0] == 20 and counts[100] == 20
        assert sum(counts[1:100]) == 0

    def test_uniform_placement_spreads_budget(self):
        process = AdversarialQueueingArrivals(rate=0.5, granularity=100, placement="uniform")
        counts = collect(process, 100)
        assert sum(counts) == 50
        assert max(counts) <= 2

    def test_random_placement_uses_full_budget(self):
        process = AdversarialQueueingArrivals(rate=0.4, granularity=50, placement="random")
        counts = collect(process, 50, seed=3)
        assert sum(counts) == 20

    def test_jam_budget_fraction_reduces_arrivals(self):
        process = AdversarialQueueingArrivals(
            rate=0.4, granularity=100, jam_budget_fraction=0.5
        )
        assert process.arrivals_per_window == 20

    def test_horizon_and_exhaustion(self):
        process = AdversarialQueueingArrivals(rate=0.2, granularity=10, horizon=30)
        counts = collect(process, 60)
        assert sum(counts[30:]) == 0
        assert process.exhausted(30)

    def test_total_planned_upper_bound(self):
        process = AdversarialQueueingArrivals(rate=0.2, granularity=10, horizon=35)
        counts = collect(process, 35)
        assert sum(counts) <= process.total_planned()

    def test_validation(self):
        with pytest.raises(ValueError):
            AdversarialQueueingArrivals(rate=1.0, granularity=10)
        with pytest.raises(ValueError):
            AdversarialQueueingArrivals(rate=0.5, granularity=0)
        with pytest.raises(ValueError):
            AdversarialQueueingArrivals(rate=0.5, granularity=10, placement="weird")
