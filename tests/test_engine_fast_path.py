"""Tests for the oblivious-adversary fast path of the engine."""

import pytest

from repro.adversary.arrivals import (
    AdversarialQueueingArrivals,
    BatchArrivals,
    PeriodicBurstArrivals,
)
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import (
    AdaptiveContentionJammer,
    BernoulliJamming,
    BurstJamming,
    NoJamming,
    ReactiveSuccessJammer,
)
from repro.core.low_sensing import LowSensingBackoff
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator, _ObliviousView


def _packet_tuples(result):
    return [
        (p.packet_id, p.arrival_slot, p.departure_slot, p.sends, p.listens)
        for p in result.packets
    ]


class TestObliviousFlags:
    def test_oblivious_compositions(self):
        assert CompositeAdversary(BatchArrivals(5)).oblivious
        assert CompositeAdversary(BatchArrivals(5), BurstJamming(0, 3)).oblivious
        assert CompositeAdversary(
            AdversarialQueueingArrivals(rate=0.1, granularity=10)
        ).oblivious

    def test_state_aware_compositions_are_not_oblivious(self):
        assert not CompositeAdversary(
            BatchArrivals(5), AdaptiveContentionJammer(budget=3)
        ).oblivious
        assert not CompositeAdversary(
            BatchArrivals(5), ReactiveSuccessJammer(budget=3)
        ).oblivious

    def test_bernoulli_obliviousness_depends_on_only_active(self):
        assert not BernoulliJamming(0.2).oblivious
        assert BernoulliJamming(0.2, only_active=False).oblivious
        assert NoJamming().oblivious


class TestFastPathGate:
    def _config(self, **kwargs):
        return SimulationConfig(
            protocol=LowSensingBackoff(),
            adversary=CompositeAdversary(BatchArrivals(10)),
            seed=1,
            **kwargs,
        )

    def test_enabled_for_oblivious_adversary(self):
        assert Simulator(self._config())._fast_path

    def test_disabled_by_trace_potential_or_state_aware_adversary(self):
        assert not Simulator(self._config(collect_trace=True))._fast_path
        assert not Simulator(self._config(collect_potential=True))._fast_path
        config = SimulationConfig(
            protocol=LowSensingBackoff(),
            adversary=CompositeAdversary(
                BatchArrivals(10), AdaptiveContentionJammer(budget=2)
            ),
            seed=1,
        )
        assert not Simulator(config)._fast_path


class TestFastPathEquivalence:
    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: CompositeAdversary(BatchArrivals(40)),
            lambda: CompositeAdversary(
                PeriodicBurstArrivals(burst_size=5, period=20, num_bursts=4),
                BurstJamming(start=10, length=15),
            ),
            lambda: CompositeAdversary(
                AdversarialQueueingArrivals(
                    rate=0.2, granularity=50, placement="random", horizon=500
                )
            ),
        ],
    )
    @pytest.mark.parametrize("protocol_cls", [LowSensingBackoff, BinaryExponentialBackoff])
    def test_bit_identical_to_slow_path(self, adversary_factory, protocol_cls):
        def run(force_slow):
            config = SimulationConfig(
                protocol=protocol_cls(),
                adversary=adversary_factory(),
                seed=13,
                max_slots=100_000,
            )
            sim = Simulator(config)
            assert sim._fast_path
            if force_slow:
                sim._fast_path = False
            return sim.run()

        fast, slow = run(False), run(True)
        assert fast.summary() == slow.summary()
        assert _packet_tuples(fast) == _packet_tuples(slow)

    def test_slot_by_slot_outcomes_match(self):
        def outcomes(force_slow):
            config = SimulationConfig(
                protocol=LowSensingBackoff(),
                adversary=CompositeAdversary(BatchArrivals(12)),
                seed=5,
                max_slots=400,
                stop_when_drained=False,
            )
            sim = Simulator(config)
            if force_slow:
                sim._fast_path = False
            return [sim.step() for _ in range(400)]

        assert outcomes(False) == outcomes(True)


class TestObliviousView:
    def test_scalar_fields_available(self):
        view = _ObliviousView(3, 7, 10, 2, 1, 8, None)
        assert view.slot == 3
        assert view.backlog == 7
        assert view.arrivals_so_far == 10

    def test_per_packet_fields_fail_loudly(self):
        view = _ObliviousView(0, 0, 0, 0, 0, 0, None)
        with pytest.raises(RuntimeError, match="oblivious"):
            view.active_packets
        with pytest.raises(RuntimeError, match="oblivious"):
            view.sending_probabilities
        with pytest.raises(RuntimeError, match="oblivious"):
            view.contention

    def test_misdeclared_adversary_is_caught(self):
        class LyingAdversary(CompositeAdversary):
            oblivious = True

            def __init__(self):
                super().__init__(BatchArrivals(3))
                self.oblivious = True

            def jam(self, view, rng):
                return bool(view.active_packets) and False

        config = SimulationConfig(
            protocol=LowSensingBackoff(), adversary=LyingAdversary(), seed=1
        )
        sim = Simulator(config)
        assert sim._fast_path
        with pytest.raises(RuntimeError, match="oblivious"):
            sim.step()
