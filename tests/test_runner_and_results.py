"""Tests for the convenience runners and the SimulationResult API."""

import pytest

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import PeriodicJamming
from repro.core.low_sensing import LowSensingBackoff
from repro.sim.config import SimulationConfig
from repro.sim.runner import replicate, run_simulation


class TestRunSimulation:
    def test_arrivals_shortcut(self):
        result = run_simulation(LowSensingBackoff(), arrivals=BatchArrivals(10), seed=1)
        assert result.num_delivered == 10

    def test_jammer_shortcut(self):
        result = run_simulation(
            LowSensingBackoff(),
            arrivals=BatchArrivals(10),
            jammer=PeriodicJamming(period=3),
            seed=1,
        )
        assert result.num_jammed_active > 0

    def test_adversary_and_shortcuts_are_mutually_exclusive(self):
        with pytest.raises(ValueError):
            run_simulation(
                LowSensingBackoff(),
                adversary=CompositeAdversary(BatchArrivals(1)),
                arrivals=BatchArrivals(1),
            )

    def test_explicit_adversary(self):
        result = run_simulation(
            LowSensingBackoff(),
            adversary=CompositeAdversary(BatchArrivals(5)),
            seed=2,
        )
        assert result.num_delivered == 5


class TestReplicate:
    def test_one_result_per_seed(self):
        def factory(seed: int) -> SimulationConfig:
            return SimulationConfig(
                protocol=LowSensingBackoff(),
                adversary=CompositeAdversary(BatchArrivals(10)),
                seed=seed,
            )

        results = replicate(factory, seeds=[1, 2, 3])
        assert len(results) == 3
        assert [r.seed for r in results] == [1, 2, 3]
        assert all(r.num_delivered == 10 for r in results)

    def test_factory_must_propagate_seed(self):
        def bad_factory(seed: int) -> SimulationConfig:
            return SimulationConfig(
                protocol=LowSensingBackoff(),
                adversary=CompositeAdversary(BatchArrivals(1)),
                seed=0,
            )

        with pytest.raises(ValueError):
            replicate(bad_factory, seeds=[5])


class TestSimulationResultApi:
    def setup_method(self):
        self.result = run_simulation(
            LowSensingBackoff(),
            arrivals=BatchArrivals(30),
            jammer=PeriodicJamming(period=7),
            seed=3,
        )

    def test_summary_row_is_consistent(self):
        summary = self.result.summary()
        assert summary.protocol == "low-sensing"
        assert summary.num_arrivals == 30
        assert summary.num_delivered == 30
        assert summary.throughput == pytest.approx(self.result.throughput)
        assert summary.drained

    def test_series_lengths_match_slots(self):
        assert len(self.result.throughput_series()) == self.result.num_slots
        assert len(self.result.implicit_throughput_series()) == self.result.num_slots
        assert len(self.result.backlog_series()) == self.result.num_slots

    def test_final_series_values_match_scalars(self):
        assert self.result.throughput_series()[-1] == pytest.approx(self.result.throughput)
        assert self.result.implicit_throughput_series()[-1] == pytest.approx(
            self.result.implicit_throughput
        )

    def test_observation_1_1_throughputs_coincide_when_drained(self):
        # Observation 1.1: at an inactive slot (here: end of a drained run),
        # throughput and implicit throughput are equal.
        assert self.result.drained
        assert self.result.throughput == pytest.approx(self.result.implicit_throughput)

    def test_energy_statistics_cover_all_packets(self):
        stats = self.result.energy_statistics()
        assert stats.num_packets == 30
        assert stats.max_accesses >= stats.p95_accesses >= stats.mean_accesses / 10

    def test_latency_statistics(self):
        stats = self.result.latency_statistics()
        assert stats.num_delivered == 30
        assert stats.num_undelivered == 0
        assert stats.makespan >= stats.p50_latency

    def test_packet_records_departures_within_execution(self):
        for packet in self.result.packets:
            assert packet.departed
            assert 0 <= packet.arrival_slot <= packet.departure_slot < self.result.num_slots
