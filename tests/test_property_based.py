"""Property-based tests (hypothesis) for core invariants.

These tests check the structural invariants the paper's analysis relies on:
windows never drop below w_min, the unconditional sending probability is
exactly 1/w, contention is the sum of sending probabilities, throughput
metrics stay in range, executions conserve packets, and generated
adversarial-queuing arrival streams are admissible.
"""

from random import Random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.arrivals import AdversarialQueueingArrivals, TraceArrivals
from repro.adversary.base import SystemView
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import BernoulliJamming
from repro.channel.channel import MultipleAccessChannel
from repro.channel.feedback import Feedback, FeedbackReport, SlotOutcome
from repro.core.low_sensing import LowSensingPacketState
from repro.core.parameters import LowSensingParameters
from repro.core.potential import PotentialTracker
from repro.metrics.throughput import ThroughputAccounting
from repro.queueing.model import QueueingConstraint
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator

SLOW = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# -- Parameters and window dynamics ------------------------------------------


@given(
    c=st.floats(min_value=0.1, max_value=1.0),
    w_min=st.floats(min_value=40.0, max_value=500.0),
    window_factor=st.floats(min_value=1.0, max_value=1000.0),
)
def test_send_probability_is_inverse_window(c, w_min, window_factor):
    params = LowSensingParameters(c=c, w_min=w_min, strict=False)
    window = w_min * window_factor
    assert abs(params.send_probability(window) * window - 1.0) < 1e-6 or (
        params.access_probability(window) == 1.0
    )


@given(
    feedback_sequence=st.lists(
        st.sampled_from([Feedback.EMPTY, Feedback.NOISE, Feedback.SUCCESS]),
        min_size=1,
        max_size=300,
    )
)
def test_window_never_drops_below_w_min(feedback_sequence):
    params = LowSensingParameters()
    state = LowSensingPacketState(params)
    rng = Random(0)
    for feedback in feedback_sequence:
        state.observe(FeedbackReport(feedback=feedback, sent=False), rng)
        assert state.window >= params.w_min
        assert 0.0 < state.access_probability() <= 1.0


@given(
    noisy_count=st.integers(min_value=0, max_value=200),
    empty_count=st.integers(min_value=0, max_value=200),
)
def test_window_monotone_in_noise_minus_silence(noisy_count, empty_count):
    """More noise observations never yield a smaller window (order fixed)."""
    params = LowSensingParameters()
    rng = Random(0)
    state = LowSensingPacketState(params)
    for _ in range(noisy_count):
        state.observe(FeedbackReport(feedback=Feedback.NOISE, sent=False), rng)
    for _ in range(empty_count):
        state.observe(FeedbackReport(feedback=Feedback.EMPTY, sent=False), rng)
    if empty_count == 0 and noisy_count > 0:
        assert state.window > params.w_min
    if noisy_count == 0:
        assert state.window == params.w_min


# -- Channel resolution --------------------------------------------------------


@given(
    num_senders=st.integers(min_value=0, max_value=20),
    jammed=st.booleans(),
)
def test_channel_resolution_cases(num_senders, jammed):
    channel = MultipleAccessChannel()
    resolution = channel.resolve(list(range(num_senders)), jammed=jammed)
    if jammed:
        assert resolution.outcome is SlotOutcome.JAMMED
        assert resolution.winner is None
    elif num_senders == 0:
        assert resolution.outcome is SlotOutcome.EMPTY
    elif num_senders == 1:
        assert resolution.outcome is SlotOutcome.SUCCESS
        assert resolution.winner == 0
    else:
        assert resolution.outcome is SlotOutcome.COLLISION
    assert resolution.feedback in (Feedback.EMPTY, Feedback.SUCCESS, Feedback.NOISE)


# -- Throughput metrics ---------------------------------------------------------


@given(
    arrivals=st.integers(min_value=0, max_value=10_000),
    delivered_fraction=st.floats(min_value=0.0, max_value=1.0),
    jammed=st.integers(min_value=0, max_value=1_000),
    extra_slots=st.integers(min_value=0, max_value=10_000),
)
def test_throughput_bounds(arrivals, delivered_fraction, jammed, extra_slots):
    successes = int(arrivals * delivered_fraction)
    active_slots = successes + jammed + extra_slots
    accounting = ThroughputAccounting(
        arrivals=arrivals,
        successes=successes,
        jammed_active=jammed,
        active_slots=active_slots,
    )
    assert 0.0 <= accounting.throughput <= 1.0 or active_slots == 0
    assert accounting.implicit_throughput >= accounting.throughput


# -- Potential function ----------------------------------------------------------


@given(
    windows=st.lists(
        st.floats(min_value=32.0, max_value=1e6), min_size=0, max_size=100
    )
)
def test_potential_nonnegative_and_zero_iff_empty(windows):
    tracker = PotentialTracker()
    sample = tracker.record(0, windows)
    if windows:
        assert sample.potential > 0.0
        assert sample.contention > 0.0
    else:
        assert sample.potential == 0.0


# -- Adversarial queueing admissibility ---------------------------------------------


@SLOW
@given(
    rate=st.floats(min_value=0.05, max_value=0.6),
    granularity=st.integers(min_value=10, max_value=100),
    placement=st.sampled_from(["front", "uniform", "random"]),
    windows=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_queueing_arrivals_admissible(rate, granularity, placement, windows, seed):
    process = AdversarialQueueingArrivals(
        rate=rate, granularity=granularity, placement=placement
    )
    rng = Random(seed)
    horizon = granularity * windows
    counts = [
        process.arrivals(SystemView(slot=slot, active_packets=()), rng)
        for slot in range(horizon)
    ]
    constraint = QueueingConstraint(rate=rate, granularity=granularity, sliding=False)
    assert constraint.is_admissible(counts, [False] * horizon)


# -- End-to-end conservation -----------------------------------------------------


@SLOW
@given(
    counts=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=30),
    jam_probability=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=1_000),
)
def test_execution_conserves_packets(counts, jam_probability, seed):
    adversary = CompositeAdversary(
        TraceArrivals(counts),
        BernoulliJamming(probability=jam_probability, budget=20),
    )
    from repro.core.low_sensing import LowSensingBackoff

    config = SimulationConfig(
        protocol=LowSensingBackoff(),
        adversary=adversary,
        seed=seed,
        max_slots=5_000,
    )
    result = Simulator(config).run()
    assert result.num_arrivals == sum(counts)
    assert result.num_delivered + result.backlog == result.num_arrivals
    assert result.num_delivered == len([p for p in result.packets if p.departed])
    # Active slots never exceed total slots; jammed-active never exceeds jams.
    assert result.num_active_slots <= result.num_slots
    assert result.num_jammed_active <= result.num_jammed
    if result.drained:
        assert result.backlog == 0
        assert result.throughput == result.implicit_throughput
