"""Tests for statistics, scaling-model fitting, and table rendering."""

import math

import pytest

from repro.analysis.fitting import (
    fit_constant,
    fit_linear,
    fit_log_power,
    fit_power_law,
    select_scaling_model,
)
from repro.analysis.statistics import (
    bootstrap_mean_interval,
    describe,
    mean_confidence_interval,
    regularized_incomplete_beta,
    student_t_sf,
    welch_t_test,
)
from repro.analysis.tables import format_table, render_rows


class TestDescribe:
    def test_basic_statistics(self):
        stats = describe([1.0, 2.0, 3.0, 4.0])
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        assert stats["median"] == pytest.approx(2.5)
        assert stats["n"] == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            describe([])


class TestConfidenceIntervals:
    def test_interval_brackets_mean(self):
        interval = mean_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert interval.low <= interval.estimate <= interval.high
        assert interval.contains(3.0)

    def test_wider_confidence_gives_wider_interval(self):
        values = [float(v) for v in range(20)]
        narrow = mean_confidence_interval(values, confidence=0.90)
        wide = mean_confidence_interval(values, confidence=0.99)
        assert wide.width > narrow.width

    def test_requires_two_values(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0])

    def test_unsupported_confidence(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0, 2.0], confidence=0.5)

    def test_bootstrap_interval(self):
        values = [1.0, 2.0, 3.0, 4.0, 100.0]
        interval = bootstrap_mean_interval(values, seed=1)
        assert interval.low <= interval.estimate <= interval.high

    def test_bootstrap_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_interval([], seed=1)
        with pytest.raises(ValueError):
            bootstrap_mean_interval([1.0], resamples=2)


class TestFitting:
    def test_constant_fit(self):
        fit = fit_constant([1, 2, 3, 4], [5.0, 5.1, 4.9, 5.0])
        assert fit.parameters["a"] == pytest.approx(5.0, abs=0.1)
        assert fit.predict(100) == fit.parameters["a"]

    def test_linear_fit_recovers_slope(self):
        xs = [10, 20, 40, 80]
        ys = [2 + 3 * x for x in xs]
        fit = fit_linear(xs, ys)
        assert fit.parameters["b"] == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_power_law_fit_recovers_exponent(self):
        xs = [10, 20, 40, 80, 160]
        ys = [2.0 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.parameters["b"] == pytest.approx(1.5, rel=1e-6)

    def test_log_power_fit_recovers_exponent(self):
        xs = [50, 100, 200, 400, 800]
        ys = [3.0 * math.log(x) ** 3 for x in xs]
        fit = fit_log_power(xs, ys)
        assert fit.parameters["k"] == pytest.approx(3.0)
        assert fit.parameters["a"] == pytest.approx(3.0, rel=0.05)

    def test_log_power_rejects_x_at_most_one(self):
        with pytest.raises(ValueError):
            fit_log_power([1, 2], [1.0, 2.0])

    def test_power_law_rejects_nonpositive_y(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0.0, 1.0])

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_constant([1], [1.0])

    def test_select_prefers_log_power_for_polylog_data(self):
        xs = [50, 100, 200, 400, 800, 1600]
        ys = [2.0 * math.log(x) ** 3 for x in xs]
        best = select_scaling_model(xs, ys)
        assert best.model == "log-power"

    def test_select_prefers_linear_for_linear_data(self):
        xs = [50, 100, 200, 400, 800]
        ys = [5.0 * x for x in xs]
        best = select_scaling_model(xs, ys)
        assert best.model in ("linear", "power")
        if best.model == "power":
            assert best.parameters["b"] == pytest.approx(1.0, abs=0.05)

    def test_select_prefers_constant_for_flat_data(self):
        xs = [50, 100, 200, 400]
        ys = [7.0, 7.0, 7.0, 7.0]
        assert select_scaling_model(xs, ys).model == "constant"

    def test_select_rejects_bad_penalty(self):
        with pytest.raises(ValueError):
            select_scaling_model([1, 2], [1.0, 2.0], complexity_penalty=0.5)


class TestTables:
    def test_format_table_alignment(self):
        table = format_table(["a", "b"], [[1, 2.34567], ["xy", 3]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "2.346" in table

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_booleans_render_as_yes_no(self):
        table = format_table(["ok"], [[True], [False]])
        assert "yes" in table and "no" in table

    def test_render_rows_selects_columns(self):
        rows = [{"x": 1, "y": 2}, {"x": 3, "y": 4}]
        rendered = render_rows(rows, columns=["y"])
        assert "y" in rendered and "x" not in rendered.splitlines()[0]

    def test_render_rows_empty_rejected(self):
        with pytest.raises(ValueError):
            render_rows([])


class TestStudentT:
    def test_incomplete_beta_symmetry_point(self):
        assert regularized_incomplete_beta(0.5, 0.5, 0.5) == pytest.approx(0.5)

    def test_incomplete_beta_bounds(self):
        assert regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
        assert regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0
        with pytest.raises(ValueError):
            regularized_incomplete_beta(0.0, 1.0, 0.5)

    @pytest.mark.parametrize(
        "t, df, two_sided",
        [
            (12.706, 1, 0.05),
            (4.303, 2, 0.05),
            (2.776, 4, 0.05),
            (2.228, 10, 0.05),
            (1.96, 1e7, 0.05),
        ],
    )
    def test_matches_critical_value_tables(self, t, df, two_sided):
        assert 2 * student_t_sf(t, df) == pytest.approx(two_sided, rel=1e-3)

    def test_symmetry_and_center(self):
        assert student_t_sf(0.0, 5) == 0.5
        assert student_t_sf(-2.0, 5) == pytest.approx(1.0 - student_t_sf(2.0, 5))

    def test_df_must_be_positive(self):
        with pytest.raises(ValueError):
            student_t_sf(1.0, 0)


class TestWelchTTest:
    def test_identical_samples_high_p(self):
        t, df, p = welch_t_test([1.0, 1.1, 0.9], [0.9, 1.0, 1.1])
        assert p > 0.5

    def test_small_sample_significance_is_honest(self):
        # Two replicates per side with t~3.3: the normal approximation
        # would call this p~0.001; with df~2 the honest answer is ~0.09.
        t, df, p = welch_t_test([1.0, 1.4], [2.0, 2.5])
        assert abs(t) == pytest.approx(3.28, rel=0.01)
        assert p > 0.05

    def test_clear_separation_rejected_even_at_small_n(self):
        t, df, p = welch_t_test([1.0, 1.001, 0.999, 1.0], [1.1, 1.101, 1.099, 1.1])
        assert p < 1e-6

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            welch_t_test([1.0, 1.0], [2.0, 2.0])
