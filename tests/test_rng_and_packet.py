"""Tests for random-stream derivation and packet bookkeeping."""

import pytest

from repro.core.low_sensing import LowSensingBackoff
from repro.sim.packet import Packet
from repro.sim.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "packet", 3) == derive_seed(1, "packet", 3)

    def test_sensitive_to_master_seed(self):
        assert derive_seed(1, "packet", 3) != derive_seed(2, "packet", 3)

    def test_sensitive_to_tokens(self):
        assert derive_seed(1, "packet", 3) != derive_seed(1, "packet", 4)
        assert derive_seed(1, "adversary") != derive_seed(1, "packet")

    def test_token_concatenation_is_unambiguous(self):
        assert derive_seed(1, "ab", "c") != derive_seed(1, "a", "bc")


class TestRandomStreams:
    def test_streams_are_reproducible(self):
        a = RandomStreams(7).packet_stream(0).random()
        b = RandomStreams(7).packet_stream(0).random()
        assert a == b

    def test_streams_are_independent(self):
        streams = RandomStreams(7)
        assert streams.packet_stream(0).random() != streams.packet_stream(1).random()
        assert streams.adversary_stream().random() != streams.packet_stream(0).random()

    def test_named_stream(self):
        streams = RandomStreams(7)
        assert streams.stream("workload").random() == RandomStreams(7).stream("workload").random()


class TestPacket:
    def make_packet(self, arrival: int = 0) -> Packet:
        streams = RandomStreams(0)
        return Packet(
            packet_id=1,
            arrival_slot=arrival,
            state=LowSensingBackoff().new_packet_state(),
            rng=streams.packet_stream(1),
        )

    def test_channel_accesses_sum_sends_and_listens(self):
        packet = self.make_packet()
        packet.record_send()
        packet.record_listen()
        packet.record_listen()
        assert packet.sends == 1
        assert packet.listens == 2
        assert packet.channel_accesses == 3

    def test_latency_inclusive_of_arrival_and_departure_slots(self):
        packet = self.make_packet(arrival=5)
        assert packet.latency is None
        packet.mark_departed(9)
        assert packet.departed
        assert packet.latency == 5

    def test_same_slot_departure_has_latency_one(self):
        packet = self.make_packet(arrival=3)
        packet.mark_departed(3)
        assert packet.latency == 1

    def test_double_departure_rejected(self):
        packet = self.make_packet()
        packet.mark_departed(4)
        with pytest.raises(ValueError):
            packet.mark_departed(5)

    def test_departure_before_arrival_rejected(self):
        packet = self.make_packet(arrival=10)
        with pytest.raises(ValueError):
            packet.mark_departed(2)
