"""Integration tests for the simulation engine."""

import pytest

from repro.adversary.adaptive import BacklogCouplingAdversary
from repro.adversary.arrivals import BatchArrivals, PoissonArrivals, TraceArrivals
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import BurstJamming, PeriodicJamming, ReactiveTargetedJammer
from repro.channel.feedback import SlotOutcome
from repro.core.low_sensing import LowSensingBackoff
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.protocols.mw_full_sensing import FullSensingMultiplicativeWeights
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator

from tests.conftest import run_batch


class TestBasicExecution:
    def test_single_packet_eventually_succeeds(self):
        result = run_batch(LowSensingBackoff(), 1, seed=3)
        assert result.num_delivered == 1
        assert result.drained
        assert result.packets[0].departed

    def test_all_packets_delivered_on_batch(self):
        result = run_batch(LowSensingBackoff(), 60, seed=5)
        assert result.num_arrivals == 60
        assert result.num_delivered == 60
        assert result.backlog == 0
        assert result.drained

    def test_arrivals_equal_departures_plus_backlog_when_truncated(self):
        config = SimulationConfig(
            protocol=LowSensingBackoff(),
            adversary=CompositeAdversary(BatchArrivals(100)),
            seed=1,
            max_slots=50,  # far too short to drain
        )
        result = Simulator(config).run()
        assert result.num_slots == 50
        assert result.num_arrivals == result.num_delivered + result.backlog
        assert not result.drained

    def test_deterministic_given_seed(self):
        a = run_batch(LowSensingBackoff(), 40, seed=11)
        b = run_batch(LowSensingBackoff(), 40, seed=11)
        assert a.num_slots == b.num_slots
        assert a.num_delivered == b.num_delivered
        assert [p.channel_accesses for p in a.packets] == [
            p.channel_accesses for p in b.packets
        ]

    def test_different_seeds_differ(self):
        a = run_batch(LowSensingBackoff(), 40, seed=11)
        b = run_batch(LowSensingBackoff(), 40, seed=12)
        assert a.num_slots != b.num_slots or [p.channel_accesses for p in a.packets] != [
            p.channel_accesses for p in b.packets
        ]

    def test_packet_ids_are_assigned_in_arrival_order(self):
        result = run_batch(LowSensingBackoff(), 10, seed=2)
        assert [p.packet_id for p in result.packets] == list(range(10))

    def test_empty_workload_finishes_immediately(self):
        config = SimulationConfig(
            protocol=LowSensingBackoff(),
            adversary=CompositeAdversary(),
            seed=0,
            max_slots=1000,
        )
        result = Simulator(config).run()
        assert result.num_slots == 0
        assert result.drained


class TestEnergyAccounting:
    def test_every_departed_packet_sent_at_least_once(self):
        result = run_batch(LowSensingBackoff(), 30, seed=8)
        assert all(p.sends >= 1 for p in result.packets)

    def test_beb_never_listens(self):
        result = run_batch(BinaryExponentialBackoff(), 30, seed=8)
        assert all(p.listens == 0 for p in result.packets)

    def test_full_sensing_accesses_every_active_slot(self):
        result = run_batch(FullSensingMultiplicativeWeights(), 20, seed=8)
        for packet in result.packets:
            assert packet.departure_slot is not None
            lifetime = packet.departure_slot - packet.arrival_slot + 1
            assert packet.channel_accesses == lifetime

    def test_collector_access_totals_match_packets(self):
        result = run_batch(LowSensingBackoff(), 30, seed=8)
        assert result.collector.total_sends == sum(p.sends for p in result.packets)
        assert result.collector.total_listens == sum(p.listens for p in result.packets)


class TestTraceCollection:
    def test_trace_records_every_slot(self):
        result = run_batch(LowSensingBackoff(), 20, seed=4, collect_trace=True)
        assert result.trace is not None
        assert result.trace.num_slots == result.num_slots
        assert result.trace.num_successes == result.num_delivered
        assert result.trace.num_arrivals == result.num_arrivals

    def test_trace_winner_matches_success(self):
        result = run_batch(LowSensingBackoff(), 20, seed=4, collect_trace=True)
        for record in result.trace:
            if record.outcome is SlotOutcome.SUCCESS:
                assert record.winner is not None
                assert record.active_after == record.active_before - 1
            else:
                assert record.winner is None
                assert record.active_after >= record.active_before - 0

    def test_no_trace_by_default(self):
        assert run_batch(LowSensingBackoff(), 5, seed=4).trace is None


class TestPotentialCollection:
    def test_potential_tracked_per_slot(self):
        result = run_batch(LowSensingBackoff(), 30, seed=4, collect_potential=True)
        assert result.potential is not None
        assert len(result.potential.samples) == result.num_slots
        # Potential is zero once the system drains.
        assert result.potential.samples[-1].potential >= 0.0

    def test_potential_upper_bounded_by_multiple_of_arrivals(self):
        result = run_batch(LowSensingBackoff(), 100, seed=4, collect_potential=True)
        assert result.potential.max_potential() <= 50.0 * (result.num_arrivals + 1)


class TestJammingSemantics:
    def test_burst_jamming_appears_in_counters(self):
        result = run_batch(
            LowSensingBackoff(), 50, seed=6, jammer=BurstJamming(start=0, length=30)
        )
        assert result.num_jammed == 30
        assert result.num_jammed_active == 30
        assert result.num_delivered == 50

    def test_periodic_jamming_slows_but_does_not_stop_delivery(self):
        jammed = run_batch(
            LowSensingBackoff(), 50, seed=6, jammer=PeriodicJamming(period=4)
        )
        clean = run_batch(LowSensingBackoff(), 50, seed=6)
        assert jammed.num_delivered == 50
        assert jammed.num_active_slots > clean.num_active_slots

    def test_no_success_in_jammed_slots(self):
        result = run_batch(
            LowSensingBackoff(),
            30,
            seed=9,
            jammer=BurstJamming(start=0, length=1000),
            max_slots=800,
        )
        # The burst covers the whole truncated execution: nothing succeeds.
        assert result.num_delivered == 0
        assert result.backlog == 30

    def test_reactive_jammer_delays_targeted_packet(self):
        budget = 15
        result = run_batch(
            LowSensingBackoff(),
            20,
            seed=10,
            jammer=ReactiveTargetedJammer(budget=budget, target_index=0),
        )
        victim = next(p for p in result.packets if p.packet_id == 0)
        others = [p for p in result.packets if p.packet_id != 0]
        assert result.num_jammed_active == budget
        # The victim pays at least one access per jammed transmission.
        assert victim.sends >= budget + 1
        assert victim.channel_accesses > max(p.channel_accesses for p in others)


class TestAdaptiveCoupledAdversary:
    def test_backlog_coupling_adversary_drains(self):
        adversary = BacklogCouplingAdversary(target_backlog=3, total_packets=40, jam_budget=5)
        config = SimulationConfig(
            protocol=LowSensingBackoff(),
            adversary=adversary,
            seed=2,
            max_slots=100_000,
        )
        result = Simulator(config).run()
        assert result.num_arrivals == 40
        assert result.num_delivered == 40
        assert result.drained


class TestOpenEndedWorkloads:
    def test_poisson_run_respects_max_slots(self):
        config = SimulationConfig(
            protocol=LowSensingBackoff(),
            adversary=CompositeAdversary(PoissonArrivals(rate=0.05)),
            seed=3,
            max_slots=2_000,
            stop_when_drained=False,
        )
        result = Simulator(config).run()
        assert result.num_slots == 2_000

    def test_trace_arrivals_drain_and_stop(self):
        config = SimulationConfig(
            protocol=LowSensingBackoff(),
            adversary=CompositeAdversary(TraceArrivals([2, 0, 0, 3])),
            seed=3,
            max_slots=100_000,
        )
        result = Simulator(config).run()
        assert result.num_arrivals == 5
        assert result.num_delivered == 5
        assert result.drained

    def test_step_api_advances_one_slot(self):
        config = SimulationConfig(
            protocol=LowSensingBackoff(),
            adversary=CompositeAdversary(BatchArrivals(5)),
            seed=3,
            max_slots=10,
        )
        simulator = Simulator(config)
        assert simulator.slot == 0
        simulator.step()
        assert simulator.slot == 1
        assert simulator.backlog in (4, 5)
