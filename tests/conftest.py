"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from random import Random

import pytest

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.composite import CompositeAdversary
from repro.core.low_sensing import LowSensingBackoff
from repro.core.parameters import LowSensingParameters
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator


@pytest.fixture
def rng() -> Random:
    """A deterministic random source for unit tests."""
    return Random(1234)


@pytest.fixture
def small_params() -> LowSensingParameters:
    """Valid LOW-SENSING parameters small enough for fast unit tests."""
    return LowSensingParameters(c=0.5, w_min=32.0)


def run_batch(
    protocol,
    n: int,
    seed: int = 7,
    jammer=None,
    max_slots: int = 300_000,
    collect_trace: bool = False,
    collect_potential: bool = False,
):
    """Run ``protocol`` on a batch of ``n`` packets and return the result."""
    config = SimulationConfig(
        protocol=protocol,
        adversary=CompositeAdversary(BatchArrivals(n), jammer),
        seed=seed,
        max_slots=max_slots,
        collect_trace=collect_trace,
        collect_potential=collect_potential,
    )
    return Simulator(config).run()


@pytest.fixture
def batch_runner():
    """Expose :func:`run_batch` as a fixture for convenience."""
    return run_batch


@pytest.fixture
def low_sensing_protocol() -> LowSensingBackoff:
    return LowSensingBackoff()
