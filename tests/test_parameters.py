"""Tests for the LOW-SENSING BACKOFF parameters (Section 3 constraints)."""

import math

import pytest

from repro.core.parameters import LowSensingParameters


class TestConstraints:
    def test_default_parameters_satisfy_paper_constraints(self):
        params = LowSensingParameters()
        assert params.satisfies_paper_constraints()

    def test_w_min_must_exceed_two(self):
        with pytest.raises(ValueError):
            LowSensingParameters(c=0.1, w_min=2.0)

    def test_c_must_be_positive(self):
        with pytest.raises(ValueError):
            LowSensingParameters(c=0.0, w_min=32.0)

    def test_strict_rejects_violating_combination(self):
        # w_min = 16 gives w_min / ln^3(w_min) ≈ 0.75 < c = 1.
        with pytest.raises(ValueError):
            LowSensingParameters(c=1.0, w_min=16.0)

    def test_non_strict_accepts_and_clamps(self):
        params = LowSensingParameters(c=1.0, w_min=16.0, strict=False)
        assert params.access_probability(16.0) == 1.0

    def test_boundary_combination_is_accepted(self):
        w_min = 100.0
        c = w_min / math.log(w_min) ** 3
        params = LowSensingParameters(c=c, w_min=w_min)
        assert params.access_probability(w_min) == pytest.approx(1.0)


class TestProbabilities:
    def setup_method(self):
        self.params = LowSensingParameters(c=0.5, w_min=32.0)

    def test_access_probability_formula(self):
        w = 64.0
        expected = 0.5 * math.log(w) ** 3 / w
        assert self.params.access_probability(w) == pytest.approx(expected)

    def test_send_given_access_formula(self):
        w = 64.0
        expected = 1.0 / (0.5 * math.log(w) ** 3)
        assert self.params.send_probability_given_access(w) == pytest.approx(expected)

    def test_unconditional_send_probability_is_one_over_w(self):
        # The product of the two probabilities is exactly 1/w (Figure 1).
        for w in (32.0, 50.0, 100.0, 1000.0, 1e6):
            assert self.params.send_probability(w) == pytest.approx(1.0 / w)

    def test_access_probability_decreases_in_window(self):
        probabilities = [self.params.access_probability(w) for w in (32, 100, 1000, 10000)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_probabilities_are_valid(self):
        for w in (32.0, 64.0, 1e3, 1e6, 1e9):
            assert 0.0 < self.params.access_probability(w) <= 1.0
            assert 0.0 < self.params.send_probability_given_access(w) <= 1.0

    def test_window_below_minimum_rejected(self):
        with pytest.raises(ValueError):
            self.params.access_probability(10.0)


class TestWindowUpdates:
    def setup_method(self):
        self.params = LowSensingParameters(c=0.5, w_min=32.0)

    def test_update_factor_formula(self):
        w = 64.0
        assert self.params.update_factor(w) == pytest.approx(1.0 + 1.0 / (0.5 * math.log(w)))

    def test_backoff_increases_window(self):
        assert self.params.backoff(64.0) > 64.0

    def test_backon_decreases_window(self):
        assert self.params.backon(64.0) < 64.0

    def test_backon_clamps_at_w_min(self):
        assert self.params.backon(32.0) == 32.0
        assert self.params.backon(32.5) >= 32.0

    def test_backoff_then_backon_is_close_to_identity(self):
        w = 100.0
        round_trip = self.params.backon(self.params.backoff(w))
        # Not exactly the identity (the factor is evaluated at different
        # windows) but within a small relative error.
        assert round_trip == pytest.approx(w, rel=0.05)

    def test_describe_contains_parameters(self):
        description = self.params.describe()
        assert description["c"] == 0.5
        assert description["w_min"] == 32.0
