"""CLI failure paths must exit non-zero with a one-line diagnostic.

Every case here used to be (or could become) a traceback or a silent
success; the contract is: bad input → non-zero exit, a single
human-readable error line on stderr, and **no traceback** — scripts and CI
wrappers branch on the exit code and surface stderr to humans.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def _expect_error(capsys, argv, *needles):
    """Run ``argv``, assert non-zero SystemExit and a clean diagnostic."""
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    code = excinfo.value.code
    assert code not in (0, None), f"{argv} exited {code}"
    err = capsys.readouterr().err
    assert "Traceback" not in err, f"{argv} leaked a traceback:\n{err}"
    for needle in needles:
        assert needle in err, f"{argv}: expected {needle!r} in stderr:\n{err}"
    return err


class TestUnknownIds:
    def test_unknown_experiment_id(self, capsys):
        _expect_error(capsys, ["run", "e42"], "unknown experiment id", "e42")

    def test_unknown_scenario_id_on_run(self, capsys):
        _expect_error(
            capsys, ["scenario", "run", "no-such"], "unknown scenario", "no-such"
        )

    def test_unknown_scenario_id_on_show(self, capsys):
        _expect_error(capsys, ["scenario", "show", "no-such"], "unknown scenario")

    def test_unknown_backend(self, capsys):
        _expect_error(
            capsys,
            ["run", "e1", "--backend", "threads"],
            "--backend",
        )


class TestMalformedScenarioFiles:
    def test_malformed_toml(self, tmp_path, capsys):
        path = tmp_path / "broken.toml"
        path.write_text("id = [unclosed", encoding="utf-8")
        _expect_error(
            capsys, ["scenario", "run", str(path)], "invalid TOML", path.name
        )

    def test_malformed_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        _expect_error(
            capsys, ["scenario", "run", str(path)], "invalid JSON", path.name
        )

    def test_valid_json_bad_schema(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"id": "x"}), encoding="utf-8")
        _expect_error(
            capsys, ["scenario", "run", str(path)], "missing required keys"
        )

    def test_unknown_component_kind(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "id": "bad-kind",
                    "title": "Bad",
                    "protocols": ["binary-exponential"],
                    "arrivals": {"kind": "martian"},
                }
            ),
            encoding="utf-8",
        )
        _expect_error(capsys, ["scenario", "run", str(path)], "unknown kind")

    def test_missing_scenario_file(self, capsys):
        _expect_error(
            capsys,
            ["scenario", "run", "/does/not/exist.toml"],
            "cannot read scenario file",
        )


class TestUnwritablePaths:
    def test_unwritable_out_dir_on_run(self, capsys):
        _expect_error(
            capsys,
            ["run", "e1", "--scale", "smoke", "--out", "/proc/nope/results"],
            "cannot create --out",
        )

    def test_unwritable_out_dir_on_scenario_run(self, capsys):
        _expect_error(
            capsys,
            [
                "scenario", "run", "onoff-jamming",
                "--scale", "smoke",
                "--out", "/proc/nope/results",
            ],
            "cannot create --out",
        )

    def test_unwritable_bench_out_on_run(self, capsys):
        _expect_error(
            capsys,
            ["run", "e1", "--scale", "smoke", "--bench-out", "/proc/nope/BENCH.json"],
            "cannot write --bench-out",
        )

    def test_unwritable_bench_out_on_scenario_run(self, capsys):
        _expect_error(
            capsys,
            [
                "scenario", "run", "onoff-jamming",
                "--scale", "smoke",
                "--bench-out", "/proc/nope/BENCH.json",
            ],
            "cannot write --bench-out",
        )

    def test_bench_out_pointing_at_directory(self, tmp_path, capsys):
        _expect_error(
            capsys,
            ["run", "e1", "--scale", "smoke", "--bench-out", str(tmp_path)],
            "cannot write --bench-out",
        )

    def test_bench_out_probe_leaves_no_file_behind(self, tmp_path, capsys):
        """The writability probe must not leave an empty bench file when a
        later validation step aborts the command."""
        bench = tmp_path / "BENCH.json"
        _expect_error(
            capsys,
            [
                "run", "e1",
                "--scale", "smoke",
                "--bench-out", str(bench),
                "--out", "/proc/nope/results",
            ],
            "cannot create --out",
        )
        assert not bench.exists()


def _empty_store(tmp_path):
    from repro.store import ResultsStore

    root = tmp_path / "s"
    ResultsStore(root).close()
    return str(root)


class TestCampaignAndCacheFailures:
    def test_resume_unknown_campaign(self, tmp_path, capsys):
        _expect_error(
            capsys,
            ["campaign", "resume", "ghost", "--store", _empty_store(tmp_path)],
            "unknown campaign",
        )

    def test_show_unknown_campaign(self, tmp_path, capsys):
        _expect_error(
            capsys,
            ["campaign", "show", "ghost", "--store", _empty_store(tmp_path)],
            "unknown campaign",
        )

    def test_diff_needs_second_campaign_or_bench(self, tmp_path, capsys):
        _expect_error(
            capsys,
            ["campaign", "diff", "a", "--store", _empty_store(tmp_path)],
            "diff needs CAMPAIGN_B",
        )

    def test_campaign_run_unknown_scenario(self, tmp_path, capsys):
        _expect_error(
            capsys,
            ["campaign", "run", "no-such", "--store", str(tmp_path / "s")],
            "unknown scenario",
        )

    def test_read_side_commands_require_an_existing_store(self, tmp_path, capsys):
        """A mistyped --store/--cache-dir must error loudly, not create an
        empty store and report zero of everything."""
        missing = tmp_path / "typo-dir"
        for argv in (
            ["campaign", "status", "--store", str(missing)],
            ["campaign", "resume", "x", "--store", str(missing)],
            ["campaign", "show", "x", "--store", str(missing)],
        ):
            _expect_error(capsys, argv, "no results store")
            assert not missing.exists(), f"{argv} created the store"
        for argv in (
            ["cache", "stats", "--cache-dir", str(missing)],
            ["cache", "prune", "--cache-dir", str(missing), "--max-bytes", "0"],
        ):
            _expect_error(capsys, argv, "no cache directory")
            assert not missing.exists(), f"{argv} created the cache"

    def test_campaign_run_typo_scenario_leaves_no_store_behind(
        self, tmp_path, capsys
    ):
        store = tmp_path / "fresh-store"
        _expect_error(
            capsys,
            ["campaign", "run", "onoff-jaming", "--store", str(store)],
            "unknown scenario",
        )
        assert not store.exists(), "typo'd scenario run created an empty store"

    def test_campaign_run_store_on_unwritable_path(self, capsys):
        _expect_error(
            capsys,
            ["campaign", "run", "onoff-jamming", "--store", "/proc/nope/store"],
            "cannot open results store",
        )

    def test_checkpoint_every_zero_rejected(self, tmp_path, capsys):
        store = _empty_store(tmp_path)
        for sub in (
            ["campaign", "run", "onoff-jamming"],
            ["campaign", "resume", "whatever"],
        ):
            _expect_error(
                capsys,
                sub + ["--store", store, "--checkpoint-every", "0"],
                "--checkpoint-every must be at least 1",
            )

    def test_cache_prune_without_criteria(self, tmp_path, capsys):
        _expect_error(
            capsys,
            ["cache", "prune", "--cache-dir", _empty_store(tmp_path)],
            "--older-than-days and/or --max-bytes",
        )

    def test_bad_fail_after_units_env(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_FAIL_AFTER_UNITS", "zero")
        _expect_error(
            capsys,
            [
                "campaign", "run", "onoff-jamming",
                "--scale", "smoke",
                "--store", str(tmp_path / "s"),
            ],
            "REPRO_CAMPAIGN_FAIL_AFTER_UNITS",
        )
