"""Tests for the composite adversary and the coupled adaptive adversary."""

from random import Random

import pytest

from repro.adversary.adaptive import BacklogCouplingAdversary
from repro.adversary.arrivals import BatchArrivals, NoArrivals
from repro.adversary.base import SystemView
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import (
    AdaptiveContentionJammer,
    NoJamming,
    PeriodicJamming,
    ReactiveTargetedJammer,
)


def view(slot: int = 0, active: int = 0) -> SystemView:
    return SystemView(slot=slot, active_packets=tuple(range(active)))


class TestCompositeAdversary:
    def test_defaults_to_no_arrivals_no_jamming(self):
        adversary = CompositeAdversary()
        rng = Random(0)
        assert adversary.arrivals(view(), rng) == 0
        assert not adversary.jam(view(), rng)
        assert not adversary.reactive

    def test_forwards_arrivals(self):
        adversary = CompositeAdversary(BatchArrivals(10))
        assert adversary.arrivals(view(0), Random(0)) == 10
        assert adversary.arrivals(view(1), Random(0)) == 0

    def test_forwards_jamming(self):
        adversary = CompositeAdversary(NoArrivals(), PeriodicJamming(period=2))
        rng = Random(0)
        assert adversary.jam(view(0, active=1), rng)
        assert not adversary.jam(view(1, active=1), rng)

    def test_reactive_flag_follows_jammer(self):
        adversary = CompositeAdversary(
            BatchArrivals(1), ReactiveTargetedJammer(budget=1)
        )
        assert adversary.reactive
        assert not CompositeAdversary(BatchArrivals(1), NoJamming()).reactive

    def test_needs_contention_follows_jammer(self):
        adversary = CompositeAdversary(
            BatchArrivals(1), AdaptiveContentionJammer(budget=1)
        )
        assert adversary.needs_contention

    def test_arrivals_exhausted_delegates(self):
        adversary = CompositeAdversary(BatchArrivals(5, slot=0))
        assert not adversary.arrivals_exhausted(0)
        assert adversary.arrivals_exhausted(1)

    def test_describe_mentions_both_parts(self):
        description = CompositeAdversary(BatchArrivals(1), PeriodicJamming(3)).describe()
        assert description["arrivals"]["type"] == "BatchArrivals"
        assert description["jammer"]["type"] == "PeriodicJamming"


class TestBacklogCouplingAdversary:
    def test_injects_up_to_target_backlog(self):
        adversary = BacklogCouplingAdversary(target_backlog=3, total_packets=10)
        rng = Random(0)
        assert adversary.arrivals(view(active=0), rng) == 3
        assert adversary.arrivals(view(active=3), rng) == 0
        assert adversary.arrivals(view(active=1), rng) == 2

    def test_stops_after_total_packets(self):
        adversary = BacklogCouplingAdversary(target_backlog=5, total_packets=6)
        rng = Random(0)
        first = adversary.arrivals(view(active=0), rng)
        second = adversary.arrivals(view(active=0), rng)
        assert first == 5 and second == 1
        assert adversary.arrivals(view(active=0), rng) == 0
        assert adversary.arrivals_exhausted(0)

    def test_jams_only_when_one_packet_remains(self):
        adversary = BacklogCouplingAdversary(
            target_backlog=1, total_packets=1, jam_budget=2
        )
        rng = Random(0)
        assert not adversary.jam(view(active=3), rng)
        assert adversary.jam(view(active=1), rng)
        assert adversary.jam(view(active=1), rng)
        assert not adversary.jam(view(active=1), rng)  # budget exhausted

    def test_validation(self):
        with pytest.raises(ValueError):
            BacklogCouplingAdversary(target_backlog=0, total_packets=1)
        with pytest.raises(ValueError):
            BacklogCouplingAdversary(target_backlog=1, total_packets=-1)
        with pytest.raises(ValueError):
            BacklogCouplingAdversary(target_backlog=1, total_packets=1, jam_budget=-1)
