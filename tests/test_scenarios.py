"""Tests for the scenario loader, catalog, and runner."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.adversary.composite import CompositeAdversary
from repro.adversary.scheduled import ScheduledArrivals, ScheduledJamming
from repro.exec import ResultCacheBackend, SerialBackend, VectorBackend
from repro.scenarios.catalog import builtin_scenarios, get_scenario, scenario_ids
from repro.scenarios.runner import (
    SMOKE_MAX_SLOTS,
    build_plan,
    run_scenario,
    scenario_max_slots,
    scenario_seeds,
)
from repro.scenarios.spec import (
    Scenario,
    ScenarioError,
    load_scenario_file,
    resolve_scenario,
    scenario_from_dict,
    scenario_to_dict,
)

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples" / "scenarios"


def minimal_definition(**overrides) -> dict:
    definition = {
        "id": "unit-test",
        "title": "Unit-test scenario",
        "protocols": ["binary-exponential"],
        "max_slots": 500,
        "replications": 2,
        "arrivals": {"kind": "batch", "n": 10},
    }
    definition.update(overrides)
    return definition


class TestValidation:
    def test_minimal_definition_parses(self):
        scenario = scenario_from_dict(minimal_definition())
        assert scenario.scenario_id == "unit-test"
        assert scenario.jamming == {"kind": "none"}  # normalised default
        assert scenario.protocols == ("binary-exponential",)

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ScenarioError, match="unexpected keys"):
            scenario_from_dict(minimal_definition(bogus=1))

    def test_missing_required_key_rejected(self):
        definition = minimal_definition()
        del definition["arrivals"]
        with pytest.raises(ScenarioError, match="missing required"):
            scenario_from_dict(definition)

    def test_bad_id_rejected(self):
        with pytest.raises(ScenarioError, match="slug"):
            scenario_from_dict(minimal_definition(id="Not A Slug"))

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ScenarioError, match="unknown protocol"):
            scenario_from_dict(minimal_definition(protocols=["warp-drive"]))

    def test_duplicate_protocol_rejected(self):
        # Per-protocol verdicts and support maps are keyed by name, so a
        # duplicate would silently shadow its twin.
        with pytest.raises(ScenarioError, match="duplicate protocol"):
            scenario_from_dict(
                minimal_definition(
                    protocols=["binary-exponential", "binary-exponential"]
                )
            )

    def test_unknown_component_kind_rejected(self):
        with pytest.raises(ScenarioError, match="unknown kind"):
            scenario_from_dict(
                minimal_definition(arrivals={"kind": "telepathy"})
            )

    def test_component_without_kind_rejected(self):
        with pytest.raises(ScenarioError, match="missing 'kind'"):
            scenario_from_dict(minimal_definition(arrivals={"n": 10}))

    def test_bad_component_parameters_surface_at_load(self):
        with pytest.raises(ScenarioError, match="invalid arrivals"):
            scenario_from_dict(minimal_definition(arrivals={"kind": "batch", "n": -1}))
        with pytest.raises(ScenarioError, match="invalid jamming"):
            scenario_from_dict(
                minimal_definition(jamming={"kind": "bernoulli", "probability": 2.0})
            )

    def test_unknown_component_kwarg_rejected(self):
        with pytest.raises(ScenarioError, match="invalid arrivals"):
            scenario_from_dict(
                minimal_definition(arrivals={"kind": "batch", "n": 5, "warp": 9})
            )

    def test_empty_phase_list_rejected(self):
        with pytest.raises(ScenarioError, match="at least one phase"):
            scenario_from_dict(minimal_definition(arrivals={"phases": []}))

    def test_open_ended_phase_must_be_last(self):
        with pytest.raises(ScenarioError, match="invalid jamming"):
            scenario_from_dict(
                minimal_definition(
                    jamming={
                        "phases": [
                            {"kind": "none"},
                            {"kind": "periodic", "period": 2, "duration": 10},
                        ]
                    }
                )
            )

    def test_schedule_with_extra_keys_rejected(self):
        with pytest.raises(ScenarioError, match="only 'phases'"):
            scenario_from_dict(
                minimal_definition(
                    arrivals={"phases": [{"kind": "none"}], "kind": "batch"}
                )
            )

    def test_non_integer_scale_fields_rejected(self):
        with pytest.raises(ScenarioError, match="max_slots"):
            scenario_from_dict(minimal_definition(max_slots="lots"))
        with pytest.raises(ScenarioError, match="replications"):
            scenario_from_dict(minimal_definition(replications=0))


class TestRoundTripAndIdentity:
    def test_dict_round_trip(self):
        scenario = scenario_from_dict(minimal_definition())
        assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_json_round_trip(self):
        scenario = scenario_from_dict(
            minimal_definition(
                jamming={
                    "phases": [
                        {"kind": "bernoulli", "probability": 0.5, "duration": 100},
                        {"kind": "none"},
                    ]
                }
            )
        )
        payload = json.dumps(scenario_to_dict(scenario))
        assert scenario_from_dict(json.loads(payload)) == scenario

    def test_content_hash_is_stable_and_sensitive(self):
        first = scenario_from_dict(minimal_definition())
        second = scenario_from_dict(minimal_definition())
        changed = scenario_from_dict(minimal_definition(max_slots=501))
        assert first.content_hash() == second.content_hash()
        assert first.content_hash() != changed.content_hash()
        retitled = scenario_from_dict(minimal_definition(title="Other title"))
        assert first.content_hash() != retitled.content_hash()

    def test_adversary_factory_builds_schedules(self):
        scenario = scenario_from_dict(
            minimal_definition(
                arrivals={
                    "phases": [
                        {"kind": "batch", "n": 5, "duration": 50},
                        {"kind": "none"},
                    ]
                },
                jamming={
                    "phases": [
                        {"kind": "periodic", "period": 3, "duration": 30},
                        {"kind": "none"},
                    ]
                },
            )
        )
        adversary = scenario.adversary_factory().build()
        assert isinstance(adversary, CompositeAdversary)
        assert isinstance(adversary.arrival_process, ScheduledArrivals)
        assert isinstance(adversary.jammer, ScheduledJamming)
        # Factories build fresh state per call.
        assert scenario.adversary_factory().build() is not adversary


class TestFileLoading:
    def test_toml_file_loads(self, tmp_path):
        path = tmp_path / "scenario.toml"
        path.write_text(
            "\n".join(
                [
                    'id = "from-toml"',
                    'title = "From TOML"',
                    'protocols = ["binary-exponential"]',
                    "max_slots = 400",
                    "[arrivals]",
                    'kind = "batch"',
                    "n = 8",
                    "[[jamming.phases]]",
                    'kind = "periodic"',
                    "period = 2",
                    "duration = 50",
                    "[[jamming.phases]]",
                    'kind = "none"',
                ]
            ),
            encoding="utf-8",
        )
        scenario = load_scenario_file(path)
        assert scenario.scenario_id == "from-toml"
        assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_json_file_loads(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(minimal_definition(id="from-json")))
        assert load_scenario_file(path).scenario_id == "from-json"

    def test_shipped_examples_load(self):
        toml_scenario = load_scenario_file(EXAMPLES_DIR / "pulsed-jamming.toml")
        json_scenario = load_scenario_file(EXAMPLES_DIR / "surge-release.json")
        assert toml_scenario.scenario_id == "pulsed-jamming"
        assert json_scenario.scenario_id == "surge-release"
        for scenario in (toml_scenario, json_scenario):
            assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    def test_unsupported_suffix_rejected(self, tmp_path):
        path = tmp_path / "scenario.yaml"
        path.write_text("id: nope")
        with pytest.raises(ScenarioError, match="unsupported scenario format"):
            load_scenario_file(path)

    def test_invalid_toml_reported_with_path(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("id = ")
        with pytest.raises(ScenarioError, match="invalid TOML"):
            load_scenario_file(path)

    def test_component_errors_name_the_source_file(self, tmp_path):
        path = tmp_path / "bad-kind.json"
        path.write_text(
            json.dumps(minimal_definition(id="bad-kind", arrivals={"kind": "bogus"}))
        )
        with pytest.raises(ScenarioError, match=r"bad-kind\.json.*unknown kind"):
            load_scenario_file(path)

    def test_resolve_prefers_files_and_falls_back_to_catalog(self, tmp_path):
        assert resolve_scenario("onoff-jamming").scenario_id == "onoff-jamming"
        path = tmp_path / "mine.json"
        path.write_text(json.dumps(minimal_definition(id="mine")))
        assert resolve_scenario(path).scenario_id == "mine"
        with pytest.raises(ScenarioError, match="unknown scenario"):
            resolve_scenario("no-such-scenario")

    def test_stray_local_file_cannot_shadow_a_catalog_name(self, tmp_path, monkeypatch):
        # A suffix-less file named like a catalog scenario in the cwd must
        # not hijack the name (e.g. debris from a redirected `scenario show`).
        (tmp_path / "onoff-jamming").write_text("not a scenario")
        monkeypatch.chdir(tmp_path)
        assert resolve_scenario("onoff-jamming").scenario_id == "onoff-jamming"


class TestCatalog:
    def test_catalog_has_at_least_ten_validated_scenarios(self):
        catalog = builtin_scenarios()
        assert len(catalog) >= 10
        for scenario_id, scenario in catalog.items():
            assert scenario.scenario_id == scenario_id
            assert isinstance(scenario, Scenario)
            assert scenario.protocols
            # Round-trip identity is part of the catalog contract.
            assert scenario_from_dict(scenario_to_dict(scenario)) == scenario
            scenario.adversary_factory().build()

    def test_catalog_covers_schedules_and_vectorizable_cores(self):
        catalog = builtin_scenarios()
        scheduled = [
            s
            for s in catalog.values()
            if "phases" in s.arrivals or "phases" in s.jamming
        ]
        assert len(scheduled) >= 5
        vectorizable = [
            s
            for s in catalog.values()
            if build_plan(s, scale="smoke").vector_summary()["vectorizable_specs"] > 0
        ]
        assert len(vectorizable) >= 5

    def test_get_scenario_names_known_ids_on_miss(self):
        assert get_scenario("ramp-arrivals").scenario_id == "ramp-arrivals"
        with pytest.raises(KeyError, match="known:"):
            get_scenario("nope")

    def test_scenario_ids_sorted(self):
        ids = scenario_ids()
        assert ids == sorted(ids)


class TestRunner:
    def test_seed_and_slot_scaling(self):
        scenario = scenario_from_dict(
            minimal_definition(replications=4, base_seed=100, max_slots=50_000)
        )
        assert scenario_seeds(scenario, "default") == (100, 101, 102, 103)
        assert scenario_seeds(scenario, "smoke") == (100, 101)
        assert scenario_seeds(scenario, "full") == tuple(range(100, 108))
        assert scenario_seeds(scenario, "default", seeds=[7]) == (7,)
        assert scenario_max_slots(scenario, "default") == 50_000
        assert scenario_max_slots(scenario, "smoke") == SMOKE_MAX_SLOTS

    def test_build_plan_one_group_per_protocol(self):
        scenario = get_scenario("ramp-down-jamming")
        plan = build_plan(scenario, scale="smoke")
        assert len(plan.groups) == len(scenario.protocols)
        for group in plan.groups:
            assert dict(group.columns)["scenario"] == "ramp-down-jamming"

    @pytest.mark.parametrize("scenario_id", scenario_ids())
    def test_every_catalog_scenario_smoke_runs_on_both_backends(self, scenario_id):
        scenario = get_scenario(scenario_id)
        for backend in (SerialBackend(), VectorBackend()):
            report = run_scenario(
                scenario, scale="smoke", seeds=[11], backend=backend
            )
            assert len(report.rows) == len(scenario.protocols)
            for row in report.rows:
                assert row["scenario"] == scenario_id
                assert 0.0 <= row["throughput"] <= 1.0
            assert any("content hash" in note for note in report.notes)

    def test_report_names_fallback_reasons(self):
        scenario = scenario_from_dict(
            minimal_definition(
                arrivals={"kind": "trace", "counts": [6, 0, 0]},
            )
        )
        report = run_scenario(
            scenario, scale="smoke", seeds=[11], backend=SerialBackend()
        )
        assert any("scalar fallback" in note for note in report.notes)

    def test_reactive_catalog_scenario_reports_full_vectorization(self):
        report = run_scenario(
            get_scenario("reactive-starvation"),
            scale="smoke",
            seeds=[11],
            backend=SerialBackend(),
        )
        vector_notes = [note for note in report.notes if "vectorizable" in note]
        assert vector_notes, report.notes
        vectorized, _, total = vector_notes[0].split()[1].partition("/")
        assert vectorized == total
        assert not any("scalar fallback" in note for note in report.notes)

    def test_scenario_runs_hit_the_result_cache(self, tmp_path):
        scenario = get_scenario("budget-starved-jammer")
        first = ResultCacheBackend(tmp_path, inner=SerialBackend())
        report_a = run_scenario(scenario, scale="smoke", backend=first)
        assert first.misses == len(build_plan(scenario, scale="smoke"))
        assert first.hits == 0
        second = ResultCacheBackend(tmp_path, inner=SerialBackend())
        report_b = run_scenario(scenario, scale="smoke", backend=second)
        assert second.hits == len(build_plan(scenario, scale="smoke"))
        assert second.misses == 0
        assert report_a.rows == report_b.rows
