"""Tests for windowed simulation-dynamics trajectories (repro.dynamics).

Four layers, mirroring the telemetry contract tests:

* **unit arithmetic** — ``build_trajectory`` turns cumulative boundary
  snapshots into per-window series; accumulator, budget probing, render
  and JSON/CSV round-trips;
* **engine parity** — the vector engine's materialised trajectory must
  equal, bit for bit, a scalar-semantics reference sampler driven by the
  vector engine's own coins (the same harness that proves reactive-kernel
  identity in ``test_vector_reactive``);
* **inertness** — enabling dynamics never changes packets, backlog
  series, or store fingerprints, on any backend;
* **regression diffing** — ``compare_trajectory_sets`` flags a seeded
  mid-run-only regression whose end-of-run aggregates cancel out, and
  ``campaign diff --trajectories`` exits non-zero on it.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.adversary.arrivals import BatchArrivals
from repro.adversary.base import SystemView
from repro.adversary.composite import CompositeAdversary
from repro.adversary.jamming import NoJamming, ReactiveSuccessJammer
from repro.channel.feedback import Feedback, FeedbackReport, SlotOutcome
from repro.dynamics import (
    ARRAY_FIELDS,
    DEFAULT_WINDOW,
    DynamicsAccumulator,
    DynamicsTrajectory,
    WindowSnapshot,
    build_trajectory,
    compare_trajectory_sets,
    derive_window,
    jammer_budget,
    render_trajectory,
    sparkline,
    trajectory_to_csv,
    trajectory_to_json,
    windowed_series,
)
from repro.exec import DynamicsBackend, SerialBackend, make_backend
from repro.experiments.plan import RunSpec, SweepPlan, factory
from repro.metrics.collectors import MetricsCollector, SlotObservation
from repro.protocols.binary_exponential import BinaryExponentialBackoff
from repro.sim.engine import Simulator
from repro.sim.results import PacketRecord, SimulationResult
from repro.sim.vector import VectorSimulator
from repro.sim.vector.rng import CoinBlocks, VectorStreams


def packet_tuples(result):
    return [
        (p.packet_id, p.arrival_slot, p.departure_slot, p.sends, p.listens)
        for p in result.packets
    ]


def _spec(seed, *, dynamics_window=0, max_slots=4000, batch=12, budget=6):
    return RunSpec(
        protocol=BinaryExponentialBackoff(),
        adversary=factory(
            CompositeAdversary,
            factory(BatchArrivals, batch),
            factory(ReactiveSuccessJammer, budget=budget),
        ),
        seed=seed,
        max_slots=max_slots,
        dynamics_window=dynamics_window,
    )


# ---------------------------------------------------------------------------
# Unit arithmetic
# ---------------------------------------------------------------------------


class TestBuildTrajectory:
    def _snapshots(self):
        return [
            WindowSnapshot(
                num_slots=10, arrivals=8, successes=2, collisions=1, jammed=3,
                sends=12, listens=4, backlog=6, window_sum=24.0, window_count=6,
                probability_sum=1.5,
            ),
            WindowSnapshot(
                num_slots=20, arrivals=8, successes=6, collisions=1, jammed=5,
                sends=20, listens=9, backlog=2, window_sum=10.0, window_count=2,
                probability_sum=0.5,
            ),
            # Partial final window (the run drained at slot 24).
            WindowSnapshot(
                num_slots=24, arrivals=8, successes=8, collisions=1, jammed=5,
                sends=24, listens=11, backlog=0, window_sum=0.0, window_count=0,
                probability_sum=0.0,
            ),
        ]

    def test_per_window_series(self):
        trajectory = build_trajectory(10, 24, self._snapshots(), budget=7)
        assert trajectory.num_windows == 3
        assert trajectory.slots.tolist() == [10, 10, 4]
        assert trajectory.arrivals.tolist() == [8, 0, 0]
        assert trajectory.successes.tolist() == [2, 4, 2]
        assert trajectory.collisions.tolist() == [1, 0, 0]
        assert trajectory.jammed.tolist() == [3, 2, 0]
        # idle = width - successes - collisions - jammed, per window.
        assert trajectory.idle.tolist() == [4, 4, 2]
        assert trajectory.backlog.tolist() == [6, 2, 0]
        assert trajectory.cumulative_sends.tolist() == [12, 20, 24]
        assert trajectory.cumulative_listens.tolist() == [4, 9, 11]
        assert trajectory.throughput.tolist() == [0.2, 0.4, 0.5]
        assert trajectory.contention.tolist() == [1.5, 0.5, 0.0]
        assert trajectory.mean_window.tolist()[:2] == [4.0, 5.0]
        assert math.isnan(trajectory.mean_window[2])
        assert trajectory.mean_send_probability.tolist()[:2] == [0.25, 0.25]
        assert math.isnan(trajectory.mean_send_probability[2])
        assert trajectory.jammer_budget_remaining.tolist() == [4.0, 2.0, 2.0]
        assert trajectory.window_bounds() == [(0, 9), (10, 19), (20, 23)]

    def test_no_budget_leaves_budget_gauge_nan(self):
        trajectory = build_trajectory(10, 24, self._snapshots(), budget=None)
        assert np.isnan(trajectory.jammer_budget_remaining).all()

    def test_snapshots_must_advance(self):
        snaps = self._snapshots()
        with pytest.raises(ValueError, match="advance"):
            build_trajectory(10, 24, [snaps[0], snaps[0]])

    def test_final_snapshot_must_cover_the_run(self):
        with pytest.raises(ValueError, match="final snapshot"):
            build_trajectory(10, 30, self._snapshots())

    def test_dict_round_trip_preserves_equality(self):
        trajectory = build_trajectory(10, 24, self._snapshots(), budget=7)
        clone = DynamicsTrajectory.from_dict(
            json.loads(json.dumps(trajectory.to_dict()))
        )
        assert clone == trajectory
        # NaN encodes as None in the JSON form.
        assert trajectory.to_dict()["mean_window"][2] is None

    def test_accumulator_builds_the_same_trajectory(self):
        accumulator = DynamicsAccumulator(10, budget=7)
        for snap in self._snapshots():
            assert accumulator.pending(snap.num_slots)
            accumulator.sample(
                num_slots=snap.num_slots, arrivals=snap.arrivals,
                successes=snap.successes, collisions=snap.collisions,
                jammed=snap.jammed, sends=snap.sends, listens=snap.listens,
                backlog=snap.backlog, window_sum=snap.window_sum,
                window_count=snap.window_count,
                probability_sum=snap.probability_sum,
            )
        assert not accumulator.pending(24)
        assert accumulator.build(24) == build_trajectory(
            10, 24, self._snapshots(), budget=7
        )

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            DynamicsAccumulator(0)


class TestJammerBudget:
    def test_composite_and_bare_jammers(self):
        composite = CompositeAdversary(
            BatchArrivals(5), ReactiveSuccessJammer(budget=9)
        )
        assert jammer_budget(composite) == 9.0
        assert jammer_budget(ReactiveSuccessJammer(budget=4)) == 4.0
        assert jammer_budget(CompositeAdversary(BatchArrivals(5), NoJamming())) is None
        assert jammer_budget(object()) is None


class TestRendering:
    def _trajectory(self):
        spec = _spec(3, dynamics_window=100)
        return Simulator(spec.build_config()).run().dynamics

    def test_sparkline_shapes(self):
        assert sparkline(np.array([])) == ""
        assert len(sparkline(np.linspace(0, 1, 200), width=40)) == 40
        assert set(sparkline(np.array([math.nan, math.nan]))) == {"·"}

    def test_render_lists_every_metric(self):
        rendered = render_trajectory(self._trajectory(), label="test-run")
        assert "test-run" in rendered
        for name in ARRAY_FIELDS:
            if name == "slots":
                continue
            assert name in rendered

    def test_csv_has_one_row_per_window(self):
        trajectory = self._trajectory()
        lines = trajectory_to_csv(trajectory).strip().splitlines()
        assert len(lines) == trajectory.num_windows + 1
        assert lines[0].startswith("window_index,first_slot,last_slot")

    def test_json_round_trips(self):
        trajectory = self._trajectory()
        payload = json.loads(trajectory_to_json(trajectory))
        assert DynamicsTrajectory.from_dict(payload) == trajectory


# ---------------------------------------------------------------------------
# Engine parity: scalar-semantics reference on the vector engine's coins
# ---------------------------------------------------------------------------


def reference_trajectory(adversary, seed, max_slots, capacity, window):
    """Sample a trajectory by re-running one replication with scalar
    components on the vector coins (same harness as ``reference_run`` in
    ``test_vector_reactive``), snapshotting at every window boundary."""
    protocol = BinaryExponentialBackoff()
    streams = VectorStreams([seed])
    coins = CoinBlocks(streams, capacity)
    states, active = {}, []
    sends_total = listens_total = 0
    cum = dict(arrivals=0, successes=0, collisions=0, jammed=0)
    next_id = 0
    running = np.ones(1, dtype=bool)
    snapshots = []
    budget = jammer_budget(adversary)

    def snap(num_slots):
        window_sum = (
            float(np.sum([states[i].window for i in sorted(active)]))
            if active
            else 0.0
        )
        # Sequential ascending-id float adds, mirroring the vector cumsum.
        probability_sum = 0.0
        for i in sorted(active):
            probability_sum += states[i].sending_probability()
        snapshots.append(
            WindowSnapshot(
                num_slots=num_slots,
                arrivals=cum["arrivals"], successes=cum["successes"],
                collisions=cum["collisions"], jammed=cum["jammed"],
                sends=sends_total, listens=listens_total,
                backlog=len(active),
                window_sum=window_sum, window_count=len(active),
                probability_sum=probability_sum,
            )
        )

    slot = 0
    while slot < max_slots and (active or not adversary.arrivals_exhausted(slot)):
        contention = sum(states[i].sending_probability() for i in active)
        view = SystemView(
            slot=slot, active_packets=tuple(active), contention=contention
        )
        num_arrivals = adversary.arrivals(view, None)
        for pid in range(next_id, next_id + num_arrivals):
            states[pid] = protocol.new_packet_state()
            active.append(pid)
        next_id += num_arrivals
        cum["arrivals"] += num_arrivals
        jammed = bool(adversary.jam(view, None))
        row = coins.coins(slot, running)[0]
        senders = [i for i in active if row[i] < states[i].sending_probability()]
        if not jammed and adversary.reactive:
            jammed = bool(adversary.reactive_jam(view, tuple(senders), None))
        if jammed:
            winner, feedback = None, Feedback.NOISE
            cum["jammed"] += 1
        elif len(senders) == 1:
            winner, feedback = senders[0], Feedback.SUCCESS
            cum["successes"] += 1
        elif senders:
            winner, feedback = None, Feedback.NOISE
            cum["collisions"] += 1
        else:
            winner, feedback = None, Feedback.EMPTY
        sends_total += len(senders)
        for index in senders:
            if index != winner:
                states[index].observe(
                    FeedbackReport(feedback=feedback, sent=True), None
                )
        if winner is not None:
            active.remove(winner)
        if (slot + 1) % window == 0:
            snap(slot + 1)
        slot += 1
    if slot % window:
        snap(slot)
    return build_trajectory(window, slot, snapshots, budget=budget)


class TestVectorTrajectoryParity:
    @pytest.mark.parametrize("window", (64, 100, 1000))
    def test_vector_matches_scalar_reference_bit_for_bit(self, window):
        for seed in (3, 11, 42):
            vector = VectorSimulator(
                BinaryExponentialBackoff(),
                BatchArrivals(12),
                ReactiveSuccessJammer(budget=6),
                seeds=[seed],
                max_slots=4000,
                dynamics_window=window,
            ).run()[0]
            reference = reference_trajectory(
                CompositeAdversary(
                    BatchArrivals(12), ReactiveSuccessJammer(budget=6)
                ),
                seed, 4000, 12, window,
            )
            assert vector.dynamics is not None
            assert vector.dynamics == reference

    def test_mega_batch_trajectories_bit_identical_to_single_groups(self):
        def groups(dynamics_window):
            return [
                [
                    RunSpec(
                        protocol=BinaryExponentialBackoff(),
                        adversary=factory(
                            CompositeAdversary,
                            factory(BatchArrivals, 15),
                            factory(ReactiveSuccessJammer, budget=budget),
                        ),
                        seed=seed,
                        max_slots=8000,
                        dynamics_window=dynamics_window,
                    )
                    for seed in (1, 2, 3)
                ]
                for budget in (5, 9)
            ]

        mega = VectorSimulator.from_spec_groups(groups(128)).run()
        flat = iter(mega)
        for specs in groups(128):
            for expected in VectorSimulator.from_specs(specs).run():
                got = next(flat)
                assert packet_tuples(got) == packet_tuples(expected)
                assert got.dynamics == expected.dynamics


class TestScalarTrajectoryConsistency:
    def test_accumulator_agrees_with_the_collector(self):
        result = Simulator(_spec(7, dynamics_window=100).build_config()).run()
        trajectory = result.dynamics
        collector = result.collector
        assert trajectory is not None
        assert trajectory.num_slots == result.num_slots
        assert int(trajectory.slots.sum()) == result.num_slots
        assert int(trajectory.arrivals.sum()) == collector.num_arrivals
        assert int(trajectory.successes.sum()) == collector.num_successes
        assert int(trajectory.collisions.sum()) == collector.num_collisions
        assert int(trajectory.jammed.sum()) == collector.num_jammed
        assert int(trajectory.cumulative_sends[-1]) == collector.total_sends
        assert int(trajectory.cumulative_listens[-1]) == collector.total_listens
        assert int(trajectory.backlog[-1]) == collector.backlog

    def test_default_window_comes_from_the_config(self):
        result = Simulator(_spec(7).build_config()).run()
        assert result.dynamics is None


# ---------------------------------------------------------------------------
# Inertness: dynamics on/off never changes results or fingerprints
# ---------------------------------------------------------------------------


class TestDynamicsInertness:
    def test_scalar_results_bit_identical(self):
        bare = Simulator(_spec(11).build_config()).run()
        sampled = Simulator(_spec(11, dynamics_window=64).build_config()).run()
        assert packet_tuples(bare) == packet_tuples(sampled)
        assert bare.collector.backlog_series == sampled.collector.backlog_series

    def test_vector_results_bit_identical(self):
        def run(window):
            return VectorSimulator(
                BinaryExponentialBackoff(),
                BatchArrivals(12),
                ReactiveSuccessJammer(budget=6),
                seeds=[3, 7],
                max_slots=4000,
                dynamics_window=window,
            ).run()

        for bare, sampled in zip(run(0), run(64)):
            assert packet_tuples(bare) == packet_tuples(sampled)
            assert bare.collector.backlog_series == sampled.collector.backlog_series
            assert bare.dynamics is None
            assert sampled.dynamics is not None

    def test_spec_cache_key_ignores_dynamics(self):
        assert _spec(3).cache_key() == _spec(3, dynamics_window=500).cache_key()
        assert (
            _spec(3).build_config().describe()
            == _spec(3, dynamics_window=500).build_config().describe()
        )

    @pytest.mark.parametrize("backend_name", ("serial", "processes", "vector"))
    def test_campaign_store_fingerprints_identical(self, backend_name, tmp_path):
        from repro.campaigns import start_campaign
        from repro.scenarios.catalog import get_scenario
        from repro.store import ResultsStore

        scenario = get_scenario("onoff-jamming")
        fingerprints = {}
        trajectory_counts = {}
        for label, window in (("off", 0), ("on", 256)):
            with ResultsStore(tmp_path / f"{backend_name}-{label}") as store:
                start_campaign(
                    store,
                    scenario,
                    scale="smoke",
                    seeds=[1, 2],
                    backend_name=backend_name,
                    dynamics_window=window,
                )
                fingerprints[label] = store.fingerprint()
                trajectory_counts[label] = len(store.trajectory_rows())
        assert fingerprints["on"] == fingerprints["off"]
        assert trajectory_counts["off"] == 0
        assert trajectory_counts["on"] > 0


class TestDynamicsBackend:
    def test_wrapper_injects_the_window(self):
        backend = DynamicsBackend(SerialBackend(), 100)
        results = backend.run([_spec(3)])
        assert results[0].dynamics is not None
        assert results[0].dynamics.window == 100
        assert backend.describe()["dynamics_window"] == 100

    def test_wrapper_results_match_plan_level_dynamics(self):
        wrapped = DynamicsBackend(SerialBackend(), 100).run([_spec(3)])
        direct = SerialBackend().run([_spec(3, dynamics_window=100)])
        assert wrapped[0].dynamics == direct[0].dynamics
        assert packet_tuples(wrapped[0]) == packet_tuples(direct[0])

    def test_make_backend_wraps(self):
        backend = make_backend("serial", dynamics_window=50)
        assert isinstance(backend, DynamicsBackend)
        with pytest.raises(ValueError):
            DynamicsBackend(SerialBackend(), 0)

    def test_plan_group_option_reaches_the_specs(self):
        plan = SweepPlan()
        plan.add_group(
            BinaryExponentialBackoff(),
            factory(CompositeAdversary, factory(BatchArrivals, 6)),
            [1, 2],
            dynamics_window=200,
        )
        results = plan.run(SerialBackend())
        for result in results.results:
            assert result.dynamics is not None
            assert result.dynamics.window == 200


# ---------------------------------------------------------------------------
# Store round-trip
# ---------------------------------------------------------------------------


class TestTrajectoryStore:
    def _result(self, seed, window=100):
        return Simulator(_spec(seed, dynamics_window=window).build_config()).run()

    def test_round_trip_and_artifact_inertness(self, tmp_path):
        from repro.store import ResultsStore

        with ResultsStore(tmp_path / "store") as store:
            result = self._result(3)
            store.put_run("spec-a", 3, "scalar", result)
            # The run artifact never contains the trajectory...
            stored_result = store.get_result("spec-a", 3, "scalar")
            assert stored_result.dynamics is None
            # ...but the trajectory table round-trips it exactly,
            assert store.get_trajectory("spec-a", 3, "scalar") == result.dynamics
            # and putting it never moved the fingerprint.
            fingerprint = store.fingerprint()
            store.put_trajectory("spec-a", 3, "scalar", result.dynamics)
            assert store.fingerprint() == fingerprint
            rows = store.trajectory_rows(spec_prefix="spec-")
            assert len(rows) == 1
            assert rows[0]["window"] == 100
            assert store.stats()["trajectories"] == 1

    def test_prune_sweeps_trajectory_artifacts(self, tmp_path):
        from repro.store import ResultsStore

        with ResultsStore(tmp_path / "store") as store:
            result = self._result(3)
            store.put_run("spec-a", 3, "scalar", result, source="cache")
            assert store.trajectory_rows()
            removed = store.prune(older_than_days=-1)
            assert removed["removed_runs"] == 1
            assert store.trajectory_rows() == []
            assert store.get_trajectory("spec-a", 3, "scalar") is None


# ---------------------------------------------------------------------------
# Trajectory-level regression diffing
# ---------------------------------------------------------------------------

REGRESSION_SLOTS = 1600
REGRESSION_ARRIVALS = 120
REGRESSION_SUCCESSES = 80


def _success_slots(seed, *, regressed):
    """A success schedule with identical totals but different paths.

    The healthy side delivers evenly (one success every 20 slots); the
    regressed side delivers twice as fast for the first half and nothing
    afterwards — same 80 successes, same final backlog, same aggregate
    throughput, different trajectory.  A small seed-dependent jitter gives
    the per-window Welch tests real replicate variance.
    """
    jitter = seed % 4
    if regressed:
        return [10 * k + jitter for k in range(REGRESSION_SUCCESSES)]
    return [20 * k + jitter for k in range(REGRESSION_SUCCESSES)]


def synthetic_result(seed, *, regressed):
    """A hand-built result whose collector series follow the schedule."""
    collector = MetricsCollector(collect_series=True)
    success_slots = set(_success_slots(seed, regressed=regressed))
    backlog = 0
    for slot in range(REGRESSION_SLOTS):
        arrivals = REGRESSION_ARRIVALS if slot == 0 else 0
        backlog += arrivals
        success = slot in success_slots and backlog > 0
        if success:
            backlog -= 1
        collector.observe(
            SlotObservation(
                slot=slot,
                outcome=SlotOutcome.SUCCESS if success else SlotOutcome.EMPTY,
                jammed=False,
                arrivals=arrivals,
                active_before=backlog + (1 if success else 0),
                active_after=backlog,
                num_senders=1 if success else 0,
                num_listeners=0,
            )
        )
    # Identical packet records on both sides: the per-packet distributions
    # (latency, accesses) agree, so only the *path* regressed.
    packets = [
        PacketRecord(
            packet_id=k,
            arrival_slot=0,
            departure_slot=(20 * k if k < REGRESSION_SUCCESSES else None),
            sends=1,
            listens=0,
        )
        for k in range(REGRESSION_ARRIVALS)
    ]
    return SimulationResult(
        config_description={"synthetic": True},
        protocol_name="synthetic",
        seed=seed,
        num_slots=REGRESSION_SLOTS,
        drained=False,
        collector=collector,
        packets=packets,
    )


def _store_synthetic_campaign(store, campaign_id, *, regressed, seeds):
    store.create_campaign(
        campaign_id,
        scenario_id="synthetic",
        scenario_hash="synthetic-hash",
        definition=None,
        scale="default",
        seeds=seeds,
        backend="serial",
        total_runs=len(seeds),
    )
    for position, seed in enumerate(seeds):
        spec_hash = f"{campaign_id}-spec"
        result = synthetic_result(seed, regressed=regressed)
        store.put_run(spec_hash, seed, "scalar", result, source="campaign")
        store.record_campaign_unit(
            campaign_id,
            [(position, 0, "synthetic", spec_hash, seed, "scalar")],
            elapsed_seconds=0.0,
            unit_index=position,
        )
    store.finish_campaign(campaign_id)


class TestTrajectoryDiff:
    SEEDS = [1, 2, 3, 4, 5, 6]

    def _results(self, *, regressed):
        return [
            synthetic_result(seed, regressed=regressed) for seed in self.SEEDS
        ]

    def test_same_path_passes(self):
        diff = compare_trajectory_sets(
            self._results(regressed=False), self._results(regressed=False)
        )
        assert diff.passed, diff.render()
        assert diff.tested > 0

    def test_mid_run_regression_is_flagged(self):
        healthy = self._results(regressed=False)
        regressed = self._results(regressed=True)
        # The aggregates genuinely cancel: totals agree on both sides.
        for left, right in zip(healthy, regressed):
            assert left.num_delivered == right.num_delivered
            assert left.num_arrivals == right.num_arrivals
            assert left.collector.backlog == right.collector.backlog
        diff = compare_trajectory_sets(healthy, regressed)
        assert not diff.passed
        flagged_metrics = {flag.metric for flag in diff.flagged}
        assert "throughput" in flagged_metrics
        assert "backlog" in flagged_metrics
        rendered = diff.render()
        assert "REGRESSION" in rendered and "FLAG" in rendered

    def test_derive_window_targets_sixteen_windows(self):
        results = self._results(regressed=False)
        assert derive_window(results) == REGRESSION_SLOTS // 16
        assert derive_window([]) == 1

    def test_windowed_series_prefers_attached_trajectories(self):
        result = Simulator(_spec(3, dynamics_window=100).build_config()).run()
        series = windowed_series(result, 100)
        assert np.array_equal(
            series["throughput"], result.dynamics.throughput
        )
        # A mismatched window falls back to the collector derivation and
        # still reproduces the same totals.
        derived = windowed_series(result, 50)
        assert derived["successes"].sum() == result.collector.num_successes

    def test_windowed_series_without_series_is_none(self):
        result = Simulator(_spec(3).build_config()).run()
        result.collector.collect_series = False
        assert windowed_series(result, 100) is None


class TestCampaignTrajectoryDiff:
    def _build_stores(self, tmp_path):
        from repro.store import ResultsStore

        store = ResultsStore(tmp_path / "store")
        _store_synthetic_campaign(
            store, "healthy", regressed=False, seeds=TestTrajectoryDiff.SEEDS
        )
        _store_synthetic_campaign(
            store, "regressed", regressed=True, seeds=TestTrajectoryDiff.SEEDS
        )
        return store

    def test_diff_campaigns_flags_only_with_trajectories(self, tmp_path):
        from repro.campaigns import diff_campaigns

        with self._build_stores(tmp_path) as store:
            plain = diff_campaigns(store, "healthy", right_id="regressed")
            assert plain.passed, plain.render()
            flagged = diff_campaigns(
                store, "healthy", right_id="regressed", trajectories=True
            )
            assert not flagged.passed
            assert "FLAG" in flagged.render()

    def test_diff_campaign_trajectories_helper(self, tmp_path):
        from repro.campaigns import diff_campaign_trajectories

        with self._build_stores(tmp_path) as store:
            diffs = diff_campaign_trajectories(
                store, "healthy", right_id="regressed"
            )
            assert set(diffs) == {"synthetic"}
            assert not diffs["synthetic"].passed

    def test_cli_campaign_diff_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        self._build_stores(tmp_path).close()
        store_arg = str(tmp_path / "store")
        assert (
            main(["campaign", "diff", "healthy", "regressed", "--store", store_arg])
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "campaign", "diff", "healthy", "regressed",
                "--store", store_arg, "--trajectories",
            ]
        )
        assert code == 1
        assert "FLAG" in capsys.readouterr().out

    def test_cli_dynamics_compare_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        self._build_stores(tmp_path).close()
        store_arg = str(tmp_path / "store")
        code = main(
            ["dynamics", "compare", "healthy", "regressed", "--store", store_arg]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out
        assert (
            main(["dynamics", "compare", "healthy", "healthy", "--store", store_arg])
            == 0
        )


# ---------------------------------------------------------------------------
# CLI surface: show / export
# ---------------------------------------------------------------------------


class TestDynamicsCli:
    def _store_with_trajectory(self, tmp_path):
        from repro.store import ResultsStore

        store = ResultsStore(tmp_path / "store")
        result = Simulator(_spec(3, dynamics_window=100).build_config()).run()
        store.put_run("abcdef123456", 3, "scalar", result)
        store.close()
        return str(tmp_path / "store"), result

    def test_show_lists_and_renders(self, tmp_path, capsys):
        from repro.cli import main

        store_arg, result = self._store_with_trajectory(tmp_path)
        assert main(["dynamics", "show", "--store", store_arg]) == 0
        listing = capsys.readouterr().out
        assert "abcdef123456"[:12] in listing
        assert main(["dynamics", "show", "abcdef", "--store", store_arg]) == 0
        rendered = capsys.readouterr().out
        assert "throughput" in rendered
        assert f"slots={result.num_slots}" in rendered

    def test_export_json_and_csv(self, tmp_path, capsys):
        from repro.cli import main

        store_arg, result = self._store_with_trajectory(tmp_path)
        assert main(["dynamics", "export", "abcdef", "--store", store_arg]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert DynamicsTrajectory.from_dict(payload) == result.dynamics
        out_file = tmp_path / "out" / "trajectory.csv"
        assert (
            main(
                [
                    "dynamics", "export", "abcdef", "--store", store_arg,
                    "--format", "csv", "--out", str(out_file),
                ]
            )
            == 0
        )
        capsys.readouterr()
        lines = out_file.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == result.dynamics.num_windows + 1

    def test_ambiguous_prefix_errors(self, tmp_path, capsys):
        from repro.cli import main

        from repro.store import ResultsStore

        store = ResultsStore(tmp_path / "store")
        result = Simulator(_spec(3, dynamics_window=100).build_config()).run()
        store.put_run("aa11", 3, "scalar", result)
        store.put_run("aa22", 3, "scalar", result)
        store.close()
        with pytest.raises(SystemExit):
            main(["dynamics", "show", "aa", "--store", str(tmp_path / "store")])
        assert "ambiguous" in capsys.readouterr().err
